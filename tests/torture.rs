//! Long-running randomized torture test: many threads of mixed
//! operations against cLSM with aggressive flush/compaction settings
//! and periodic invariant audits.
//!
//! The default run is sized for CI (a few seconds). For a real soak,
//! run with `TORTURE_SECONDS=60 cargo test --release --test torture -- --ignored`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clsm_repro::clsm::{Db, Options, RmwDecision, WriteBatch, WriteOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "torture-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn torture_duration() -> Duration {
    std::env::var("TORTURE_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(3))
}

/// Invariants maintained by the workload:
/// 1. `ctr:*` keys only ever grow (RMW increments), and the sum of the
///    final values equals the global increment count.
/// 2. `inv:a` and `inv:b` are updated in atomic batches with equal
///    values — snapshots must never see them differ.
/// 3. `own:<t>:*` keys are only written by thread `t` with
///    value == key — any other value is corruption.
#[test]
fn randomized_torture_with_invariant_audits() {
    let dir = TempDir::new("main");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    db.write(
        WriteBatch::from(
            &[
                (b"inv:a".to_vec(), Some(0u64.to_le_bytes().to_vec())),
                (b"inv:b".to_vec(), Some(0u64.to_le_bytes().to_vec())),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let increments = Arc::new(AtomicU64::new(0));
    let progress = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + torture_duration();
    let mut handles = Vec::new();

    // Mixed-op workers.
    for t in 0..3u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let increments = Arc::clone(&increments);
        let progress = Arc::clone(&progress);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t ^ 0xfeed);
            let mut batch_n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                progress.fetch_add(1, Ordering::Relaxed);
                match rng.random_range(0..100u32) {
                    0..=39 => {
                        // Owned writes (torn-write detector).
                        let key = format!("own:{t}:{:04}", rng.random_range(0..500u32));
                        db.put(key.as_bytes(), key.as_bytes()).unwrap();
                    }
                    40..=59 => {
                        let key = format!("own:{t}:{:04}", rng.random_range(0..500u32));
                        if let Some(v) = db.get(key.as_bytes()).unwrap() {
                            assert_eq!(v, key.into_bytes(), "torn value");
                        }
                    }
                    60..=74 => {
                        // RMW counters.
                        let key = format!("ctr:{:02}", rng.random_range(0..8u32));
                        db.read_modify_write(key.as_bytes(), |cur| {
                            let n = cur.map_or(0u64, |v| {
                                u64::from_le_bytes(v.try_into().expect("8 bytes"))
                            });
                            RmwDecision::Update((n + 1).to_le_bytes().to_vec())
                        })
                        .unwrap();
                        increments.fetch_add(1, Ordering::Relaxed);
                    }
                    75..=84 => {
                        // Atomic invariant batch.
                        batch_n += 1;
                        let v = (t << 48 | batch_n).to_le_bytes().to_vec();
                        db.write(
                            WriteBatch::from(
                                &[
                                    (b"inv:a".to_vec(), Some(v.clone())),
                                    (b"inv:b".to_vec(), Some(v)),
                                ][..],
                            ),
                            &WriteOptions::new(),
                        )
                        .unwrap();
                    }
                    85..=92 => {
                        // Deletes of disposable keys.
                        let key = format!("tmp:{:04}", rng.random_range(0..200u32));
                        if rng.random_bool(0.5) {
                            db.put(key.as_bytes(), b"x").unwrap();
                        } else {
                            db.delete(key.as_bytes()).unwrap();
                        }
                    }
                    _ => {
                        // Range scans (bounded).
                        let start = format!("own:{}:", rng.random_range(0..3u32));
                        let snap = db.snapshot().unwrap();
                        for item in snap.range(start.as_bytes(), None).unwrap().take(50) {
                            let (k, v) = item.unwrap();
                            if k.starts_with(b"own:") {
                                assert_eq!(k, v, "torn value in scan");
                            }
                        }
                    }
                }
            }
        }));
    }

    // Auditor: snapshot-level invariants while everything churns.
    // Audits are paced by workload progress, not wall-clock sleeps:
    // each round waits until the workers have collectively completed a
    // batch of new operations, so every audit observes a genuinely new
    // state and the test never oversleeps a short deadline.
    let mut audits = 0u64;
    let mut seen = 0u64;
    while Instant::now() < deadline {
        let snap = db.snapshot().unwrap();
        let a = snap.get(b"inv:a").unwrap().unwrap();
        let b = snap.get(b"inv:b").unwrap().unwrap();
        assert_eq!(a, b, "snapshot saw a torn invariant batch");
        audits += 1;
        let target = seen + 64;
        loop {
            let now = progress.load(Ordering::Relaxed);
            if now >= target || Instant::now() >= deadline {
                seen = now;
                break;
            }
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // Final accounting: counter sum equals global increments.
    db.compact_to_quiescence().unwrap();
    let mut sum = 0u64;
    for i in 0..8u32 {
        if let Some(v) = db.get(format!("ctr:{i:02}").as_bytes()).unwrap() {
            sum += u64::from_le_bytes(v.try_into().expect("8 bytes"));
        }
    }
    assert_eq!(
        sum,
        increments.load(Ordering::Relaxed),
        "lost RMW increments"
    );
    assert!(audits > 0);
    assert!(db.verify_integrity().unwrap() > 0);

    // And it all survives a reopen.
    drop(db);
    let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();
    let mut sum2 = 0u64;
    for i in 0..8u32 {
        if let Some(v) = db.get(format!("ctr:{i:02}").as_bytes()).unwrap() {
            sum2 += u64::from_le_bytes(v.try_into().expect("8 bytes"));
        }
    }
    assert_eq!(sum2, sum, "recovery changed the counters");
}
