//! Cross-system equivalence: the same deterministic operation sequence
//! applied to cLSM and to every baseline must produce the same
//! observable state. This is what justifies attributing benchmark
//! differences purely to concurrency control.

use std::sync::Arc;

use clsm_repro::baselines::{
    BlsmLike, HyperLike, KvStore, LevelDbLike, RocksLike, ScanRange, StripedRmw,
};
use clsm_repro::clsm::{Db, Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "xsys-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put(u32, u32),
    Delete(u32),
    PutIfAbsent(u32, u32),
}

fn deterministic_ops(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let key = rng.random_range(0..300u32);
            match rng.random_range(0..10u32) {
                0..=5 => Op::Put(key, rng.random()),
                6..=7 => Op::Delete(key),
                _ => Op::PutIfAbsent(key, rng.random()),
            }
        })
        .collect()
}

fn key(k: u32) -> Vec<u8> {
    format!("key{k:06}").into_bytes()
}

fn apply(store: &dyn KvStore, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => store.put(&key(*k), &v.to_le_bytes()).unwrap(),
            Op::Delete(k) => store.delete(&key(*k)).unwrap(),
            Op::PutIfAbsent(k, v) => {
                store.put_if_absent(&key(*k), &v.to_le_bytes()).unwrap();
            }
        }
    }
    store.quiesce().unwrap();
}

type Observation = (Vec<Option<Vec<u8>>>, Vec<(Vec<u8>, Vec<u8>)>);

/// Full observable state: every key's value plus a complete scan.
fn observe(store: &dyn KvStore) -> Observation {
    let gets = (0..300u32).map(|k| store.get(&key(k)).unwrap()).collect();
    let scan = store.scan(ScanRange::all(), usize::MAX).unwrap();
    (gets, scan)
}

#[test]
fn all_systems_agree_on_sequential_history() {
    let ops = deterministic_ops(0xfeed, 4000);

    let reference = {
        let dir = TempDir::new("ref-clsm");
        let store = Db::open(&dir.0, Options::small_for_tests()).unwrap();
        apply(&store, &ops);
        observe(&store)
    };
    // Scan and gets must agree internally.
    let live: Vec<&Option<Vec<u8>>> = reference.0.iter().filter(|v| v.is_some()).collect();
    assert_eq!(live.len(), reference.1.len());

    let opts = Options::small_for_tests;
    let systems: Vec<(&str, Arc<dyn KvStore>, TempDir)> = vec![
        {
            let d = TempDir::new("leveldb");
            (
                "LevelDB",
                Arc::new(LevelDbLike::open(&d.0, opts()).unwrap()) as _,
                d,
            )
        },
        {
            let d = TempDir::new("hyper");
            (
                "Hyper",
                Arc::new(HyperLike::open(&d.0, opts()).unwrap()) as _,
                d,
            )
        },
        {
            let d = TempDir::new("rocks");
            (
                "Rocks",
                Arc::new(RocksLike::open(&d.0, opts()).unwrap()) as _,
                d,
            )
        },
        {
            let d = TempDir::new("blsm");
            (
                "bLSM",
                Arc::new(BlsmLike::open(&d.0, opts()).unwrap()) as _,
                d,
            )
        },
        {
            let d = TempDir::new("striped");
            (
                "Striped",
                Arc::new(StripedRmw::open(&d.0, opts()).unwrap()) as _,
                d,
            )
        },
    ];

    for (name, store, _dir) in &systems {
        apply(store.as_ref(), &ops);
        let got = observe(store.as_ref());
        assert_eq!(got.0, reference.0, "{name}: point reads diverge from cLSM");
        assert_eq!(got.1, reference.1, "{name}: scans diverge from cLSM");
    }
}

#[test]
fn equivalence_survives_reopen() {
    let ops = deterministic_ops(0xbeef, 1500);
    let dir_a = TempDir::new("reopen-clsm");
    let dir_b = TempDir::new("reopen-lvl");
    let after_a = {
        let store = Db::open(&dir_a.0, Options::small_for_tests()).unwrap();
        apply(&store, &ops);
        drop(store);
        let store = Db::open(&dir_a.0, Options::small_for_tests()).unwrap();
        observe(&store)
    };
    let after_b = {
        let store = LevelDbLike::open(&dir_b.0, Options::small_for_tests()).unwrap();
        apply(&store, &ops);
        drop(store);
        let store = LevelDbLike::open(&dir_b.0, Options::small_for_tests()).unwrap();
        observe(&store)
    };
    assert_eq!(after_a.0, after_b.0);
    assert_eq!(after_a.1, after_b.1);
}
