//! End-to-end smoke of the evaluation pipeline: the workload driver
//! must run every figure's workload against every system without
//! errors and with sane results.

use std::sync::Arc;
use std::time::Duration;

use clsm_repro::baselines::{BlsmLike, HyperLike, KvStore, LevelDbLike, RocksLike, StripedRmw};
use clsm_repro::clsm::{Db, Options};
use clsm_repro::workloads::{production_dataset, run_workload, Prefill, RunConfig, WorkloadSpec};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "wsmoke-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn quick_cfg() -> RunConfig {
    RunConfig {
        threads: 2,
        duration: Duration::from_millis(120),
        seed: 42,
    }
}

fn open_all(dirbase: &str) -> Vec<(Arc<dyn KvStore>, TempDir)> {
    let o = Options::small_for_tests;
    vec![
        {
            let d = TempDir::new(&format!("{dirbase}-clsm"));
            (
                Arc::new(Db::open(&d.0, o()).unwrap()) as Arc<dyn KvStore>,
                d,
            )
        },
        {
            let d = TempDir::new(&format!("{dirbase}-lvl"));
            (Arc::new(LevelDbLike::open(&d.0, o()).unwrap()) as _, d)
        },
        {
            let d = TempDir::new(&format!("{dirbase}-hyp"));
            (Arc::new(HyperLike::open(&d.0, o()).unwrap()) as _, d)
        },
        {
            let d = TempDir::new(&format!("{dirbase}-rck"));
            (Arc::new(RocksLike::open(&d.0, o()).unwrap()) as _, d)
        },
        {
            let d = TempDir::new(&format!("{dirbase}-blm"));
            (Arc::new(BlsmLike::open(&d.0, o()).unwrap()) as _, d)
        },
        {
            let d = TempDir::new(&format!("{dirbase}-str"));
            (Arc::new(StripedRmw::open(&d.0, o()).unwrap()) as _, d)
        },
    ]
}

#[test]
fn write_only_workload_runs_everywhere() {
    let spec = WorkloadSpec::write_only(2_000);
    for (store, _d) in open_all("w") {
        let r = run_workload(&store, &spec, &quick_cfg(), Prefill::Sequential).unwrap();
        assert!(r.ops > 0, "{} made no progress", store.name());
        assert_eq!(r.latency.count(), r.ops);
    }
}

#[test]
fn read_only_workload_runs_everywhere() {
    let mut spec = WorkloadSpec::read_only(2_000);
    spec.prefill = 2_000;
    for (store, _d) in open_all("r") {
        let r = run_workload(&store, &spec, &quick_cfg(), Prefill::Sequential).unwrap();
        assert!(r.ops > 0, "{} made no progress", store.name());
    }
}

#[test]
fn scan_write_workload_counts_keys() {
    let spec = WorkloadSpec::scan_write(2_000);
    for (store, _d) in open_all("s") {
        if store.name() == "bLSM" {
            continue; // excluded from scans, as in the paper
        }
        let r = run_workload(&store, &spec, &quick_cfg(), Prefill::Sequential).unwrap();
        assert!(r.ops > 0);
        // Scans touch multiple keys, so keys ≥ ops with scans present.
        assert!(
            r.keys >= r.ops,
            "{}: keys {} < ops {}",
            store.name(),
            r.keys,
            r.ops
        );
    }
}

#[test]
fn rmw_workload_runs_on_figure9_systems() {
    let spec = WorkloadSpec::rmw(2_000);
    let o = Options::small_for_tests;
    let systems: Vec<(Arc<dyn KvStore>, TempDir)> = vec![
        {
            let d = TempDir::new("rmw-clsm");
            (Arc::new(Db::open(&d.0, o()).unwrap()) as _, d)
        },
        {
            let d = TempDir::new("rmw-striped");
            (Arc::new(StripedRmw::open(&d.0, o()).unwrap()) as _, d)
        },
    ];
    for (store, _d) in systems {
        let r = run_workload(&store, &spec, &quick_cfg(), Prefill::Sequential).unwrap();
        assert!(r.ops > 0, "{} made no progress", store.name());
    }
}

#[test]
fn production_workloads_have_correct_shape() {
    for dataset in 0..4 {
        let spec = production_dataset(dataset, 2_000);
        assert!(spec.mix.read_pct >= 85 && spec.mix.read_pct <= 96);
        let d = TempDir::new(&format!("prod-{dataset}"));
        let store: Arc<dyn KvStore> = Arc::new(Db::open(&d.0, Options::small_for_tests()).unwrap());
        let r = run_workload(&store, &spec, &quick_cfg(), Prefill::Sequential).unwrap();
        assert!(r.ops > 0);
    }
}

#[test]
fn runs_are_deterministic_in_op_content() {
    // Two runs with the same seed against fresh stores must leave
    // equivalent states (the driver's RNGs are deterministic; timing
    // only affects how MANY ops run, so compare a fixed prefix via
    // checksums of the final state being a subset relationship is
    // overkill — instead verify the driver reproduces identical key
    // sequences by running with 1 thread and comparing small scans).
    let spec = WorkloadSpec::write_only(500);
    let cfg = RunConfig {
        threads: 1,
        duration: Duration::from_millis(80),
        seed: 99,
    };
    let d1 = TempDir::new("det1");
    let s1: Arc<dyn KvStore> = Arc::new(Db::open(&d1.0, Options::small_for_tests()).unwrap());
    let r1 = run_workload(&s1, &spec, &cfg, Prefill::Skip).unwrap();
    let d2 = TempDir::new("det2");
    let s2: Arc<dyn KvStore> = Arc::new(Db::open(&d2.0, Options::small_for_tests()).unwrap());
    let r2 = run_workload(&s2, &spec, &cfg, Prefill::Skip).unwrap();
    // The shorter run's touched-key set must be a prefix of the longer
    // run's sequence; with a single thread and same seed the first
    // min(ops) keys are identical, so the smaller store's keys are a
    // subset of the larger one's.
    let (small, large) = if r1.ops <= r2.ops {
        (s1.clone(), s2.clone())
    } else {
        (s2.clone(), s1.clone())
    };
    for (k, _) in small.scan((..).into(), usize::MAX).unwrap() {
        assert!(
            large.get(&k).unwrap().is_some(),
            "non-deterministic key {k:?}"
        );
    }
}
