//! Crash-recovery integration tests: torn WAL tails, asynchronous-
//! logging semantics, and the out-of-order log recovery rule (§4).

use clsm_repro::clsm::{Db, Options};
use clsm_repro::storage::filenames;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "crash-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Finds the live WAL files in a store directory.
fn wal_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if let Some(filenames::FileKind::Wal(_)) =
            filenames::parse_file_name(entry.file_name().to_str().unwrap())
        {
            out.push(entry.path());
        }
    }
    out.sort();
    out
}

#[test]
fn torn_wal_tail_recovers_prefix() {
    let dir = TempDir::new("torn");
    {
        let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();
        for i in 0..500u32 {
            db.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Normal close flushes the logging queue to the OS.
    }
    // Simulate a crash that tore the last WAL block: truncate the
    // newest WAL by a handful of bytes.
    let wals = wal_files(&dir.0);
    let last = wals.last().expect("a live WAL");
    let len = std::fs::metadata(last).unwrap().len();
    if len > 16 {
        let f = std::fs::OpenOptions::new().write(true).open(last).unwrap();
        f.set_len(len - 9).unwrap();
    }

    // Recovery must succeed and return a *prefix*: all-or-nothing per
    // record, with no corruption surfaced to the user.
    let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();
    let mut recovered = 0;
    let mut missing_started = false;
    for i in 0..500u32 {
        match db.get(format!("key{i:05}").as_bytes()).unwrap() {
            Some(v) => {
                assert!(
                    !missing_started,
                    "recovered key {i} after a gap — not a prefix"
                );
                assert_eq!(v, format!("v{i}").into_bytes());
                recovered += 1;
            }
            None => missing_started = true,
        }
    }
    // The paper's async-logging contract: "a handful of writes may be
    // lost due to a crash" — but never more than the torn tail.
    assert!(recovered >= 490, "lost too much: {recovered}/500");
    // And the store remains fully writable.
    db.put(b"after-crash", b"ok").unwrap();
    assert_eq!(db.get(b"after-crash").unwrap(), Some(b"ok".to_vec()));
}

#[test]
fn sync_mode_loses_nothing_on_torn_tail() {
    let dir = TempDir::new("sync-torn");
    let mut opts = Options::small_for_tests();
    opts.sync_writes = true;
    {
        let db = Db::open(&dir.0, opts.clone()).unwrap();
        for i in 0..50u32 {
            db.put(format!("key{i:05}").as_bytes(), b"durable").unwrap();
        }
    }
    // Even truncating a few bytes can only hit bytes after the last
    // acknowledged record (sync mode fsyncs before acking).
    let wals = wal_files(&dir.0);
    if let Some(last) = wals.last() {
        let len = std::fs::metadata(last).unwrap().len();
        // Only remove trailing zero padding — acknowledged records must
        // survive; removing 1 byte of padding is always safe.
        if len > 0 {
            let f = std::fs::OpenOptions::new().write(true).open(last).unwrap();
            f.set_len(len.saturating_sub(1)).unwrap();
        }
    }
    let db = Db::open(&dir.0, opts).unwrap();
    for i in 0..49u32 {
        assert_eq!(
            db.get(format!("key{i:05}").as_bytes()).unwrap(),
            Some(b"durable".to_vec()),
            "sync-acknowledged write {i} lost"
        );
    }
}

#[test]
fn out_of_order_wal_records_recover_in_timestamp_order() {
    // cLSM relaxes the single-writer constraint, so concurrent writers
    // append WAL records out of timestamp order; §4: "the correct order
    // is easily restored upon recovery". Hammer one key from many
    // threads, reopen, and check the surviving value is the one with
    // the highest timestamp (i.e. the last committed write).
    let dir = TempDir::new("ooo");
    let final_value;
    {
        let db = std::sync::Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = std::sync::Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    db.put(b"contended", format!("t{t}-i{i}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        final_value = db.get(b"contended").unwrap().unwrap();
    }
    let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();
    assert_eq!(
        db.get(b"contended").unwrap(),
        Some(final_value),
        "recovery resurrected a stale version"
    );
}

#[test]
fn repeated_crash_reopen_cycles_accumulate_data() {
    let dir = TempDir::new("cycles");
    for round in 0..6u32 {
        let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();
        // Everything from earlier rounds is present.
        for prior in 0..round {
            for i in 0..100u32 {
                assert_eq!(
                    db.get(format!("r{prior}-k{i:04}").as_bytes()).unwrap(),
                    Some(format!("r{prior}").into_bytes()),
                    "round {round} lost r{prior}-k{i}"
                );
            }
        }
        for i in 0..100u32 {
            db.put(
                format!("r{round}-k{i:04}").as_bytes(),
                format!("r{round}").as_bytes(),
            )
            .unwrap();
        }
        // Alternate between flushed and unflushed shutdowns.
        if round % 2 == 0 {
            db.compact_to_quiescence().unwrap();
        }
    }
}
