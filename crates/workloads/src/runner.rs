//! Multi-threaded workload driver.
//!
//! Mirrors the paper's harness: N worker threads issue operations from
//! a [`WorkloadSpec`] against one [`KvStore`] for a fixed duration,
//! recording throughput and per-operation latency histograms (the 90th
//! percentile is what Figures 5b/6b plot).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clsm_baselines::{KvStore, ScanRange};
use clsm_util::error::Result;
use clsm_util::histogram::Histogram;

use crate::keygen::{value_for, KeyGen};
use crate::spec::WorkloadSpec;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// How long to run the measured phase.
    pub duration: Duration,
    /// RNG seed base (per-thread seeds derive from it).
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            duration: Duration::from_secs(2),
            seed: 0x5eed,
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completed operations (scans count once).
    pub ops: u64,
    /// Keys touched (scans count each returned key — Figure 7b's
    /// metric).
    pub keys: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Latency of all operations, in nanoseconds.
    pub latency: Histogram,
}

impl RunResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    /// Keys per second (scan-aware throughput).
    pub fn keys_per_sec(&self) -> f64 {
        self.keys as f64 / self.elapsed.as_secs_f64()
    }

    /// 90th-percentile latency in microseconds.
    pub fn p90_latency_us(&self) -> f64 {
        self.latency.percentile(90.0) as f64 / 1000.0
    }
}

/// Prefill mode for building the initial dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefill {
    /// Insert `spec.prefill` keys sequentially (fast, §5.3's fill).
    Sequential,
    /// Skip prefilling (e.g. when reusing a store across sweeps).
    Skip,
}

/// Loads the initial dataset described by `spec`.
pub fn prefill_store(store: &dyn KvStore, spec: &WorkloadSpec) -> Result<()> {
    if spec.prefill == 0 {
        return Ok(());
    }
    let gen = KeyGen::new(
        spec.key_space,
        spec.key_len,
        crate::KeyDistribution::Sequential,
    );
    for i in 0..spec.prefill {
        let key = gen.format(i % spec.key_space);
        store.put(&key, &value_for(i, spec.value_len))?;
    }
    store.quiesce()?;
    Ok(())
}

/// Runs `spec` against `store` with `cfg.threads` workers.
///
/// Every thread gets an independent deterministic RNG, so runs are
/// reproducible given `cfg.seed`.
pub fn run_workload(
    store: &Arc<dyn KvStore>,
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    prefill: Prefill,
) -> Result<RunResult> {
    if prefill == Prefill::Sequential {
        prefill_store(store.as_ref(), spec)?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..cfg.threads {
        let store = Arc::clone(store);
        let stop = Arc::clone(&stop);
        let spec = spec.clone();
        let seed = cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9);
        handles.push(std::thread::spawn(move || {
            worker(&*store, &spec, seed, &stop)
        }));
    }
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);

    let mut ops = 0u64;
    let mut keys = 0u64;
    let mut latency = Histogram::new();
    for h in handles {
        let r = h.join().expect("worker panicked")?;
        ops += r.0;
        keys += r.1;
        latency.merge(&r.2);
    }
    Ok(RunResult {
        ops,
        keys,
        elapsed: start.elapsed(),
        latency,
    })
}

/// One worker loop; returns `(ops, keys, latency)`.
fn worker(
    store: &dyn KvStore,
    spec: &WorkloadSpec,
    seed: u64,
    stop: &AtomicBool,
) -> Result<(u64, u64, Histogram)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = KeyGen::new(spec.key_space, spec.key_len, spec.dist.clone());
    let mut latency = Histogram::new();
    let mut ops = 0u64;
    let mut keys = 0u64;
    let mut value_salt = seed;

    while !stop.load(Ordering::Relaxed) {
        let dice = rng.random_range(0..100u32);
        let began = Instant::now();
        let touched = if dice < spec.mix.read_pct {
            let key = gen.next_key(&mut rng);
            let _ = store.get(&key)?;
            1
        } else if dice < spec.mix.read_pct + spec.mix.write_pct {
            let key = gen.next_key(&mut rng);
            value_salt = value_salt.wrapping_add(1);
            store.put(&key, &value_for(value_salt, spec.value_len))?;
            1
        } else if dice < spec.mix.read_pct + spec.mix.write_pct + spec.mix.scan_pct {
            let key = gen.next_key(&mut rng);
            let len = rng.random_range(spec.scan_len.0..=spec.scan_len.1);
            let got = store.scan(ScanRange::from_start(key.clone()), len)?;
            got.len() as u64
        } else {
            let key = gen.next_key(&mut rng);
            value_salt = value_salt.wrapping_add(1);
            let _ = store.put_if_absent(&key, &value_for(value_salt, spec.value_len))?;
            1
        };
        latency.record(began.elapsed().as_nanos() as u64);
        ops += 1;
        keys += touched;
    }
    Ok((ops, keys, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpMix;
    use crate::KeyDistribution;
    use clsm::{Db, Options};

    fn tempdir(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "runner-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn driver_reports_progress_on_all_op_kinds() {
        let dir = tempdir("mixed");
        let db: Arc<dyn KvStore> = Arc::new(Db::open(&dir, Options::small_for_tests()).unwrap());
        let mut spec = WorkloadSpec::synthetic(
            "smoke",
            OpMix {
                read_pct: 40,
                write_pct: 40,
                scan_pct: 10,
                rmw_pct: 10,
            },
            1000,
            KeyDistribution::Uniform,
        );
        spec.prefill = 500;
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(150),
            seed: 1,
        };
        let r = run_workload(&db, &spec, &cfg, Prefill::Sequential).unwrap();
        assert!(r.ops > 0);
        assert!(r.keys >= r.ops);
        assert!(r.ops_per_sec() > 0.0);
        assert!(r.latency.count() == r.ops);
        // Shut the store down before deleting its directory: background
        // flush/WAL threads may still be creating files inside it.
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefill_populates_the_store() {
        let dir = tempdir("prefill");
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let mut spec = WorkloadSpec::write_only(100);
        spec.prefill = 100;
        prefill_store(&db, &spec).unwrap();
        let key = crate::keygen::format_key(42, spec.key_len);
        assert!(db.get(&key).unwrap().is_some());
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
