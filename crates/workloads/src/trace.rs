//! Operation-trace record and replay.
//!
//! The paper's production evaluation (§5.2) replays "logs captured in a
//! production key-value store … each log captures the history of
//! operations applied to an individual partition server". This module
//! provides the same capability: record a workload's operations to a
//! compact binary trace file, then replay the trace — optionally with
//! several threads — against any store. It also synthesizes traces
//! with the §5.2 distribution so the Figure 10 experiments can run
//! from files exactly the way the paper's did.
//!
//! Trace file format: a stream of records, each
//! `[op: u8][key len: varint][key][value len: varint][value]`,
//! preceded by the 8-byte magic `CLSMTRC1`.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clsm_baselines::KvStore;
use clsm_util::coding::{get_varint64, put_varint64};
use clsm_util::error::{Error, Result};

use crate::keygen::{value_for, KeyGen};
use crate::spec::WorkloadSpec;

const MAGIC: &[u8; 8] = b"CLSMTRC1";

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A point read.
    Get(Vec<u8>),
    /// A put of key/value.
    Put(Vec<u8>, Vec<u8>),
    /// A delete.
    Delete(Vec<u8>),
    /// A range scan: start key + length (length stored in the value
    /// field as 8 LE bytes).
    Scan(Vec<u8>, u32),
}

impl TraceOp {
    fn tag(&self) -> u8 {
        match self {
            TraceOp::Get(_) => 0,
            TraceOp::Put(..) => 1,
            TraceOp::Delete(_) => 2,
            TraceOp::Scan(..) => 3,
        }
    }
}

/// Writes operations to a trace file.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<std::fs::File>,
    count: u64,
}

impl TraceWriter {
    /// Creates a trace file at `path` (overwrites).
    pub fn create(path: &Path) -> Result<TraceWriter> {
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        out.write_all(MAGIC)?;
        Ok(TraceWriter { out, count: 0 })
    }

    /// Appends one operation.
    pub fn record(&mut self, op: &TraceOp) -> Result<()> {
        let mut buf = Vec::new();
        buf.push(op.tag());
        let key: &[u8] = match op {
            TraceOp::Get(k) | TraceOp::Delete(k) | TraceOp::Put(k, _) | TraceOp::Scan(k, _) => k,
        };
        put_varint64(&mut buf, key.len() as u64);
        buf.extend_from_slice(key);
        match op {
            TraceOp::Put(_, v) => {
                put_varint64(&mut buf, v.len() as u64);
                buf.extend_from_slice(v);
            }
            TraceOp::Scan(_, len) => {
                put_varint64(&mut buf, 4);
                buf.extend_from_slice(&len.to_le_bytes());
            }
            TraceOp::Get(_) | TraceOp::Delete(_) => put_varint64(&mut buf, 0),
        }
        self.out.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Flushes and finishes the trace; returns the operation count.
    pub fn finish(mut self) -> Result<u64> {
        self.out.flush()?;
        Ok(self.count)
    }
}

/// Reads a trace file back.
#[derive(Debug)]
pub struct TraceReader {
    data: Vec<u8>,
    pos: usize,
}

impl TraceReader {
    /// Opens and validates `path`.
    pub fn open(path: &Path) -> Result<TraceReader> {
        let mut data = Vec::new();
        BufReader::new(std::fs::File::open(path)?).read_to_end(&mut data)?;
        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            return Err(Error::corruption("not a cLSM trace file"));
        }
        Ok(TraceReader {
            data,
            pos: MAGIC.len(),
        })
    }

    /// Reads the next operation, or `None` at end-of-trace.
    pub fn next_op(&mut self) -> Result<Option<TraceOp>> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let tag = self.data[self.pos];
        self.pos += 1;
        let (klen, n) = get_varint64(&self.data[self.pos..])?;
        self.pos += n;
        let key = self
            .data
            .get(self.pos..self.pos + klen as usize)
            .ok_or_else(|| Error::corruption("truncated trace key"))?
            .to_vec();
        self.pos += klen as usize;
        let (vlen, n) = get_varint64(&self.data[self.pos..])?;
        self.pos += n;
        let value = self
            .data
            .get(self.pos..self.pos + vlen as usize)
            .ok_or_else(|| Error::corruption("truncated trace value"))?
            .to_vec();
        self.pos += vlen as usize;
        let op = match tag {
            0 => TraceOp::Get(key),
            1 => TraceOp::Put(key, value),
            2 => TraceOp::Delete(key),
            3 => {
                let len = u32::from_le_bytes(
                    value
                        .as_slice()
                        .try_into()
                        .map_err(|_| Error::corruption("bad scan length"))?,
                );
                TraceOp::Scan(key, len)
            }
            t => return Err(Error::corruption(format!("unknown trace op {t}"))),
        };
        Ok(Some(op))
    }

    /// Reads the remaining operations into memory.
    pub fn read_all(&mut self) -> Result<Vec<TraceOp>> {
        let mut out = Vec::new();
        while let Some(op) = self.next_op()? {
            out.push(op);
        }
        Ok(out)
    }
}

/// Synthesizes a §5.2-style trace file from a workload spec: `ops`
/// operations drawn with the spec's distribution and mix.
pub fn synthesize_trace(path: &Path, spec: &WorkloadSpec, ops: u64, seed: u64) -> Result<u64> {
    let mut writer = TraceWriter::create(path)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = KeyGen::new(spec.key_space, spec.key_len, spec.dist.clone());
    for i in 0..ops {
        let dice = rng.random_range(0..100u32);
        let key = gen.next_key(&mut rng);
        let op = if dice < spec.mix.read_pct {
            TraceOp::Get(key)
        } else if dice < spec.mix.read_pct + spec.mix.write_pct {
            TraceOp::Put(key, value_for(seed ^ i, spec.value_len))
        } else if dice < spec.mix.read_pct + spec.mix.write_pct + spec.mix.scan_pct {
            TraceOp::Scan(
                key,
                rng.random_range(spec.scan_len.0..=spec.scan_len.1) as u32,
            )
        } else {
            // RMW is recorded as a put (replay has no decision logic).
            TraceOp::Put(key, value_for(seed ^ i, spec.value_len))
        };
        writer.record(&op)?;
    }
    writer.finish()
}

/// Replay statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations applied.
    pub ops: u64,
    /// Gets that found a value.
    pub hits: u64,
    /// Keys returned by scans.
    pub scanned_keys: u64,
}

/// Replays a trace against `store` with `threads` workers; operations
/// are dealt round-robin (per-key order is preserved only with one
/// thread, as with the paper's partition logs).
pub fn replay_trace(store: &Arc<dyn KvStore>, path: &Path, threads: usize) -> Result<ReplayStats> {
    let ops = TraceReader::open(path)?.read_all()?;
    let ops = Arc::new(ops);
    let cursor = Arc::new(AtomicUsize::new(0));
    let threads = threads.max(1);
    let mut handles = Vec::new();
    for _ in 0..threads {
        let store = Arc::clone(store);
        let ops = Arc::clone(&ops);
        let cursor = Arc::clone(&cursor);
        handles.push(std::thread::spawn(move || -> Result<ReplayStats> {
            let mut stats = ReplayStats::default();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(op) = ops.get(i) else { break };
                match op {
                    TraceOp::Get(k) => {
                        if store.get(k)?.is_some() {
                            stats.hits += 1;
                        }
                    }
                    TraceOp::Put(k, v) => store.put(k, v)?,
                    TraceOp::Delete(k) => store.delete(k)?,
                    TraceOp::Scan(k, len) => {
                        stats.scanned_keys += store
                            .scan(
                                clsm_baselines::ScanRange::from_start(k.clone()),
                                *len as usize,
                            )?
                            .len() as u64;
                    }
                }
                stats.ops += 1;
            }
            Ok(stats)
        }));
    }
    let mut total = ReplayStats::default();
    for h in handles {
        let s = h.join().expect("replay worker panicked")?;
        total.ops += s.ops;
        total.hits += s.hits;
        total.scanned_keys += s.scanned_keys;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyDistribution;
    use crate::spec::OpMix;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "trace-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let path = temp_path("roundtrip");
        let ops = vec![
            TraceOp::Put(b"k1".to_vec(), b"v1".to_vec()),
            TraceOp::Get(b"k1".to_vec()),
            TraceOp::Scan(b"k".to_vec(), 17),
            TraceOp::Delete(b"k1".to_vec()),
            TraceOp::Put(b"".to_vec(), vec![0xff; 300]),
        ];
        let mut w = TraceWriter::create(&path).unwrap();
        for op in &ops {
            w.record(op).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 5);
        let got = TraceReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(got, ops);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_foreign_files() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a trace").unwrap();
        assert!(TraceReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_trace_errors_cleanly() {
        let path = temp_path("trunc");
        let mut w = TraceWriter::create(&path).unwrap();
        w.record(&TraceOp::Put(b"key".to_vec(), vec![1; 100]))
            .unwrap();
        w.finish().unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 20]).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        assert!(r.read_all().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn synthesized_trace_matches_spec_mix() {
        let path = temp_path("synth");
        let spec = WorkloadSpec::synthetic(
            "t",
            OpMix {
                read_pct: 70,
                write_pct: 20,
                scan_pct: 10,
                rmw_pct: 0,
            },
            500,
            KeyDistribution::Uniform,
        );
        let n = synthesize_trace(&path, &spec, 5_000, 42).unwrap();
        assert_eq!(n, 5_000);
        let ops = TraceReader::open(&path).unwrap().read_all().unwrap();
        let gets = ops.iter().filter(|o| matches!(o, TraceOp::Get(_))).count();
        let puts = ops.iter().filter(|o| matches!(o, TraceOp::Put(..))).count();
        let scans = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Scan(..)))
            .count();
        assert!((3000..=4000).contains(&gets), "gets={gets}");
        assert!((700..=1300).contains(&puts), "puts={puts}");
        assert!((300..=700).contains(&scans), "scans={scans}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_applies_to_store() {
        let path = temp_path("replay");
        let mut w = TraceWriter::create(&path).unwrap();
        for i in 0..200u32 {
            w.record(&TraceOp::Put(
                format!("key{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            ))
            .unwrap();
        }
        w.record(&TraceOp::Delete(b"key0000".to_vec())).unwrap();
        w.record(&TraceOp::Get(b"key0001".to_vec())).unwrap();
        w.record(&TraceOp::Scan(b"key".to_vec(), 10)).unwrap();
        w.finish().unwrap();

        let dir = temp_path("replay-db");
        std::fs::create_dir_all(&dir).unwrap();
        let store: Arc<dyn KvStore> =
            Arc::new(clsm::Db::open(&dir, clsm::Options::small_for_tests()).unwrap());
        // Single-threaded replay preserves order: the delete lands after
        // the puts.
        let stats = replay_trace(&store, &path, 1).unwrap();
        assert_eq!(stats.ops, 203);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.scanned_keys, 10);
        assert_eq!(store.get(b"key0000").unwrap(), None);
        assert!(store.get(b"key0199").unwrap().is_some());
        drop(store);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
