//! Zipf-distributed rank sampler (YCSB-style).
//!
//! Used for the production workloads' heavy-tail key popularity. The
//! implementation follows the classic Gray et al. / YCSB
//! `ZipfianGenerator`: O(1) sampling after an O(N)-ish constant
//! precomputation (harmonic number), deterministic given the RNG.

use rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1 / (rank+1)^theta`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` (0 < theta
    /// < 1; YCSB's default 0.99 reproduces web-serving tails).
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0);
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Internal consistency check hook (used by tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Truncated zeta: sum over i in 1..=n of 1/i^theta.
///
/// Exact for small n; for large n, uses the Euler–Maclaurin
/// approximation (error far below sampling noise).
fn zeta(n: u64, theta: f64) -> f64 {
    const EXACT_LIMIT: u64 = 1_000_000;
    if n <= EXACT_LIMIT {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=EXACT_LIMIT)
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        // ∫ x^-theta dx from EXACT_LIMIT to n.
        let a = EXACT_LIMIT as f64;
        let b = n as f64;
        head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head_hits = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 1000 {
                head_hits += 1; // top 10% of ranks
            }
        }
        // The paper's production tails: top 10% of keys ≥ 75% of
        // requests; theta = 0.99 satisfies it.
        assert!(
            head_hits as f64 / total as f64 > 0.72,
            "top-10% share = {}",
            head_hits as f64 / total as f64
        );
    }

    #[test]
    fn top_two_percent_serves_about_half() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 200 {
                hits += 1;
            }
        }
        let share = hits as f64 / total as f64;
        assert!((0.4..0.75).contains(&share), "top-2% share = {share}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipf::new(5000, 0.8);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn large_n_constructs_quickly_and_samples() {
        let z = Zipf::new(2_000_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 2_000_000_000);
        }
    }
}
