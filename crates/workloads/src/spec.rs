//! Workload specifications matching the paper's evaluation setups.

use crate::keygen::KeyDistribution;

/// Operation mix in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Point reads.
    pub read_pct: u32,
    /// Puts.
    pub write_pct: u32,
    /// Range scans.
    pub scan_pct: u32,
    /// Put-if-absent read-modify-writes.
    pub rmw_pct: u32,
}

impl OpMix {
    /// 100% writes (Figure 5).
    pub fn write_only() -> OpMix {
        OpMix {
            read_pct: 0,
            write_pct: 100,
            scan_pct: 0,
            rmw_pct: 0,
        }
    }

    /// 100% reads (Figure 6).
    pub fn read_only() -> OpMix {
        OpMix {
            read_pct: 100,
            write_pct: 0,
            scan_pct: 0,
            rmw_pct: 0,
        }
    }

    /// 1:1 read/write (Figure 7a).
    pub fn mixed() -> OpMix {
        OpMix {
            read_pct: 50,
            write_pct: 50,
            scan_pct: 0,
            rmw_pct: 0,
        }
    }

    /// Scan/write mix (Figure 7b): scans are 10x rarer than writes so
    /// keys-scanned ≈ keys-written (ranges average 15 keys).
    pub fn scan_write() -> OpMix {
        OpMix {
            read_pct: 0,
            write_pct: 94,
            scan_pct: 6,
            rmw_pct: 0,
        }
    }

    /// 100% read-modify-write (Figure 9).
    pub fn rmw_only() -> OpMix {
        OpMix {
            read_pct: 0,
            write_pct: 0,
            scan_pct: 0,
            rmw_pct: 100,
        }
    }

    /// Production read ratio (Figure 10): `read_pct` reads, the rest
    /// writes.
    pub fn read_heavy(read_pct: u32) -> OpMix {
        OpMix {
            read_pct,
            write_pct: 100 - read_pct,
            scan_pct: 0,
            rmw_pct: 0,
        }
    }

    fn total(&self) -> u32 {
        self.read_pct + self.write_pct + self.scan_pct + self.rmw_pct
    }
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// Operation mix.
    pub mix: OpMix,
    /// Number of distinct keys.
    pub key_space: u64,
    /// Key size in bytes.
    pub key_len: usize,
    /// Value size in bytes.
    pub value_len: usize,
    /// Key popularity distribution for reads/writes.
    pub dist: KeyDistribution,
    /// Range-scan length bounds (inclusive), Figure 7b uses 10..=20.
    pub scan_len: (usize, usize),
    /// Keys to insert before timing starts (0 = none).
    pub prefill: u64,
}

impl WorkloadSpec {
    /// §5.1 synthetic base: 8-byte logical keys (16-byte formatted) and
    /// 256-byte values over `key_space` keys.
    pub fn synthetic(name: &str, mix: OpMix, key_space: u64, dist: KeyDistribution) -> Self {
        assert_eq!(mix.total(), 100, "op mix must sum to 100");
        WorkloadSpec {
            name: name.to_string(),
            mix,
            key_space,
            key_len: 16,
            value_len: 256,
            dist,
            scan_len: (10, 20),
            prefill: 0,
        }
    }

    /// §5.1 write benchmark: uniform keys, no prefill.
    pub fn write_only(key_space: u64) -> Self {
        Self::synthetic(
            "write-100",
            OpMix::write_only(),
            key_space,
            KeyDistribution::Uniform,
        )
    }

    /// §5.1 read benchmark: skewed reads over a prefilled store.
    pub fn read_only(key_space: u64) -> Self {
        let mut s = Self::synthetic(
            "read-100",
            OpMix::read_only(),
            key_space,
            KeyDistribution::PopularBlocks {
                popular_pct: 0.9,
                popular_space_pct: 0.1,
                blocks: 64,
            },
        );
        s.prefill = key_space;
        s
    }

    /// §5.1 mixed benchmark (Figure 7a).
    pub fn mixed(key_space: u64) -> Self {
        let mut s = Self::synthetic(
            "mixed-50-50",
            OpMix::mixed(),
            key_space,
            KeyDistribution::PopularBlocks {
                popular_pct: 0.9,
                popular_space_pct: 0.1,
                blocks: 64,
            },
        );
        s.prefill = key_space / 2;
        s
    }

    /// §5.1 scan/write benchmark (Figure 7b).
    pub fn scan_write(key_space: u64) -> Self {
        let mut s = Self::synthetic(
            "scan-write",
            OpMix::scan_write(),
            key_space,
            KeyDistribution::PopularBlocks {
                popular_pct: 0.9,
                popular_space_pct: 0.1,
                blocks: 64,
            },
        );
        s.prefill = key_space / 2;
        s
    }

    /// §5.1 RMW benchmark (Figure 9): put-if-absent with locality.
    pub fn rmw(key_space: u64) -> Self {
        let mut s = Self::synthetic(
            "rmw-100",
            OpMix::rmw_only(),
            key_space,
            KeyDistribution::PopularBlocks {
                popular_pct: 0.9,
                popular_space_pct: 0.1,
                blocks: 64,
            },
        );
        s.prefill = key_space / 4;
        s
    }

    /// §5.3 disk-bound update benchmark: 10-byte keys (16 formatted),
    /// 400-byte values, uniform updates over a sequentially filled
    /// store.
    pub fn disk_bound(key_space: u64) -> Self {
        WorkloadSpec {
            name: "disk-bound-update".to_string(),
            mix: OpMix::write_only(),
            key_space,
            key_len: 16,
            value_len: 400,
            dist: KeyDistribution::Uniform,
            scan_len: (10, 20),
            prefill: key_space,
        }
    }
}

/// §5.2 production datasets: four representative read ratios with
/// heavy-tail popularity, 40-byte keys and 1 KiB values.
pub fn production_dataset(index: usize, key_space: u64) -> WorkloadSpec {
    // Read percentages of the four datasets in Figure 10.
    let read_pcts = [93, 85, 96, 86];
    let read_pct = read_pcts[index % read_pcts.len()];
    let mut s = WorkloadSpec {
        name: format!("production-{} ({}% reads)", index + 1, read_pct),
        mix: OpMix::read_heavy(read_pct),
        key_space,
        key_len: 40,
        value_len: 1024,
        dist: KeyDistribution::HeavyTail { theta: 0.99 },
        scan_len: (10, 20),
        prefill: 0,
    };
    s.prefill = key_space / 2;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_100() {
        for m in [
            OpMix::write_only(),
            OpMix::read_only(),
            OpMix::mixed(),
            OpMix::scan_write(),
            OpMix::rmw_only(),
            OpMix::read_heavy(93),
        ] {
            assert_eq!(m.total(), 100);
        }
    }

    #[test]
    fn production_specs_match_paper_parameters() {
        let s = production_dataset(0, 1000);
        assert_eq!(s.key_len, 40);
        assert_eq!(s.value_len, 1024);
        assert_eq!(s.mix.read_pct, 93);
        let s = production_dataset(3, 1000);
        assert_eq!(s.mix.read_pct, 86);
    }

    #[test]
    #[should_panic(expected = "op mix must sum to 100")]
    fn bad_mix_rejected() {
        let bad = OpMix {
            read_pct: 50,
            write_pct: 10,
            scan_pct: 0,
            rmw_pct: 0,
        };
        let _ = WorkloadSpec::synthetic("bad", bad, 10, KeyDistribution::Uniform);
    }
}
