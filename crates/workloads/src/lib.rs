//! Workload generators and the multi-threaded driver for the cLSM
//! evaluation (§5).
//!
//! Three workload families from the paper:
//!
//! - **Synthetic** (§5.1): 8-byte keys / 256-byte values; uniform
//!   writes, skewed reads (90% of operations on "popular" blocks
//!   covering 10% of the database), 1:1 mixes, scan/write mixes, and
//!   put-if-absent RMW.
//! - **Production** (§5.2): 40-byte keys / 1 KiB values, 85–96% reads,
//!   heavy-tail key popularity (top 10% of keys ≈ 75%+ of requests,
//!   top 1–2% ≈ 50%, ~10% of keys seen once). We synthesize traces
//!   with those published aggregate properties.
//! - **Disk-bound** (§5.3): sequential fill followed by uniform
//!   updates, 10-byte keys / 400-byte values.
//!
//! [`runner`] drives any [`clsm_baselines::KvStore`] with a fixed
//! thread count and records throughput plus latency percentiles.

#![warn(missing_docs)]

pub mod keygen;
pub mod runner;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use keygen::{KeyDistribution, KeyGen};
pub use runner::{run_workload, Prefill, RunConfig, RunResult};
pub use spec::{production_dataset, OpMix, WorkloadSpec};
pub use trace::{replay_trace, synthesize_trace, ReplayStats, TraceOp, TraceReader, TraceWriter};
pub use zipf::Zipf;
