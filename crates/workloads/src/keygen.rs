//! Key generation: distributions and formatting.

use rand::Rng;

use crate::zipf::Zipf;

/// How key indices are drawn from the key space.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Uniform over the whole space (the §5.1 write benchmark: "keys
    /// are drawn uniformly at random from the entire range").
    Uniform,
    /// The §5.1 read benchmark: with probability `popular_pct`, pick
    /// uniformly inside contiguous "popular" blocks covering
    /// `popular_space_pct` of the space; otherwise uniform over all.
    PopularBlocks {
        /// Fraction of operations aimed at popular blocks (0.9).
        popular_pct: f64,
        /// Fraction of the key space that is popular (0.1).
        popular_space_pct: f64,
        /// Number of popular blocks spread across the space.
        blocks: u64,
    },
    /// Heavy-tail production popularity (§5.2), Zipf-distributed ranks
    /// scattered over the space.
    HeavyTail {
        /// Zipf skew (0.99 matches the published tail shares).
        theta: f64,
    },
    /// Strictly sequential (the §5.3 initial fill).
    Sequential,
}

/// Draws formatted keys from a distribution over `space` indices.
#[derive(Debug, Clone)]
pub struct KeyGen {
    space: u64,
    key_len: usize,
    dist: KeyDistribution,
    zipf: Option<Zipf>,
    sequential_next: u64,
}

impl KeyGen {
    /// Creates a generator over `space` distinct keys of `key_len`
    /// bytes (minimum 16 to hold the decimal index).
    pub fn new(space: u64, key_len: usize, dist: KeyDistribution) -> KeyGen {
        assert!(space > 0);
        let zipf = match &dist {
            KeyDistribution::HeavyTail { theta } => Some(Zipf::new(space, *theta)),
            _ => None,
        };
        KeyGen {
            space,
            key_len: key_len.max(16),
            dist,
            zipf,
            sequential_next: 0,
        }
    }

    /// The number of distinct keys.
    pub fn space(&self) -> u64 {
        self.space
    }

    /// Draws the next key index.
    pub fn next_index<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        match &self.dist {
            KeyDistribution::Uniform => rng.random_range(0..self.space),
            KeyDistribution::PopularBlocks {
                popular_pct,
                popular_space_pct,
                blocks,
            } => {
                if rng.random::<f64>() < *popular_pct {
                    // Pick a block, then a slot inside it. Blocks are
                    // spread evenly over the space.
                    let blocks = (*blocks).clamp(1, self.space);
                    let popular_total = ((self.space as f64) * popular_space_pct).max(1.0) as u64;
                    let block_len = (popular_total / blocks).max(1);
                    let stride = self.space / blocks;
                    let b = rng.random_range(0..blocks);
                    let off = rng.random_range(0..block_len);
                    (b * stride + off).min(self.space - 1)
                } else {
                    rng.random_range(0..self.space)
                }
            }
            KeyDistribution::HeavyTail { .. } => {
                let rank = self.zipf.as_ref().expect("zipf built in new").sample(rng);
                // Scatter ranks over the space so popular keys are not
                // physically clustered (matches production layouts).
                scatter(rank, self.space)
            }
            KeyDistribution::Sequential => {
                let i = self.sequential_next;
                self.sequential_next = (self.sequential_next + 1) % self.space;
                i
            }
        }
    }

    /// Formats index `i` as a key (stable across distributions so
    /// prefill and access agree).
    pub fn format(&self, i: u64) -> Vec<u8> {
        format_key(i, self.key_len)
    }

    /// Draws and formats the next key.
    pub fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<u8> {
        let i = self.next_index(rng);
        self.format(i)
    }
}

/// Formats index `i` into exactly `key_len` bytes: zero-padded decimal
/// with a deterministic filler tail for wider production-style keys.
pub fn format_key(i: u64, key_len: usize) -> Vec<u8> {
    let mut key = format!("{i:016}").into_bytes();
    while key.len() < key_len {
        // Deterministic filler derived from the index: cheap and makes
        // long keys (40-byte production keys) realistic for prefix
        // compression.
        key.push(b'a' + ((i >> (key.len() % 57)) & 0xf) as u8);
    }
    key.truncate(key_len);
    key
}

/// Bijective-ish scatter of ranks over the space (multiplicative hash
/// modulo the space; collisions are tolerable for sampling purposes).
fn scatter(rank: u64, space: u64) -> u64 {
    rank.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) % space
}

/// Generates deterministic values of a given size, keyed by index.
pub fn value_for(i: u64, value_len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(value_len);
    let mut x = i.wrapping_mul(0xd134_2543_de82_ef95).wrapping_add(1);
    while v.len() < value_len {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        v.extend_from_slice(&x.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes());
    }
    v.truncate(value_len);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn format_is_fixed_width_and_ordered() {
        for len in [16, 40] {
            let a = format_key(1, len);
            let b = format_key(2, len);
            let c = format_key(100, len);
            assert_eq!(a.len(), len);
            assert!(a < b && b < c);
        }
    }

    #[test]
    fn uniform_covers_space() {
        let mut g = KeyGen::new(100, 16, KeyDistribution::Uniform);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let i = g.next_index(&mut rng);
            assert!(i < 100);
            seen.insert(i);
        }
        assert!(seen.len() > 95);
    }

    #[test]
    fn popular_blocks_concentrate_traffic() {
        let mut g = KeyGen::new(
            100_000,
            16,
            KeyDistribution::PopularBlocks {
                popular_pct: 0.9,
                popular_space_pct: 0.1,
                blocks: 10,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        // Count how much traffic lands on the top-10% most-hit keys.
        let mut counts = std::collections::HashMap::new();
        let total = 100_000;
        for _ in 0..total {
            *counts.entry(g.next_index(&mut rng)).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = freqs.iter().take(10_000).sum();
        assert!(
            hot as f64 / total as f64 >= 0.85,
            "hot share {}",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn sequential_wraps() {
        let mut g = KeyGen::new(3, 16, KeyDistribution::Sequential);
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u64> = (0..7).map(|_| g.next_index(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn heavy_tail_within_space() {
        let mut g = KeyGen::new(1000, 40, KeyDistribution::HeavyTail { theta: 0.99 });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            assert!(g.next_index(&mut rng) < 1000);
        }
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        assert_eq!(value_for(7, 256), value_for(7, 256));
        assert_ne!(value_for(7, 256), value_for(8, 256));
        assert_eq!(value_for(3, 1024).len(), 1024);
        assert_eq!(value_for(3, 0).len(), 0);
    }
}
