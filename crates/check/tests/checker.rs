//! End-to-end checker runs: clean systems pass seeded adversarial
//! schedules, mutated systems fail them with minimized
//! counterexamples, and crash-reopen runs recover the durable prefix.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clsm_check::driver::{run_schedule, schedule_keys, ScheduleCfg};
use clsm_check::snapcheck::RecoveredState;
use clsm_check::sut::{open_sut, open_sut_with, CrashSut};
use clsm_check::{check_history, mutations, CheckMode};
use clsm_kv::record::RecordingSession;
use clsm_kv::WriteOptions;
use clsm_kv::{KvStore, RmwDecision};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "clsm-check-{tag}-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn check_clean(system: &str, seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let dir = fresh_dir(&format!("clean-{system}"));
        let sut = open_sut(system, &dir).unwrap();
        let mut cfg = ScheduleCfg::new(seed);
        cfg.caps = sut.caps;
        let events = run_schedule(Arc::clone(&sut.store), sut.chaos.clone(), &cfg);
        assert!(!events.is_empty());
        let verdict = check_history(
            system,
            "clean",
            seed,
            &events,
            None,
            CheckMode::Serializable,
        );
        assert!(
            verdict.pass,
            "{system} seed {seed} failed:\n{}",
            verdict.failures.join("\n")
        );
        drop(sut);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn clean_clsm_passes_seeded_schedules() {
    check_clean("clsm", 0..4);
}

#[test]
fn clean_sharded_passes_seeded_schedules() {
    check_clean("clsm-sharded-4", 10..14);
}

#[test]
fn clean_tiered_and_hybrid_policies_pass_seeded_schedules() {
    // The alternative compaction scheduling policies must preserve the
    // same observable history — backgrounds merges of any shape are
    // invisible to clients.
    check_clean("clsm-tiered", 20..22);
    check_clean("clsm-hybrid", 22..24);
}

#[test]
fn clean_baselines_pass_a_schedule() {
    // One seed each: the full sweep lives in the clsm-check binary and
    // the CI matrix; this keeps `cargo test` bounded.
    for system in ["leveldb", "rocksdb", "striped", "partitioned-4"] {
        check_clean(system, 100..101);
    }
}

/// Mutations must FAIL — and produce a minimized counterexample. Each
/// mutation gets a targeted tight schedule so failure is deterministic
/// rather than a scheduling lottery.
mod mutation {
    use super::*;

    fn mutated_store(name: &str, dir: &Path) -> Arc<dyn KvStore> {
        let sut = open_sut("clsm", dir).unwrap();
        mutations::mutate(name, sut.store).unwrap()
    }

    #[test]
    fn non_atomic_rmw_is_caught() {
        let dir = fresh_dir("mut-rmw");
        let store = mutated_store("non-atomic-rmw", &dir);
        let session = RecordingSession::new(store);
        // Hammer one key with concurrent unique-value RMWs: without the
        // conflict re-check two of them will observe the same `prev`.
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let mut rec = session.recorder();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let value = format!("r{t}-{i}").into_bytes();
                        rec.read_modify_write(b"counter", &mut |_| {
                            RmwDecision::Update(value.clone())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let events = session.take_events();
        let verdict = check_history(
            "mutated:non-atomic-rmw",
            "clean",
            0,
            &events,
            None,
            CheckMode::Serializable,
        );
        assert!(!verdict.pass, "non-atomic RMW slipped past the checker");
        assert!(
            verdict
                .failures
                .iter()
                .any(|f| f.contains("linearizability")),
            "{:?}",
            verdict.failures
        );
        assert!(
            !verdict.counterexample.is_empty() && verdict.counterexample.len() <= 10,
            "counterexample not minimized: {} events",
            verdict.counterexample.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_write_is_caught() {
        let dir = fresh_dir("mut-lost");
        let store = mutated_store("lost-write", &dir);
        let session = RecordingSession::new(store);
        let mut rec = session.recorder();
        // Single thread: put then read back. A dropped-but-acked put
        // makes some get observe the previous value.
        for i in 0..32 {
            let v = format!("v{i}").into_bytes();
            rec.put(b"k", &v).unwrap();
            rec.get(b"k").unwrap();
        }
        drop(rec);
        let events = session.take_events();
        let verdict = check_history(
            "mutated:lost-write",
            "clean",
            0,
            &events,
            None,
            CheckMode::Serializable,
        );
        assert!(!verdict.pass, "lost writes slipped past the checker");
        assert!(
            verdict.counterexample.len() <= 4,
            "counterexample not minimized: {} events",
            verdict.counterexample.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_snapshot_is_caught() {
        let dir = fresh_dir("mut-snap");
        let store = mutated_store("stale-snapshot", &dir);
        let session = RecordingSession::new(store);
        let mut rec = session.recorder();
        rec.put(b"k", b"v1").unwrap();
        let first = rec.snapshot().unwrap(); // pins the mutation
        drop(first);
        rec.put(b"k", b"v2").unwrap();
        let snap = rec.snapshot().unwrap(); // still the pinned one
        let got = rec.snapshot_get(&snap, b"k").unwrap();
        assert_eq!(got.as_deref(), Some(b"v1".as_slice()), "mutation inert");
        drop(snap);
        drop(rec);
        let events = session.take_events();
        let verdict = check_history(
            "mutated:stale-snapshot",
            "clean",
            0,
            &events,
            None,
            CheckMode::Serializable,
        );
        assert!(!verdict.pass, "stale snapshot slipped past the checker");
        assert!(
            verdict.failures.iter().any(|f| f.contains("stale-read")),
            "{:?}",
            verdict.failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_batch_is_caught() {
        let dir = fresh_dir("mut-torn");
        let store = mutated_store("torn-batch", &dir);
        let session = RecordingSession::new(store);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let mut rec = session.recorder();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let batch = vec![
                        (b"ba".to_vec(), Some(format!("x{i}").into_bytes())),
                        (b"bb".to_vec(), Some(format!("y{i}").into_bytes())),
                    ];
                    rec.write(batch.into_iter().collect(), &WriteOptions::new())
                        .unwrap();
                    i += 1;
                }
            })
        };
        let reader = {
            let mut rec = session.recorder();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Snapshot until a torn pair is actually observed (the
                // two values carry the batch number) rather than for a
                // fixed iteration count: under a loaded scheduler a
                // fixed count can miss every window, or even finish
                // before the writer starts. Bounded only as a backstop
                // against the mutation being inert.
                for _ in 0..200_000 {
                    let Ok(snap) = rec.snapshot() else { continue };
                    let a = rec.snapshot_get(&snap, b"ba").unwrap();
                    let b = rec.snapshot_get(&snap, b"bb").unwrap();
                    let torn = match (a, b) {
                        (Some(a), Some(b)) => a[1..] != b[1..],
                        (Some(_), None) => true, // mid-first-batch
                        _ => false,
                    };
                    if torn {
                        break;
                    }
                }
                stop.store(true, Ordering::Release);
            })
        };
        reader.join().unwrap();
        writer.join().unwrap();
        let events = session.take_events();
        let verdict = check_history(
            "mutated:torn-batch",
            "clean",
            0,
            &events,
            None,
            CheckMode::Serializable,
        );
        assert!(!verdict.pass, "torn batches slipped past the checker");
        assert!(
            verdict
                .failures
                .iter()
                .any(|f| f.contains("torn-batch") || f.contains("stale-read")),
            "{:?}",
            verdict.failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash-reopen: run a schedule with synchronous logging, power-cycle
/// through the fault env, reopen, and check the recovered state
/// against the history.
fn check_crash(system: &str, seed: u64) {
    let dir = fresh_dir(&format!("crash-{system}"));
    let crash = CrashSut::open(system, &dir, seed).unwrap();
    let session = RecordingSession::new(Arc::clone(&crash.store));

    let mut cfg = ScheduleCfg::new(seed);
    cfg.threads = 3;
    cfg.ops_per_thread = 150;
    let workers: Vec<_> = (0..cfg.threads)
        .map(|_| {
            let mut rec = session.recorder();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
                let keys = schedule_keys(cfg.key_space);
                for i in 0..cfg.ops_per_thread {
                    let k = &keys[rng.random_range(0..keys.len())];
                    let v = format!("c{i}").into_bytes();
                    let _ = rec.put(k, &v);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let crash_tick = session.now();
    let events = session.take_events();
    drop(session); // release every Arc to the store before power loss
    let CrashSut { store, env } = crash;
    drop(store);
    env.power_loss();

    let reopened = open_sut_with(
        system,
        &dir,
        Some(env.clone() as Arc<dyn clsm_util::env::Env>),
        true,
    )
    .unwrap();
    let mut reads = Vec::new();
    for key in schedule_keys(cfg.key_space) {
        let value = reopened.store.get(&key).unwrap();
        reads.push((key, value));
    }
    let recovered = RecoveredState {
        at: crash_tick,
        reads,
    };
    let verdict = check_history(
        system,
        "crash",
        seed,
        &events,
        Some(&recovered),
        CheckMode::Serializable,
    );
    assert!(
        verdict.pass,
        "{system} crash seed {seed} failed:\n{}",
        verdict.failures.join("\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_reopen_clsm_recovers_durable_prefix() {
    check_crash("clsm", 42);
}

#[test]
fn crash_reopen_sharded_recovers_durable_prefix() {
    check_crash("clsm-sharded-4", 43);
}

#[test]
fn history_replay_round_trips_through_files() {
    let dir = fresh_dir("replay");
    let sut = open_sut("clsm", &dir).unwrap();
    let cfg = ScheduleCfg::new(7);
    let events = run_schedule(Arc::clone(&sut.store), None, &cfg);
    let text = clsm_check::history::history_to_string(&events);
    let parsed = clsm_check::history::parse_history(&text).unwrap();
    assert_eq!(events, parsed);
    // Replayed histories produce the same verdict.
    let v1 = check_history("clsm", "clean", 7, &events, None, CheckMode::Serializable);
    let v2 = check_history("clsm", "clean", 7, &parsed, None, CheckMode::Serializable);
    assert_eq!(v1.pass, v2.pass);
    assert!(v1.pass);
    let _ = std::fs::remove_dir_all(&dir);
}
