//! Adversarial schedule driver: seeded concurrent workloads recorded
//! through [`clsm_kv::record::RecordingSession`].
//!
//! Every written value is globally unique (`<kind><thread>-<seq>`), so
//! the checkers can map each observed value to exactly one write —
//! ambiguity-free histories make every check tight (see
//! [`crate::snapcheck`] on candidate sets).
//!
//! Keys follow the workload crate's heavy-tail generator: a few hot
//! keys collect most of the contention (that is where linearizability
//! bugs live), the tail keeps scans and absence checks honest. A
//! chaos hook, when provided, runs on its own thread and keeps poking
//! the store's internals (memtable rotations, forced compactions,
//! exclusive-lock holds) while the workload runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use clsm_kv::record::{KvEvent, RecordingSession};
use clsm_kv::{KvStore, RmwDecision, ScanRange, WriteBatch, WriteOptions};
use clsm_workloads::keygen::{KeyDistribution, KeyGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the store under test supports; unsupported families are left
/// out of the schedule.
#[derive(Debug, Clone, Copy)]
pub struct SutCaps {
    /// Atomic `read_modify_write`.
    pub rmw: bool,
    /// Atomic `put_if_absent`.
    pub pia: bool,
    /// Atomic multi-key `write_batch`.
    pub atomic_batch: bool,
    /// Consistent snapshots and scans (a store composed of independent
    /// partitions has none; the driver then skips snapshot traffic).
    pub snapshots: bool,
}

impl SutCaps {
    /// Everything supported (cLSM's `Db` and `ShardedDb`).
    pub fn full() -> SutCaps {
        SutCaps {
            rmw: true,
            pia: true,
            atomic_batch: true,
            snapshots: true,
        }
    }
}

/// One seeded schedule's shape.
#[derive(Debug, Clone)]
pub struct ScheduleCfg {
    /// Seed for every thread's RNG (xor'd with the thread id).
    pub seed: u64,
    /// Worker thread count.
    pub threads: usize,
    /// Operations per worker.
    pub ops_per_thread: usize,
    /// Distinct keys; small spaces maximize contention.
    pub key_space: u64,
    /// What op families to include.
    pub caps: SutCaps,
}

impl ScheduleCfg {
    /// A contended default: few keys, mixed ops.
    pub fn new(seed: u64) -> ScheduleCfg {
        ScheduleCfg {
            seed,
            threads: 4,
            ops_per_thread: 300,
            key_space: 24,
            caps: SutCaps::full(),
        }
    }
}

/// Runs one seeded schedule and returns the recorded history, sorted
/// by invoke tick. `chaos`, when given, runs on a dedicated thread
/// until the workers finish.
pub fn run_schedule(
    store: Arc<dyn KvStore>,
    chaos: Option<Arc<dyn Fn() + Send + Sync>>,
    cfg: &ScheduleCfg,
) -> Vec<KvEvent> {
    let session = RecordingSession::new(store);
    let stop = Arc::new(AtomicBool::new(false));

    let chaos_thread = chaos.map(|hook| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                hook();
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        })
    });

    let workers: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let mut recorder = session.recorder();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x9e37_79b9 * (t as u64 + 1)));
                let mut keys =
                    KeyGen::new(cfg.key_space, 16, KeyDistribution::HeavyTail { theta: 0.8 });
                for seq in 0..cfg.ops_per_thread {
                    let key = keys.next_key(&mut rng);
                    let tag = |kind: char| format!("{kind}{t}-{seq}").into_bytes();
                    let mut roll = rng.random_range(0u32..100);
                    // Re-route rolls for unsupported families into puts.
                    if !cfg.caps.rmw && (55..75).contains(&roll) {
                        roll = 0;
                    }
                    if !cfg.caps.pia && (75..80).contains(&roll) {
                        roll = 0;
                    }
                    if !cfg.caps.atomic_batch && (80..86).contains(&roll) {
                        roll = 0;
                    }
                    if !cfg.caps.snapshots && roll >= 86 {
                        roll = 30;
                    }
                    match roll {
                        // 30% puts, 5% deletes, 20% gets.
                        0..30 => {
                            let _ = recorder.put(&key, &tag('p'));
                        }
                        30..35 => {
                            let _ = recorder.delete(&key);
                        }
                        35..55 => {
                            let _ = recorder.get(&key);
                        }
                        // 20% RMW: append-style update with an
                        // occasional delete or abort decision.
                        55..75 => {
                            let value = tag('r');
                            let choice = rng.random_range(0u32..10);
                            let _ = recorder.read_modify_write(&key, &mut |_prev| match choice {
                                0 => RmwDecision::Delete,
                                1 => RmwDecision::Abort,
                                _ => RmwDecision::Update(value.clone()),
                            });
                        }
                        // 5% put-if-absent.
                        75..80 => {
                            let _ = recorder.put_if_absent(&key, &tag('a'));
                        }
                        // 6% atomic batches over 2-4 distinct keys.
                        80..86 => {
                            let mut batch = WriteBatch::new();
                            let mut used: Vec<Vec<u8>> = Vec::new();
                            let n = rng.random_range(2usize..=4);
                            for j in 0..n {
                                let k = keys.next_key(&mut rng);
                                if used.contains(&k) {
                                    continue;
                                }
                                used.push(k.clone());
                                match (!rng.random_bool(0.15))
                                    .then(|| format!("b{t}-{seq}-{j}").into_bytes())
                                {
                                    Some(v) => batch.put(k, v),
                                    None => batch.delete(k),
                                };
                            }
                            let _ = recorder.write(batch, &WriteOptions::new());
                        }
                        // 8% snapshot sessions: a couple of point reads
                        // plus one scan through the same snapshot.
                        86..94 => {
                            if let Ok(snap) = recorder.snapshot() {
                                for _ in 0..2 {
                                    let k = keys.next_key(&mut rng);
                                    let _ = recorder.snapshot_get(&snap, &k);
                                }
                                let _ = recorder.snapshot_scan(
                                    &snap,
                                    random_range(&mut rng, &mut keys),
                                    rng.random_range(4usize..40),
                                );
                            }
                        }
                        // 6% store-level scans (implicit snapshots).
                        _ => {
                            let _ = recorder.scan(
                                random_range(&mut rng, &mut keys),
                                rng.random_range(4usize..40),
                            );
                        }
                    }
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("worker panicked");
    }
    stop.store(true, Ordering::Release);
    if let Some(c) = chaos_thread {
        c.join().expect("chaos thread panicked");
    }
    session.take_events()
}

/// A random scan range: usually bounded by two generated keys, with
/// unbounded and exclusive edges mixed in.
fn random_range(rng: &mut StdRng, keys: &mut KeyGen) -> ScanRange {
    use std::ops::Bound;
    let a = keys.next_key(rng);
    let b = keys.next_key(rng);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let start = match rng.random_range(0u32..4) {
        0 => Bound::Unbounded,
        1 => Bound::Excluded(lo),
        _ => Bound::Included(lo),
    };
    let end = match rng.random_range(0u32..4) {
        0 => Bound::Unbounded,
        1 => Bound::Included(hi),
        _ => Bound::Excluded(hi),
    };
    ScanRange { start, end }
}

/// All keys a schedule with `key_space` keys can touch (for post-crash
/// audits).
pub fn schedule_keys(key_space: u64) -> Vec<Vec<u8>> {
    (0..key_space)
        .map(|i| clsm_workloads::keygen::format_key(i, 16))
        .collect()
}
