//! Verdicts: one JSON object per checked run, plus counterexample
//! minimization.
//!
//! The soak binary emits these (one per line with `--json`) so CI and
//! EXPERIMENTS.md recipes can archive and diff them. A failing verdict
//! carries the minimized counterexample inline; the full history file
//! is written separately for `clsm-check --replay`.

use std::collections::HashSet;

use clsm_kv::record::{KvEvent, KvOp, RmwApplied};

use crate::history;
use crate::lin::{self, LinOutcome};
use crate::snapcheck::{self, CheckMode, RecoveredState, SnapViolation};

/// Everything the checkers concluded about one run.
#[derive(Debug)]
pub struct Verdict {
    /// Store name (`KvStore::name` of the system under test).
    pub system: String,
    /// `clean` or `crash`.
    pub mode: String,
    /// `serializable` or `linearizable`.
    pub check: String,
    /// Schedule seed.
    pub seed: u64,
    /// Events in the checked history.
    pub events: usize,
    /// `true` when every check passed.
    pub pass: bool,
    /// Failure descriptions (empty on pass).
    pub failures: Vec<String>,
    /// Minimized counterexample, when a failure admitted one.
    pub counterexample: Vec<KvEvent>,
}

impl Verdict {
    /// Serializes the verdict as one JSON object.
    pub fn to_json(&self) -> String {
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape(f)))
            .collect();
        let cex: Vec<String> = self
            .counterexample
            .iter()
            .map(history::event_to_json)
            .collect();
        format!(
            "{{\"system\":\"{}\",\"mode\":\"{}\",\"check\":\"{}\",\"seed\":{},\
             \"events\":{},\"pass\":{},\"failures\":[{}],\"counterexample\":[{}]}}",
            escape(&self.system),
            escape(&self.mode),
            escape(&self.check),
            self.seed,
            self.events,
            self.pass,
            failures.join(","),
            cex.join(",")
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// (key, observed value) pairs this event observed; `None` = absent.
fn observed(e: &KvEvent, out: &mut Vec<(Vec<u8>, Option<Vec<u8>>)>) {
    match &e.op {
        KvOp::Get { key, result } | KvOp::SnapshotGet { key, result, .. } => {
            out.push((key.clone(), result.clone()));
        }
        KvOp::Rmw { key, prev, .. } => out.push((key.clone(), prev.clone())),
        KvOp::Scan { result, .. } => {
            out.extend(result.iter().map(|(k, v)| (k.clone(), Some(v.clone()))));
        }
        _ => {}
    }
}

/// (key, written value) pairs this event wrote; `None` = delete.
fn written(e: &KvEvent, out: &mut HashSet<(Vec<u8>, Option<Vec<u8>>)>) {
    match &e.op {
        KvOp::Put { key, value }
        | KvOp::PutIfAbsent {
            key,
            value,
            stored: true,
        } => {
            out.insert((key.clone(), Some(value.clone())));
        }
        KvOp::Delete { key } => {
            out.insert((key.clone(), None));
        }
        KvOp::Rmw { key, applied, .. } => match applied {
            RmwApplied::Update(v) => {
                out.insert((key.clone(), Some(v.clone())));
            }
            RmwApplied::Delete => {
                out.insert((key.clone(), None));
            }
            RmwApplied::Abort => {}
        },
        KvOp::WriteBatch { entries, .. } => {
            for (k, v) in entries {
                out.insert((k.clone(), v.clone()));
            }
        }
        _ => {}
    }
}

/// Values written anywhere in the full history: minimization must not
/// drop the writer of a value (or, for observed absences, every
/// deleter) the slice still observes, or real failures degenerate into
/// uninformative fabricated ones — removing a write from a
/// linearizable history can make the remainder non-linearizable.
fn write_set(events: &[KvEvent]) -> HashSet<(Vec<u8>, Option<Vec<u8>>)> {
    let mut set = HashSet::new();
    for e in events {
        written(e, &mut set);
    }
    set
}

/// `true` when every value `slice` observes that the full history
/// wrote still has a writer in `slice`.
fn is_closed(slice: &[KvEvent], full_writes: &HashSet<(Vec<u8>, Option<Vec<u8>>)>) -> bool {
    let mut slice_writes = HashSet::new();
    for e in slice {
        written(e, &mut slice_writes);
    }
    let mut obs = Vec::new();
    for e in slice {
        observed(e, &mut obs);
    }
    obs.iter()
        .all(|kv| !full_writes.contains(kv) || slice_writes.contains(kv))
}

/// Runs both checkers over `events` (and the recovered state, for
/// crash runs) and assembles the verdict.
pub fn check_history(
    system: &str,
    mode: &str,
    seed: u64,
    events: &[KvEvent],
    recovered: Option<&RecoveredState>,
    check_mode: CheckMode,
) -> Verdict {
    let mut failures = Vec::new();
    let mut counterexample = Vec::new();
    let full_writes = write_set(events);

    match lin::check_linearizable(events) {
        LinOutcome::Ok => {}
        LinOutcome::Violation(v) => {
            failures.push(format!("linearizability: {}", v.detail));
            // Minimize within the failing key's subhistory: the other
            // keys cannot matter (the register spec is per-key).
            let slice: Vec<KvEvent> = v.events.iter().map(|&i| events[i].clone()).collect();
            counterexample = lin::minimize(&slice, |ev| {
                is_closed(ev, &full_writes)
                    && matches!(lin::check_linearizable(ev), LinOutcome::Violation(_))
            });
        }
        LinOutcome::Inconclusive { key } => {
            failures.push(format!(
                "linearizability: search budget exhausted on key {key:02x?} (inconclusive)"
            ));
        }
    }

    let snap_violations = snapcheck::check_snapshots(events, check_mode);
    push_snap_failures(
        &snap_violations,
        events,
        &mut failures,
        &mut counterexample,
        |ev| is_closed(ev, &full_writes) && !snapcheck::check_snapshots(ev, check_mode).is_empty(),
    );

    if let Some(recovered) = recovered {
        let rec_violations = snapcheck::check_recovery(events, recovered);
        push_snap_failures(
            &rec_violations,
            events,
            &mut failures,
            &mut counterexample,
            |ev| {
                is_closed(ev, &full_writes) && !snapcheck::check_recovery(ev, recovered).is_empty()
            },
        );
    }

    Verdict {
        system: system.to_string(),
        mode: mode.to_string(),
        check: match check_mode {
            CheckMode::Serializable => "serializable".to_string(),
            CheckMode::Linearizable => "linearizable".to_string(),
        },
        seed,
        events: events.len(),
        pass: failures.is_empty(),
        failures,
        counterexample,
    }
}

fn push_snap_failures<F>(
    violations: &[SnapViolation],
    events: &[KvEvent],
    failures: &mut Vec<String>,
    counterexample: &mut Vec<KvEvent>,
    mut still_fails: F,
) where
    F: FnMut(&[KvEvent]) -> bool,
{
    for v in violations {
        failures.push(format!("{}: {}", v.condition, v.detail));
    }
    if let Some(first) = violations.first() {
        if counterexample.is_empty() {
            // Seed the shrink with the events the violation names plus
            // everything touching its key — enough context to stay
            // failing, small enough to shrink fast.
            let mut slice: Vec<KvEvent> = events
                .iter()
                .enumerate()
                .filter(|(i, e)| {
                    first.events.contains(i)
                        || e.op.key().is_some_and(|k| k == first.key.as_slice())
                })
                .map(|(_, e)| e.clone())
                .collect();
            if !still_fails(&slice) {
                // Context beyond the key mattered (scans, batches);
                // fall back to the whole history.
                slice = events.to_vec();
            }
            if still_fails(&slice) {
                *counterexample = lin::minimize(&slice, still_fails);
            }
        }
    }
}
