//! Systems under test: factories the checker binary and CI matrix use.
//!
//! Every system opens in a test-sized configuration (small memtables,
//! so schedules cross memtable rotations and compactions) with the
//! stall watchdog off (its sampling thread would add noise to the
//! schedules without adding coverage).

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use clsm::Options;
use clsm_baselines::{BlsmLike, HyperLike, LevelDbLike, Partitioned, RocksLike, StripedRmw};
use clsm_kv::KvStore;
use clsm_util::env::{Env, FaultEnv};
use clsm_util::error::{Error, Result};

use crate::driver::SutCaps;

/// An opened system plus its capabilities and optional chaos hook.
pub struct Sut {
    /// The store, behind the uniform trait.
    pub store: Arc<dyn KvStore>,
    /// What op families the schedule may include.
    pub caps: SutCaps,
    /// Internals-poking hook the driver runs on a side thread.
    pub chaos: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Every system name [`open_sut`] accepts.
pub const SYSTEMS: &[&str] = &[
    "clsm",
    "clsm-nogc",
    "clsm-tiered",
    "clsm-hybrid",
    "clsm-walstripe-4",
    "clsm-sharded-2",
    "clsm-sharded-4",
    "clsm-sharded-8",
    "clsm-sharded-wal-4",
    "clsm-net",
    "leveldb",
    "rocksdb",
    "blsm",
    "hyper",
    "striped",
    "partitioned-4",
];

/// Systems that support crash-reopen checking (the fault-injecting
/// [`FaultEnv`] plumbs through their `Options`).
pub const CRASH_SYSTEMS: &[&str] = &[
    "clsm",
    "clsm-nogc",
    "clsm-tiered",
    "clsm-hybrid",
    "clsm-walstripe-4",
    "clsm-sharded-2",
    "clsm-sharded-4",
    "clsm-sharded-wal-4",
];

fn test_options() -> Options {
    let mut opts = Options::small_for_tests();
    opts.watchdog.enabled = false;
    opts
}

/// Opens `name` at `dir`.
pub fn open_sut(name: &str, dir: &Path) -> Result<Sut> {
    open_sut_with(name, dir, None, false)
}

/// Opens `name` at `dir`, optionally routing I/O through `env` and
/// forcing synchronous logging (the crash matrix needs both).
pub fn open_sut_with(name: &str, dir: &Path, env: Option<Arc<dyn Env>>, sync: bool) -> Result<Sut> {
    let mut opts = test_options();
    if let Some(env) = env {
        opts.store.env = env;
    }
    opts.sync_writes = sync;

    if matches!(
        name,
        "clsm" | "clsm-nogc" | "clsm-tiered" | "clsm-hybrid" | "clsm-walstripe-4"
    ) {
        // `clsm-nogc`: the group-commit-off ablation — same store, the
        // per-writer commit paths instead of the leader pipeline. Kept
        // in the matrix so both sides of the ablation stay correct.
        // `clsm-tiered` / `clsm-hybrid`: the alternative compaction
        // scheduling policies — history checking must hold whatever
        // shape the background merges take.
        // `clsm-walstripe-4`: four WAL stripes — appends land in
        // different files by writing thread; recovery must still merge
        // them into one timestamp-ordered history.
        opts.group_commit = name != "clsm-nogc";
        if name == "clsm-walstripe-4" {
            opts.store.wal_stripes = 4;
        }
        opts.store.compaction_policy = match name {
            "clsm-tiered" => clsm::CompactionPolicyKind::Tiered,
            "clsm-hybrid" => clsm::CompactionPolicyKind::HybridPartial,
            _ => clsm::CompactionPolicyKind::Leveled,
        };
        let db = Arc::new(opts.open(dir)?);
        let chaos_db = Arc::clone(&db);
        let tick = std::sync::atomic::AtomicU64::new(0);
        return Ok(Sut {
            store: db,
            caps: SutCaps::full(),
            chaos: Some(Arc::new(move || {
                match tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 3 {
                    0 => chaos_db.inject_exclusive_hold(Duration::from_micros(100)),
                    1 => {
                        let _ = chaos_db.compact_range(b"", &[0xff; 17]);
                    }
                    _ => {}
                }
            })),
        });
    }
    if name == "clsm-net" {
        // The cLSM store behind an embedded loopback server, checked
        // through the pipelined TCP client: the histories the driver
        // records are client-observed over the wire, so the checker
        // audits the whole protocol/coalescing/dispatch stack, not
        // just the store. The RemoteStore owns the server handle —
        // dropping the store shuts the server down. RMW needs a
        // closure and cannot cross the wire; everything else can.
        let db: Arc<dyn KvStore> = Arc::new(opts.open(dir)?);
        let net = clsm_net::NetOptions::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .connections(4)
            .build()?;
        let remote = clsm_net::RemoteStore::with_embedded_server(db, &net)?;
        return Ok(Sut {
            store: Arc::new(remote),
            caps: SutCaps {
                rmw: false,
                ..SutCaps::full()
            },
            chaos: None,
        });
    }
    if let Some(shards) = name.strip_prefix("clsm-sharded-") {
        // `clsm-sharded-wal-N`: N shards, each shard's store running 2
        // WAL stripes — the full per-shard-WAL fan-out, where a
        // cross-shard batch lands in several files per shard and the
        // torn-batch audit must still hold.
        let shards = match shards.strip_prefix("wal-") {
            Some(rest) => {
                opts.store.wal_stripes = 2;
                rest
            }
            None => shards,
        };
        let shards: usize = shards
            .parse()
            .map_err(|_| Error::invalid_argument(format!("bad shard count in {name:?}")))?;
        let db = Arc::new(opts.open_sharded(dir, shards)?);
        let chaos_db = Arc::clone(&db);
        let tick = std::sync::atomic::AtomicU64::new(0);
        return Ok(Sut {
            store: db.clone(),
            caps: SutCaps::full(),
            chaos: Some(Arc::new(move || {
                let t = tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let shard = (t as usize) % chaos_db.num_shards();
                if t.is_multiple_of(3) {
                    chaos_db
                        .shard(shard)
                        .inject_exclusive_hold(Duration::from_micros(100));
                }
            })),
        });
    }

    // Baselines: no fault-env plumbing needed for the clean matrix,
    // and their capability gaps are part of what the suite documents.
    let base_caps = SutCaps {
        rmw: true,
        pia: true,
        atomic_batch: false, // baselines apply batches as a plain loop
        snapshots: true,
    };
    match name {
        "leveldb" => Ok(Sut {
            store: Arc::new(LevelDbLike::open(dir, opts)?),
            caps: base_caps,
            chaos: None,
        }),
        "rocksdb" => Ok(Sut {
            store: Arc::new(RocksLike::open(dir, opts)?),
            caps: base_caps,
            chaos: None,
        }),
        "blsm" => Ok(Sut {
            store: Arc::new(BlsmLike::open(dir, opts)?),
            caps: base_caps,
            chaos: None,
        }),
        // HyperLevelDB's put_if_absent is racy by design (the check
        // runs outside the critical section) and it has no RMW; the
        // schedule must not treat either as atomic.
        "hyper" => Ok(Sut {
            store: Arc::new(HyperLike::open(dir, opts)?),
            caps: SutCaps {
                rmw: false,
                pia: false,
                ..base_caps
            },
            chaos: None,
        }),
        "striped" => Ok(Sut {
            store: Arc::new(StripedRmw::open(dir, opts)?),
            caps: base_caps,
            chaos: None,
        }),
        // Independent partitions: single-key ops are as atomic as the
        // children, but snapshots do not span partitions (§2.2), so
        // snapshot traffic is excluded.
        "partitioned-4" => {
            let boundaries: Vec<Vec<u8>> = [0x40u8, 0x80, 0xc0].iter().map(|b| vec![*b]).collect();
            let parts = (0..4)
                .map(|i| LevelDbLike::open(&dir.join(format!("part-{i}")), test_options()))
                .collect::<Result<Vec<_>>>()?;
            Ok(Sut {
                store: Arc::new(Partitioned::new(parts, boundaries)),
                caps: SutCaps {
                    snapshots: false,
                    ..base_caps
                },
                chaos: None,
            })
        }
        other => Err(Error::invalid_argument(format!(
            "unknown system {other:?}; known: {SYSTEMS:?}"
        ))),
    }
}

/// A crash-checkable system: the store, the fault env driving it, and
/// a way to reopen after power loss.
pub struct CrashSut {
    /// The live store (drop every `Arc` before calling `power_loss`).
    pub store: Arc<dyn KvStore>,
    /// The shared fault environment.
    pub env: Arc<FaultEnv>,
}

impl CrashSut {
    /// Opens `name` with a fresh seeded [`FaultEnv`] and synchronous
    /// logging (so every acknowledged write must survive the crash).
    pub fn open(name: &str, dir: &Path, seed: u64) -> Result<CrashSut> {
        if !CRASH_SYSTEMS.contains(&name) {
            return Err(Error::invalid_argument(format!(
                "system {name:?} does not support crash checking; known: {CRASH_SYSTEMS:?}"
            )));
        }
        let env = Arc::new(FaultEnv::new(seed));
        let sut = open_sut_with(name, dir, Some(env.clone() as Arc<dyn Env>), true)?;
        Ok(CrashSut {
            store: sut.store,
            env,
        })
    }

    /// Reopens `name` at `dir` on the post-power-loss bytes.
    pub fn reopen(&self, name: &str, dir: &Path) -> Result<Arc<dyn KvStore>> {
        let sut = open_sut_with(name, dir, Some(self.env.clone() as Arc<dyn Env>), true)?;
        Ok(sut.store)
    }
}
