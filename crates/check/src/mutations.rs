//! Deliberately broken store wrappers: the checker's mutation tests.
//!
//! A checker that never fails is indistinguishable from one that
//! checks nothing. Each wrapper here re-introduces a classic bug on
//! top of a correct store, and the test suite asserts the checker
//! *catches* it — with a minimized counterexample — while the
//! unmodified store keeps passing the same seeds.
//!
//! | mutation        | bug re-introduced                                | caught by                  |
//! |-----------------|--------------------------------------------------|----------------------------|
//! | `non-atomic-rmw`| RMW as unlocked get-then-put (no conflict check) | lin: lost update           |
//! | `lost-write`    | every 8th put acked but dropped                  | lin: stale read            |
//! | `stale-snapshot`| snapshots pinned to the first one ever taken     | snapcheck: stale-read      |
//! | `torn-batch`    | batches applied entry-by-entry, non-atomically   | snapcheck: torn-batch      |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clsm_kv::{KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions};
use clsm_util::error::Result;
use parking_lot::Mutex;

/// Mutation names [`mutate`] accepts.
pub const MUTATIONS: &[&str] = &[
    "non-atomic-rmw",
    "lost-write",
    "stale-snapshot",
    "torn-batch",
];

/// Wraps `store` with the named bug.
pub fn mutate(name: &str, store: Arc<dyn KvStore>) -> Result<Arc<dyn KvStore>> {
    match name {
        "non-atomic-rmw" => Ok(Arc::new(Mutated {
            inner: store,
            bug: Bug::NonAtomicRmw,
            counter: AtomicU64::new(0),
            pinned: Mutex::new(None),
        })),
        "lost-write" => Ok(Arc::new(Mutated {
            inner: store,
            bug: Bug::LostWrite,
            counter: AtomicU64::new(0),
            pinned: Mutex::new(None),
        })),
        "stale-snapshot" => Ok(Arc::new(Mutated {
            inner: store,
            bug: Bug::StaleSnapshot,
            counter: AtomicU64::new(0),
            pinned: Mutex::new(None),
        })),
        "torn-batch" => Ok(Arc::new(Mutated {
            inner: store,
            bug: Bug::TornBatch,
            counter: AtomicU64::new(0),
            pinned: Mutex::new(None),
        })),
        other => Err(clsm_util::error::Error::invalid_argument(format!(
            "unknown mutation {other:?}; known: {MUTATIONS:?}"
        ))),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Bug {
    NonAtomicRmw,
    LostWrite,
    StaleSnapshot,
    TornBatch,
}

/// One wrapper type for all mutations: every path forwards to the
/// inner store except the one the selected bug corrupts.
struct Mutated {
    inner: Arc<dyn KvStore>,
    bug: Bug,
    /// `lost-write`: counts puts to drop every 8th.
    counter: AtomicU64,
    /// `stale-snapshot`: the first snapshot ever taken, pinned.
    pinned: Mutex<Option<Arc<Box<dyn KvSnapshot>>>>,
}

/// Shares one pinned snapshot across many handles.
struct SharedSnapshot(Arc<Box<dyn KvSnapshot>>);

impl KvSnapshot for SharedSnapshot {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.0.get(key)
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.0.scan(range, limit)
    }
}

impl KvStore for Mutated {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        // `lost-write`: single puts acked but dropped every 8th time.
        if self.bug == Bug::LostWrite
            && batch.len() == 1
            && batch.ops()[0].1.is_some()
            && self
                .counter
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(8)
        {
            // Acked, never applied.
            return Ok(());
        }
        // `torn-batch`: entry by entry, with a widened window in
        // between so a concurrent snapshot reliably lands mid-batch.
        if self.bug == Bug::TornBatch && batch.len() > 1 {
            let mut entries = batch.into_iter().peekable();
            while let Some((key, value)) = entries.next() {
                let single = match value {
                    Some(v) => WriteBatch::single_put(&key, &v),
                    None => WriteBatch::single_delete(&key),
                };
                self.inner.write(single, opts)?;
                if entries.peek().is_some() {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
            return Ok(());
        }
        self.inner.write(batch, opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        if self.bug != Bug::StaleSnapshot {
            return self.inner.snapshot();
        }
        let mut pinned = self.pinned.lock();
        let snap = match &*pinned {
            Some(snap) => Arc::clone(snap),
            None => {
                let first = Arc::new(self.inner.snapshot()?);
                *pinned = Some(Arc::clone(&first));
                first
            }
        };
        Ok(Box::new(SharedSnapshot(snap)))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if self.bug == Bug::StaleSnapshot {
            return self.snapshot()?.scan(range, limit);
        }
        self.inner.scan(range, limit)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.inner.put_if_absent(key, value)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        if self.bug != Bug::NonAtomicRmw {
            return self.inner.read_modify_write(key, f);
        }
        // Algorithm 3 without the conflict re-check: unlocked read,
        // decide, write, with a widened race window.
        let current = self.inner.get(key)?;
        for _ in 0..32 {
            std::thread::yield_now();
        }
        match f(current.as_deref()) {
            RmwDecision::Update(v) => {
                self.inner.put(key, &v)?;
                Ok(RmwResult {
                    committed: true,
                    previous: current,
                })
            }
            RmwDecision::Delete => {
                self.inner.delete(key)?;
                Ok(RmwResult {
                    committed: true,
                    previous: current,
                })
            }
            RmwDecision::Abort => Ok(RmwResult {
                committed: false,
                previous: current,
            }),
        }
    }

    fn quiesce(&self) -> Result<()> {
        self.inner.quiesce()
    }

    fn name(&self) -> &'static str {
        match self.bug {
            Bug::NonAtomicRmw => "mutated:non-atomic-rmw",
            Bug::LostWrite => "mutated:lost-write",
            Bug::StaleSnapshot => "mutated:stale-snapshot",
            Bug::TornBatch => "mutated:torn-batch",
        }
    }
}
