//! History files: a replayable on-disk form of recorded executions.
//!
//! A history is the event stream a [`clsm_kv::record::RecordingSession`]
//! captured, serialized one JSON object per line so failing runs can be
//! archived (CI uploads them as artifacts) and re-checked offline with
//! `clsm-check --replay <file>`. Keys and values are hex-encoded —
//! they are arbitrary bytes, and hex keeps the format line-oriented and
//! greppable.
//!
//! The parser is hand-rolled: the workspace vendors no JSON crate, and
//! the grammar we emit is small (objects, arrays, strings, non-negative
//! integers, booleans, null).

use std::fmt::Write as _;
use std::ops::Bound;

use clsm_kv::record::{KvEvent, KvOp, RmwApplied};
use clsm_kv::ScanRange;
use clsm_util::error::{Error, Result};

/// Hex-encodes bytes (lowercase, two digits per byte).
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`hex`].
pub fn unhex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(Error::corruption("odd-length hex string"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| Error::corruption(format!("bad hex byte at {i}")))
        })
        .collect()
}

fn hex_opt(v: &Option<Vec<u8>>) -> String {
    match v {
        Some(v) => format!("\"{}\"", hex(v)),
        None => "null".to_string(),
    }
}

fn bound_json(b: &Bound<Vec<u8>>) -> String {
    match b {
        Bound::Included(k) => format!("{{\"inc\":\"{}\"}}", hex(k)),
        Bound::Excluded(k) => format!("{{\"exc\":\"{}\"}}", hex(k)),
        Bound::Unbounded => "\"unb\"".to_string(),
    }
}

fn pairs_json(pairs: &[(Vec<u8>, Vec<u8>)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("[\"{}\",\"{}\"]", hex(k), hex(v)))
        .collect();
    format!("[{}]", body.join(","))
}

/// Serializes one event as a single JSON line (no trailing newline).
pub fn event_to_json(e: &KvEvent) -> String {
    let op = match &e.op {
        KvOp::Put { key, value } => {
            format!(
                "{{\"type\":\"put\",\"key\":\"{}\",\"value\":\"{}\"}}",
                hex(key),
                hex(value)
            )
        }
        KvOp::Delete { key } => format!("{{\"type\":\"delete\",\"key\":\"{}\"}}", hex(key)),
        KvOp::Get { key, result } => format!(
            "{{\"type\":\"get\",\"key\":\"{}\",\"result\":{}}}",
            hex(key),
            hex_opt(result)
        ),
        KvOp::PutIfAbsent { key, value, stored } => format!(
            "{{\"type\":\"pia\",\"key\":\"{}\",\"value\":\"{}\",\"stored\":{stored}}}",
            hex(key),
            hex(value)
        ),
        KvOp::Rmw { key, prev, applied } => {
            let applied = match applied {
                RmwApplied::Update(v) => {
                    format!("{{\"type\":\"update\",\"value\":\"{}\"}}", hex(v))
                }
                RmwApplied::Delete => "{\"type\":\"delete\"}".to_string(),
                RmwApplied::Abort => "{\"type\":\"abort\"}".to_string(),
            };
            format!(
                "{{\"type\":\"rmw\",\"key\":\"{}\",\"prev\":{},\"applied\":{applied}}}",
                hex(key),
                hex_opt(prev)
            )
        }
        KvOp::WriteBatch { batch, entries } => {
            let body: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("[\"{}\",{}]", hex(k), hex_opt(v)))
                .collect();
            format!(
                "{{\"type\":\"batch\",\"batch\":{batch},\"entries\":[{}]}}",
                body.join(",")
            )
        }
        KvOp::SnapshotCreate { snap } => {
            format!("{{\"type\":\"snap_create\",\"snap\":{snap}}}")
        }
        KvOp::SnapshotGet { snap, key, result } => format!(
            "{{\"type\":\"snap_get\",\"snap\":{snap},\"key\":\"{}\",\"result\":{}}}",
            hex(key),
            hex_opt(result)
        ),
        KvOp::Scan {
            snap,
            range,
            limit,
            result,
        } => format!(
            "{{\"type\":\"scan\",\"snap\":{snap},\"start\":{},\"end\":{},\"limit\":{limit},\"result\":{}}}",
            bound_json(&range.start),
            bound_json(&range.end),
            pairs_json(result)
        ),
    };
    format!(
        "{{\"thread\":{},\"invoke\":{},\"response\":{},\"ok\":{},\"op\":{op}}}",
        e.thread, e.invoke, e.response, e.ok
    )
}

/// Serializes a whole history, one event per line.
pub fn history_to_string(events: &[KvEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// Parses a history previously produced by [`history_to_string`].
pub fn parse_history(text: &str) -> Result<Vec<KvEvent>> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value =
            parse_json(line).map_err(|e| Error::corruption(format!("line {}: {e}", lineno + 1)))?;
        events.push(
            event_from_json(&value)
                .map_err(|e| Error::corruption(format!("line {}: {e}", lineno + 1)))?,
        );
    }
    Ok(events)
}

// ---------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------

/// A parsed JSON value (only the shapes the history format uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (the only numbers the format emits).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> std::result::Result<&'a Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}")),
            _ => Err(format!("expected object looking up {key:?}")),
        }
    }

    fn num(&self) -> std::result::Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("expected number, got {self:?}")),
        }
    }

    fn boolean(&self) -> std::result::Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {self:?}")),
        }
    }

    fn str(&self) -> std::result::Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("expected string, got {self:?}")),
        }
    }

    fn arr(&self) -> std::result::Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("expected array, got {self:?}")),
        }
    }

    fn bytes(&self) -> std::result::Result<Vec<u8>, String> {
        unhex(self.str()?).map_err(|e| e.to_string())
    }

    fn opt_bytes(&self) -> std::result::Result<Option<Vec<u8>>, String> {
        match self {
            Json::Null => Ok(None),
            _ => Ok(Some(self.bytes()?)),
        }
    }
}

/// Parses one JSON document.
pub fn parse_json(text: &str) -> std::result::Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // The format only emits ASCII, but pass other
                        // bytes through so hand-edited files survive.
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .unwrap()
                .parse::<u64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number: {e}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn bound_from_json(v: &Json) -> std::result::Result<Bound<Vec<u8>>, String> {
    match v {
        Json::Str(s) if s == "unb" => Ok(Bound::Unbounded),
        Json::Obj(_) => {
            if let Ok(k) = v.get("inc") {
                Ok(Bound::Included(k.bytes()?))
            } else if let Ok(k) = v.get("exc") {
                Ok(Bound::Excluded(k.bytes()?))
            } else {
                Err("bound object needs inc or exc".to_string())
            }
        }
        other => Err(format!("bad bound {other:?}")),
    }
}

fn event_from_json(v: &Json) -> std::result::Result<KvEvent, String> {
    let opv = v.get("op")?;
    let ty = opv.get("type")?.str()?;
    let op = match ty {
        "put" => KvOp::Put {
            key: opv.get("key")?.bytes()?,
            value: opv.get("value")?.bytes()?,
        },
        "delete" => KvOp::Delete {
            key: opv.get("key")?.bytes()?,
        },
        "get" => KvOp::Get {
            key: opv.get("key")?.bytes()?,
            result: opv.get("result")?.opt_bytes()?,
        },
        "pia" => KvOp::PutIfAbsent {
            key: opv.get("key")?.bytes()?,
            value: opv.get("value")?.bytes()?,
            stored: opv.get("stored")?.boolean()?,
        },
        "rmw" => {
            let applied = opv.get("applied")?;
            let applied = match applied.get("type")?.str()? {
                "update" => RmwApplied::Update(applied.get("value")?.bytes()?),
                "delete" => RmwApplied::Delete,
                "abort" => RmwApplied::Abort,
                other => return Err(format!("bad rmw applied type {other:?}")),
            };
            KvOp::Rmw {
                key: opv.get("key")?.bytes()?,
                prev: opv.get("prev")?.opt_bytes()?,
                applied,
            }
        }
        "batch" => {
            let mut entries = Vec::new();
            for entry in opv.get("entries")?.arr()? {
                let pair = entry.arr()?;
                if pair.len() != 2 {
                    return Err("batch entry must be a [key, value] pair".to_string());
                }
                entries.push((pair[0].bytes()?, pair[1].opt_bytes()?));
            }
            KvOp::WriteBatch {
                batch: opv.get("batch")?.num()?,
                entries,
            }
        }
        "snap_create" => KvOp::SnapshotCreate {
            snap: opv.get("snap")?.num()?,
        },
        "snap_get" => KvOp::SnapshotGet {
            snap: opv.get("snap")?.num()?,
            key: opv.get("key")?.bytes()?,
            result: opv.get("result")?.opt_bytes()?,
        },
        "scan" => {
            let mut result = Vec::new();
            for entry in opv.get("result")?.arr()? {
                let pair = entry.arr()?;
                if pair.len() != 2 {
                    return Err("scan entry must be a [key, value] pair".to_string());
                }
                result.push((pair[0].bytes()?, pair[1].bytes()?));
            }
            KvOp::Scan {
                snap: opv.get("snap")?.num()?,
                range: ScanRange {
                    start: bound_from_json(opv.get("start")?)?,
                    end: bound_from_json(opv.get("end")?)?,
                },
                limit: opv.get("limit")?.num()? as usize,
                result,
            }
        }
        other => return Err(format!("unknown op type {other:?}")),
    };
    Ok(KvEvent {
        thread: v.get("thread")?.num()? as u32,
        invoke: v.get("invoke")?.num()?,
        response: v.get("response")?.num()?,
        ok: v.get("ok")?.boolean()?,
        op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<KvEvent> {
        vec![
            KvEvent {
                thread: 0,
                invoke: 1,
                response: 2,
                ok: true,
                op: KvOp::Put {
                    key: b"k1".to_vec(),
                    value: vec![0, 255, 17],
                },
            },
            KvEvent {
                thread: 1,
                invoke: 3,
                response: 6,
                ok: true,
                op: KvOp::Rmw {
                    key: b"k1".to_vec(),
                    prev: Some(vec![0, 255, 17]),
                    applied: RmwApplied::Update(b"v2".to_vec()),
                },
            },
            KvEvent {
                thread: 0,
                invoke: 4,
                response: 5,
                ok: true,
                op: KvOp::Scan {
                    snap: 7,
                    range: ScanRange {
                        start: Bound::Included(b"a".to_vec()),
                        end: Bound::Unbounded,
                    },
                    limit: 10,
                    result: vec![(b"k1".to_vec(), vec![0, 255, 17])],
                },
            },
            KvEvent {
                thread: 2,
                invoke: 7,
                response: 9,
                ok: false,
                op: KvOp::WriteBatch {
                    batch: 3,
                    entries: vec![(b"a".to_vec(), Some(b"x".to_vec())), (b"b".to_vec(), None)],
                },
            },
        ]
    }

    #[test]
    fn round_trips() {
        let events = sample();
        let text = history_to_string(&events);
        let parsed = parse_history(&text).unwrap();
        assert_eq!(events, parsed);
    }

    #[test]
    fn hex_round_trips() {
        for v in [vec![], vec![0u8], vec![0xff, 0x00, 0x7f]] {
            assert_eq!(unhex(&hex(&v)).unwrap(), v);
        }
        assert!(unhex("0").is_err());
        assert!(unhex("zz").is_err());
    }
}
