//! `clsm-check`: history-based correctness checking for every store in
//! the workspace.
//!
//! The paper's concurrency claims are exactly the kind that unit tests
//! miss: linearizable point operations (gets may read
//! inserted-but-unpublished versions, RMW retries on conflict) and
//! serializable — deliberately *not* linearizable — snapshot scans
//! (Algorithm 2). This crate checks real concurrent executions against
//! those claims, black-box, through the [`clsm_kv::KvStore`] trait:
//!
//! - [`driver`] runs seeded adversarial schedules, recording every
//!   operation through [`clsm_kv::record`];
//! - [`lin`] checks point ops for per-key linearizability (Wing–Gong
//!   search with memoization);
//! - [`snapcheck`] checks snapshots and scans for serializability,
//!   batch atomicity, and cross-snapshot monotonicity — with a
//!   `Linearizable` mode that demonstrates the paper's documented
//!   get/scan anomaly;
//! - [`sut`] opens any system in the workspace for checking, including
//!   crash-reopen runs over a [`clsm_util::env::FaultEnv`];
//! - [`mutations`] re-introduces classic bugs so the suite can prove
//!   the checker catches them;
//! - [`history`] serializes failing runs for `clsm-check --replay`;
//! - [`verdict`] turns check results into JSON verdicts with minimized
//!   counterexamples.

#![warn(missing_docs)]

pub mod driver;
pub mod history;
pub mod lin;
pub mod mutations;
pub mod snapcheck;
pub mod sut;
pub mod verdict;

pub use driver::{run_schedule, ScheduleCfg, SutCaps};
pub use lin::{check_linearizable, LinOutcome, LinViolation};
pub use snapcheck::{check_recovery, check_snapshots, CheckMode, RecoveredState, SnapViolation};
pub use verdict::{check_history, Verdict};
