//! Snapshot serializability checking.
//!
//! cLSM's snapshot scans are **serializable but not linearizable**
//! (Algorithm 2): `getSnap` may return a timestamp older than a write
//! a just-completed `get` already observed, because gets are allowed to
//! read inserted-but-unpublished versions. The checker therefore runs
//! in two modes:
//!
//! - [`CheckMode::Serializable`] (default): asserts exactly what the
//!   paper promises — each snapshot is a consistent cut that includes
//!   every write *completed before the snapshot was taken*, and
//!   snapshots taken later never regress. The paper's get/scan anomaly
//!   is tolerated.
//! - [`CheckMode::Linearizable`]: additionally requires snapshots to
//!   respect values observed by earlier completed `get`s. cLSM is
//!   *expected to fail* this mode under contention; the suite uses it
//!   to demonstrate the anomaly is real, not to gate CI.
//!
//! Every check is *sound* under ambiguity: an observed value may be
//! explained by several candidate writes (or, for `None`, by initial
//! absence or any delete), and a violation is reported only when every
//! candidate explanation violates the condition. The adversarial
//! driver makes written values globally unique, so in practice
//! candidate sets are singletons and the checks are tight.

use std::collections::{BTreeMap, HashMap};

use clsm_kv::record::{KvEvent, KvOp, RmwApplied};

/// Which claims to enforce; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// The paper's contract: serializable snapshots.
    Serializable,
    /// Serializable plus get-established floors (cLSM intentionally
    /// fails this under contention).
    Linearizable,
}

/// One snapshot-consistency violation.
#[derive(Debug, Clone)]
pub struct SnapViolation {
    /// Which condition tripped (stable machine-readable slug).
    pub condition: &'static str,
    /// Snapshot id involved, if any.
    pub snap: Option<u64>,
    /// Key involved.
    pub key: Vec<u8>,
    /// Human-readable explanation.
    pub detail: String,
    /// Indexes (into the checked event slice) of the events involved.
    pub events: Vec<usize>,
}

/// The post-crash audit of a reopened store, checked as one synthetic
/// snapshot taken at the crash tick (after every op completed).
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// Logical-clock value when the crash was injected; all events in
    /// the history respond before it.
    pub at: u64,
    /// Key → recovered value, one entry per audited key.
    pub reads: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

/// One write extracted from the history.
struct W {
    event: usize,
    value: Option<Vec<u8>>,
    invoke: u64,
    response: u64,
    batch: Option<u64>,
}

/// An observation a snapshot made for one key.
struct Obs {
    value: Option<Vec<u8>>,
    /// Response tick of the reading op (authenticity bound).
    read_response: u64,
    event: usize,
    /// True when inferred from a key's absence in a scan result.
    from_absence: bool,
}

/// A candidate explanation of an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cand {
    /// The key was never written (initial absence).
    Initial,
    /// Index into the key's write list.
    Write(usize),
}

struct Snap {
    id: u64,
    /// Creation interval: the read point was chosen inside it.
    c_inv: u64,
    c_resp: u64,
    obs: BTreeMap<Vec<u8>, Obs>,
}

/// Batch entries as written, per key (`None` = delete).
type BatchEntries = HashMap<Vec<u8>, Option<Vec<u8>>>;
/// A store-level get: (event index, invoke, response, key, result).
type GetRecord = (usize, u64, u64, Vec<u8>, Option<Vec<u8>>);

struct Prepared {
    writes: BTreeMap<Vec<u8>, Vec<W>>,
    /// Batch id → (invoke tick, entries, entry count).
    batches: HashMap<u64, (u64, BatchEntries, usize)>,
    snaps: Vec<Snap>,
    /// Store-level gets (for the linearizable-mode floor check).
    gets: Vec<GetRecord>,
    /// Invoke/response intervals of every write-intent operation on
    /// any key (including failed and aborted ones, conservatively):
    /// the staleness excusal below needs them.
    write_intervals: Vec<(u64, u64)>,
    violations: Vec<SnapViolation>,
}

/// Checks all snapshots (explicit and implicit-scan) in `events`.
pub fn check_snapshots(events: &[KvEvent], mode: CheckMode) -> Vec<SnapViolation> {
    let mut p = prepare(events);
    let snap_cands = check_each_snapshot(&mut p, mode == CheckMode::Linearizable);
    check_monotonicity(&mut p, &snap_cands);
    if mode == CheckMode::Linearizable {
        check_get_floors(&mut p, &snap_cands);
    }
    p.violations
}

/// Checks a recovered state against the pre-crash history. All events
/// must have completed (the driver joins workers before crashing) and
/// the store must run with synchronous logging, so recovery must land
/// on a *final* state: for every key, the value of some write that no
/// other write strictly follows.
pub fn check_recovery(events: &[KvEvent], recovered: &RecoveredState) -> Vec<SnapViolation> {
    let mut p = prepare(events);
    let mut snap = Snap {
        id: u64::MAX,
        c_inv: recovered.at,
        c_resp: recovered.at + 1,
        obs: BTreeMap::new(),
    };
    for (key, value) in &recovered.reads {
        snap.obs.insert(
            key.clone(),
            Obs {
                value: value.clone(),
                read_response: recovered.at + 1,
                event: usize::MAX,
                from_absence: false,
            },
        );
    }
    // Strict staleness: the driver joins every worker before crashing,
    // so no write is in flight at the audit point and the excusal for
    // publication lag never applies — recovery must land on a final
    // state.
    p.snaps = vec![snap];
    check_each_snapshot(&mut p, true);
    for v in &mut p.violations {
        v.condition = match v.condition {
            "unexplained-value" => "recovery-unexplained-value",
            "stale-read" => "recovery-lost-write",
            "torn-batch" => "recovery-torn-batch",
            other => other,
        };
    }
    p.violations
}

fn prepare(events: &[KvEvent]) -> Prepared {
    let mut p = Prepared {
        writes: BTreeMap::new(),
        batches: HashMap::new(),
        snaps: Vec::new(),
        gets: Vec::new(),
        write_intervals: Vec::new(),
        violations: Vec::new(),
    };
    let mut snap_index: HashMap<u64, usize> = HashMap::new();

    for e in events {
        match &e.op {
            KvOp::Put { .. }
            | KvOp::Delete { .. }
            | KvOp::PutIfAbsent { .. }
            | KvOp::Rmw { .. }
            | KvOp::WriteBatch { .. } => p.write_intervals.push((e.invoke, e.response)),
            _ => {}
        }
    }

    for (idx, e) in events.iter().enumerate() {
        if !e.ok {
            continue;
        }
        let mut write = |key: &[u8], value: Option<Vec<u8>>, batch: Option<u64>| {
            p.writes.entry(key.to_vec()).or_default().push(W {
                event: idx,
                value,
                invoke: e.invoke,
                response: e.response,
                batch,
            });
        };
        match &e.op {
            KvOp::Put { key, value } => write(key, Some(value.clone()), None),
            KvOp::Delete { key } => write(key, None, None),
            KvOp::PutIfAbsent { key, value, stored } => {
                if *stored {
                    write(key, Some(value.clone()), None);
                }
            }
            KvOp::Rmw { key, applied, .. } => match applied {
                RmwApplied::Update(v) => write(key, Some(v.clone()), None),
                RmwApplied::Delete => write(key, None, None),
                RmwApplied::Abort => {}
            },
            KvOp::WriteBatch { batch, entries } => {
                // Per key, the last entry wins within one batch.
                let mut last: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
                for (k, v) in entries {
                    last.insert(k.clone(), v.clone());
                }
                for (k, v) in &last {
                    write(k, v.clone(), Some(*batch));
                }
                p.batches.insert(*batch, (e.invoke, last, idx));
            }
            KvOp::Get { key, result } => {
                p.gets
                    .push((idx, e.invoke, e.response, key.clone(), result.clone()));
            }
            KvOp::SnapshotCreate { snap } => {
                snap_index.insert(*snap, p.snaps.len());
                p.snaps.push(Snap {
                    id: *snap,
                    c_inv: e.invoke,
                    c_resp: e.response,
                    obs: BTreeMap::new(),
                });
            }
            KvOp::SnapshotGet { .. } | KvOp::Scan { .. } => {}
        }
    }

    // Second pass: attach reads to snapshots (explicit creates were
    // collected above; scans without one are implicit snapshots whose
    // creation interval is the scan's own).
    for (idx, e) in events.iter().enumerate() {
        if !e.ok {
            continue;
        }
        match &e.op {
            KvOp::SnapshotGet { snap, key, result } => {
                let Some(&si) = snap_index.get(snap) else {
                    continue;
                };
                record_obs(
                    &mut p.snaps[si],
                    &mut p.violations,
                    key.clone(),
                    result.clone(),
                    e.response,
                    idx,
                    false,
                );
            }
            KvOp::Scan {
                snap,
                range,
                limit,
                result,
            } => {
                let si = match snap_index.get(snap) {
                    Some(&si) => si,
                    None => {
                        snap_index.insert(*snap, p.snaps.len());
                        p.snaps.push(Snap {
                            id: *snap,
                            c_inv: e.invoke,
                            c_resp: e.response,
                            obs: BTreeMap::new(),
                        });
                        p.snaps.len() - 1
                    }
                };
                check_scan_shape(&mut p.violations, *snap, range, *limit, result, idx);
                for (k, v) in result {
                    record_obs(
                        &mut p.snaps[si],
                        &mut p.violations,
                        k.clone(),
                        Some(v.clone()),
                        e.response,
                        idx,
                        false,
                    );
                }
                // Keys the scan proved absent: every key we know was
                // ever written, inside the scanned range, and not past
                // the truncation point.
                let truncated = result.len() >= *limit;
                let last = result.last().map(|(k, _)| k.clone());
                let absent: Vec<Vec<u8>> = p
                    .writes
                    .keys()
                    .filter(|k| range.contains_key(k))
                    .filter(|k| match (truncated, last.as_ref()) {
                        (true, Some(last)) => *k <= last,
                        _ => true,
                    })
                    .filter(|k| !result.iter().any(|(rk, _)| rk == *k))
                    .cloned()
                    .collect();
                for k in absent {
                    record_obs(
                        &mut p.snaps[si],
                        &mut p.violations,
                        k,
                        None,
                        e.response,
                        idx,
                        true,
                    );
                }
            }
            _ => {}
        }
    }
    p
}

/// Records one observation; conflicting observations through the same
/// snapshot are themselves a violation (a snapshot is frozen).
#[allow(clippy::too_many_arguments)]
fn record_obs(
    snap: &mut Snap,
    violations: &mut Vec<SnapViolation>,
    key: Vec<u8>,
    value: Option<Vec<u8>>,
    read_response: u64,
    event: usize,
    from_absence: bool,
) {
    match snap.obs.get(&key) {
        Some(prior) if prior.value != value => {
            violations.push(SnapViolation {
                condition: "snapshot-not-frozen",
                snap: Some(snap.id),
                key: key.clone(),
                detail: format!(
                    "snapshot {} observed both {:?} and {:?} for the same key",
                    snap.id,
                    summarize(&prior.value),
                    summarize(&value)
                ),
                events: vec![prior.event, event],
            });
        }
        Some(_) => {}
        None => {
            snap.obs.insert(
                key,
                Obs {
                    value,
                    read_response,
                    event,
                    from_absence,
                },
            );
        }
    }
}

fn check_scan_shape(
    violations: &mut Vec<SnapViolation>,
    snap: u64,
    range: &clsm_kv::ScanRange,
    limit: usize,
    result: &[(Vec<u8>, Vec<u8>)],
    event: usize,
) {
    if result.len() > limit {
        violations.push(SnapViolation {
            condition: "scan-over-limit",
            snap: Some(snap),
            key: Vec::new(),
            detail: format!("scan returned {} pairs, limit {}", result.len(), limit),
            events: vec![event],
        });
    }
    for w in result.windows(2) {
        if w[0].0 >= w[1].0 {
            violations.push(SnapViolation {
                condition: "scan-unordered",
                snap: Some(snap),
                key: w[1].0.clone(),
                detail: "scan result keys not strictly ascending".to_string(),
                events: vec![event],
            });
        }
    }
    for (k, _) in result {
        if !range.contains_key(k) {
            violations.push(SnapViolation {
                condition: "scan-out-of-range",
                snap: Some(snap),
                key: k.clone(),
                detail: "scan returned a key outside the requested range".to_string(),
                events: vec![event],
            });
        }
    }
}

fn summarize(v: &Option<Vec<u8>>) -> String {
    match v {
        None => "absent".to_string(),
        Some(v) => match std::str::from_utf8(v) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => format!("{s:?}"),
            _ => format!("{v:02x?}"),
        },
    }
}

/// `true` when candidate `c` (an explanation) is wholly before tick
/// `t` in real time. `Initial` precedes everything.
fn strictly_before(writes: &[W], c: Cand, t: u64) -> bool {
    match c {
        Cand::Initial => true,
        Cand::Write(i) => writes[i].response < t,
    }
}

/// Per-snapshot conditions: authenticity, freshness bound, staleness
/// floor, and batch atomicity. Returns each snapshot's surviving
/// candidate sets for the cross-snapshot checks.
///
/// With `strict` false (serializable mode), the staleness floor gets
/// the excusal Algorithm 2 requires: a snapshot's read point is the
/// published *prefix* of the timestamp order, so a write W that
/// completed before the snapshot was taken may still be invisible when
/// a writer holding a smaller timestamp had not yet published. Black
/// box, such a blocker must have been invoked before W responded (or
/// its timestamp would exceed W's) and must still have been in flight
/// when the snapshot was created. W is therefore only an enforceable
/// floor when no such write exists; with `strict` true every completed
/// write is a floor (the linearizable reading, and the right one for
/// post-crash audits where nothing is in flight).
fn check_each_snapshot(p: &mut Prepared, strict: bool) -> Vec<BTreeMap<Vec<u8>, Vec<Cand>>> {
    let mut all_cands = Vec::with_capacity(p.snaps.len());
    for snap in &p.snaps {
        // Earliest invoke among writes still in flight when this
        // snapshot's creation began: any write responding after that
        // tick may be publication-blocked and is excused as a floor.
        let min_pending_invoke = p
            .write_intervals
            .iter()
            .filter(|&&(_, response)| response > snap.c_inv)
            .map(|&(invoke, _)| invoke)
            .min()
            .unwrap_or(u64::MAX);
        let mut per_key: BTreeMap<Vec<u8>, Vec<Cand>> = BTreeMap::new();
        for (key, obs) in &snap.obs {
            let empty: Vec<W> = Vec::new();
            let writes = p.writes.get(key).unwrap_or(&empty);

            // Candidate explanations: matching writes invoked before
            // both the snapshot's creation completed (a write invoked
            // after that has a newer timestamp than the read point and
            // cannot be inside) and the reading op returned.
            let mut cands: Vec<Cand> = Vec::new();
            if obs.value.is_none() {
                cands.push(Cand::Initial);
            }
            for (i, w) in writes.iter().enumerate() {
                if w.value == obs.value && w.invoke < snap.c_resp && w.invoke < obs.read_response {
                    cands.push(Cand::Write(i));
                }
            }
            if cands.is_empty() {
                p.violations.push(SnapViolation {
                    condition: "unexplained-value",
                    snap: Some(snap.id),
                    key: key.clone(),
                    detail: format!(
                        "snapshot {} observed {} but no write invoked before the \
                         snapshot was taken produced it",
                        snap.id,
                        summarize(&obs.value)
                    ),
                    events: if obs.event == usize::MAX {
                        vec![]
                    } else {
                        vec![obs.event]
                    },
                });
                continue;
            }

            // Staleness floor: writes completed before the snapshot
            // creation began must be included (them or something newer).
            // A candidate strictly before such a write is impossible.
            let done: Vec<usize> = writes
                .iter()
                .enumerate()
                .filter(|(_, w)| w.response < snap.c_inv)
                .filter(|(_, w)| strict || w.response <= min_pending_invoke)
                .map(|(i, _)| i)
                .collect();
            let survivors: Vec<Cand> = cands
                .iter()
                .copied()
                .filter(|&c| match c {
                    Cand::Initial => done.is_empty(),
                    Cand::Write(o) => !done.iter().any(|&w| writes[o].response < writes[w].invoke),
                })
                .collect();
            if survivors.is_empty() {
                let newest_done = done
                    .iter()
                    .max_by_key(|&&w| writes[w].response)
                    .map(|&w| &writes[w]);
                p.violations.push(SnapViolation {
                    condition: "stale-read",
                    snap: Some(snap.id),
                    key: key.clone(),
                    detail: format!(
                        "snapshot {} observed {} ({}), but {} completed before \
                         the snapshot was taken",
                        snap.id,
                        summarize(&obs.value),
                        if obs.from_absence {
                            "inferred from scan absence"
                        } else {
                            "read directly"
                        },
                        newest_done
                            .map(|w| format!("a write of {}", summarize(&w.value)))
                            .unwrap_or_else(|| "a write".to_string()),
                    ),
                    events: {
                        let mut ev: Vec<usize> = done.iter().map(|&w| writes[w].event).collect();
                        if obs.event != usize::MAX {
                            ev.push(obs.event);
                        }
                        ev
                    },
                });
                continue;
            }
            per_key.insert(key.clone(), survivors);
        }

        let torn = check_batch_atomicity(p, snap, &per_key);
        p.violations.extend(torn);
        all_cands.push(per_key);
    }
    all_cands
}

/// Batch atomicity: when a snapshot demonstrably contains one entry of
/// an atomic batch, every other entry of that batch the snapshot read
/// must be explainable by the batch itself or something at least as
/// new.
fn check_batch_atomicity(
    p: &Prepared,
    snap: &Snap,
    per_key: &BTreeMap<Vec<u8>, Vec<Cand>>,
) -> Vec<SnapViolation> {
    // Collected into a local first because `p` is borrowed immutably
    // through `per_key`'s writes lookups.
    let mut found = Vec::new();
    for (key, cands) in per_key {
        // Keys never written can only be explained by `Initial` and
        // pin no batch.
        let Some(writes) = p.writes.get(key) else {
            continue;
        };
        // The observation pins batch B iff every candidate is B's
        // write of this key.
        let mut batch: Option<u64> = None;
        let pinned = cands.iter().all(|&c| match c {
            Cand::Initial => false,
            Cand::Write(i) => match writes[i].batch {
                Some(b) => {
                    if batch.is_none() {
                        batch = Some(b);
                    }
                    batch == Some(b)
                }
                None => false,
            },
        });
        let Some(b) = batch else { continue };
        if !pinned {
            continue;
        }
        let (b_invoke, entries, b_event) = &p.batches[&b];
        for other_key in entries.keys() {
            if other_key == key {
                continue;
            }
            let Some(other_obs) = snap.obs.get(other_key) else {
                continue;
            };
            let Some(other_cands) = per_key.get(other_key) else {
                continue; // already reported as stale/unexplained
            };
            let other_writes = &p.writes[other_key];
            let torn = other_cands
                .iter()
                .all(|&c| strictly_before(other_writes, c, *b_invoke));
            if torn {
                found.push(SnapViolation {
                    condition: "torn-batch",
                    snap: Some(snap.id),
                    key: other_key.clone(),
                    detail: format!(
                        "snapshot {} contains batch {}'s write of key {:02x?} but \
                         observed a strictly older version of key {:02x?}, which the \
                         same batch also wrote",
                        snap.id, b, key, other_key
                    ),
                    events: {
                        let mut ev = vec![*b_event];
                        if other_obs.event != usize::MAX {
                            ev.push(other_obs.event);
                        }
                        ev
                    },
                });
            }
        }
    }
    found
}

/// Cross-snapshot monotonicity: of two snapshots ordered in real time,
/// the later one must not observe a strictly older version.
fn check_monotonicity(p: &mut Prepared, snap_cands: &[BTreeMap<Vec<u8>, Vec<Cand>>]) {
    // Per key: snapshots that observed it, in creation order.
    let mut by_key: BTreeMap<&[u8], Vec<usize>> = BTreeMap::new();
    for (si, cands) in snap_cands.iter().enumerate() {
        for key in cands.keys() {
            by_key.entry(key).or_default().push(si);
        }
    }
    let mut found = Vec::new();
    for (key, mut snaps) in by_key {
        snaps.sort_by_key(|&si| p.snaps[si].c_resp);
        let Some(writes) = p.writes.get(key) else {
            continue; // never written: all views are Initial
        };
        for pair in snaps.windows(2) {
            let (s1, s2) = (pair[0], pair[1]);
            if p.snaps[s1].c_resp >= p.snaps[s2].c_inv {
                continue; // concurrent creations: no order to enforce
            }
            let c1 = &snap_cands[s1][key];
            let c2 = &snap_cands[s2][key];
            // Violation only if every explanation of the newer
            // snapshot's view is strictly before every explanation of
            // the older one's.
            let regressed = c2.iter().all(|&b| {
                c1.iter().all(|&a| match a {
                    Cand::Initial => false,
                    Cand::Write(a) => strictly_before(writes, b, writes[a].invoke),
                })
            });
            if regressed {
                found.push(SnapViolation {
                    condition: "snapshot-regression",
                    snap: Some(p.snaps[s2].id),
                    key: key.to_vec(),
                    detail: format!(
                        "snapshot {} (taken after snapshot {} completed) observed a \
                         strictly older version of the key",
                        p.snaps[s2].id, p.snaps[s1].id
                    ),
                    events: vec![p.snaps[s1].obs[key].event, p.snaps[s2].obs[key].event],
                });
            }
        }
    }
    p.violations.extend(found);
}

/// Linearizable mode only: a completed `get` floors later snapshots.
/// This is exactly the anomaly Algorithm 2 permits, so cLSM fails it by
/// design under contention — see the module docs.
fn check_get_floors(p: &mut Prepared, snap_cands: &[BTreeMap<Vec<u8>, Vec<Cand>>]) {
    let mut found = Vec::new();
    for (si, cands) in snap_cands.iter().enumerate() {
        let snap = &p.snaps[si];
        for (key, c_snap) in cands {
            let Some(writes) = p.writes.get(key) else {
                continue;
            };
            // The latest completed get of this key before the snapshot.
            let floor = p
                .gets
                .iter()
                .filter(|(_, _, resp, k, v)| k == key && *resp < snap.c_inv && v.is_some())
                .max_by_key(|(_, _, resp, _, _)| *resp);
            let Some((g_event, _, g_resp, _, g_val)) = floor else {
                continue;
            };
            let g_cands: Vec<usize> = writes
                .iter()
                .enumerate()
                .filter(|(_, w)| w.value == *g_val && w.invoke < *g_resp)
                .map(|(i, _)| i)
                .collect();
            if g_cands.is_empty() {
                continue; // the get itself is bogus; lin check reports it
            }
            let below_floor = c_snap.iter().all(|&c| {
                g_cands
                    .iter()
                    .all(|&g| strictly_before(writes, c, writes[g].invoke))
            });
            if below_floor {
                found.push(SnapViolation {
                    condition: "get-floor",
                    snap: Some(snap.id),
                    key: key.clone(),
                    detail: format!(
                        "a get completed before snapshot {} was taken observed {}, \
                         but the snapshot shows a strictly older version (the \
                         serializable-but-not-linearizable anomaly of Algorithm 2)",
                        snap.id,
                        summarize(g_val)
                    ),
                    events: vec![*g_event, snap.obs[key].event],
                });
            }
        }
    }
    p.violations.extend(found);
}

#[cfg(test)]
mod tests {
    use super::*;
    use clsm_kv::ScanRange;
    use std::ops::Bound;

    fn ev(thread: u32, invoke: u64, response: u64, op: KvOp) -> KvEvent {
        KvEvent {
            thread,
            invoke,
            response,
            ok: true,
            op,
        }
    }

    fn put(i: u64, r: u64, k: &[u8], v: &[u8]) -> KvEvent {
        ev(
            0,
            i,
            r,
            KvOp::Put {
                key: k.to_vec(),
                value: v.to_vec(),
            },
        )
    }

    fn snap_create(i: u64, r: u64, id: u64) -> KvEvent {
        ev(1, i, r, KvOp::SnapshotCreate { snap: id })
    }

    fn snap_get(i: u64, r: u64, id: u64, k: &[u8], res: Option<&[u8]>) -> KvEvent {
        ev(
            1,
            i,
            r,
            KvOp::SnapshotGet {
                snap: id,
                key: k.to_vec(),
                result: res.map(|v| v.to_vec()),
            },
        )
    }

    #[test]
    fn consistent_snapshot_passes() {
        let h = vec![
            put(1, 2, b"a", b"1"),
            put(3, 4, b"b", b"2"),
            snap_create(5, 6, 0),
            snap_get(7, 8, 0, b"a", Some(b"1")),
            snap_get(9, 10, 0, b"b", Some(b"2")),
            snap_get(11, 12, 0, b"c", None),
        ];
        assert!(check_snapshots(&h, CheckMode::Serializable).is_empty());
    }

    #[test]
    fn missed_completed_write_is_stale() {
        let h = vec![
            put(1, 2, b"a", b"1"),
            put(3, 4, b"a", b"2"),
            snap_create(5, 6, 0),
            snap_get(7, 8, 0, b"a", Some(b"1")),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].condition, "stale-read");
    }

    #[test]
    fn fresher_than_snapshot_read_is_flagged() {
        // The write began only after the snapshot was fully created.
        let h = vec![
            snap_create(1, 2, 0),
            put(3, 4, b"a", b"1"),
            snap_get(5, 6, 0, b"a", Some(b"1")),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].condition, "unexplained-value");
    }

    #[test]
    fn concurrent_write_may_or_may_not_be_included() {
        for seen in [Some(b"1".as_slice()), None] {
            let h = vec![
                ev(
                    0,
                    1,
                    10,
                    KvOp::Put {
                        key: b"a".to_vec(),
                        value: b"1".to_vec(),
                    },
                ),
                snap_create(2, 3, 0),
                snap_get(4, 5, 0, b"a", seen),
            ];
            assert!(
                check_snapshots(&h, CheckMode::Serializable).is_empty(),
                "seen {seen:?}"
            );
        }
    }

    #[test]
    fn snapshot_regression_is_flagged() {
        let h = vec![
            put(1, 2, b"a", b"1"),
            put(3, 40, b"a", b"2"), // concurrent with both snapshots
            snap_create(5, 6, 0),
            snap_get(7, 8, 0, b"a", Some(b"2")),
            snap_create(9, 10, 1),
            snap_get(11, 12, 1, b"a", Some(b"1")),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        assert!(
            v.iter().any(|v| v.condition == "snapshot-regression"),
            "{v:?}"
        );
    }

    #[test]
    fn torn_batch_is_flagged() {
        let h = vec![
            put(1, 2, b"a", b"old-a"),
            put(3, 4, b"b", b"old-b"),
            ev(
                0,
                5,
                6,
                KvOp::WriteBatch {
                    batch: 0,
                    entries: vec![
                        (b"a".to_vec(), Some(b"new-a".to_vec())),
                        (b"b".to_vec(), Some(b"new-b".to_vec())),
                    ],
                },
            ),
            // Snapshot concurrent with nothing, sees half the batch.
            snap_create(7, 8, 0),
            snap_get(9, 10, 0, b"a", Some(b"new-a")),
            snap_get(11, 12, 0, b"b", Some(b"old-b")),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        // The stale read on b is also individually reported; the torn
        // batch must be there too when the batch raced the snapshot.
        assert!(!v.is_empty());

        // Same shape, but batch concurrent with the snapshot (no
        // per-key staleness): only atomicity can catch it.
        let h = vec![
            put(1, 2, b"a", b"old-a"),
            put(3, 4, b"b", b"old-b"),
            ev(
                0,
                5,
                20,
                KvOp::WriteBatch {
                    batch: 0,
                    entries: vec![
                        (b"a".to_vec(), Some(b"new-a".to_vec())),
                        (b"b".to_vec(), Some(b"new-b".to_vec())),
                    ],
                },
            ),
            snap_create(6, 7, 0),
            snap_get(8, 9, 0, b"a", Some(b"new-a")),
            snap_get(10, 11, 0, b"b", Some(b"old-b")),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].condition, "torn-batch");
    }

    #[test]
    fn paper_anomaly_tolerated_serializable_flagged_linearizable() {
        // Algorithm 2's allowed anomaly: a get observes a write that is
        // inserted but unpublished (still in flight), then a snapshot
        // taken after the get completes returns the older version.
        let h = vec![
            put(1, 2, b"a", b"1"),
            ev(
                2,
                3,
                100,
                KvOp::Put {
                    key: b"a".to_vec(),
                    value: b"2".to_vec(),
                },
            ),
            ev(
                0,
                4,
                5,
                KvOp::Get {
                    key: b"a".to_vec(),
                    result: Some(b"2".to_vec()),
                },
            ),
            snap_create(6, 7, 0),
            snap_get(8, 9, 0, b"a", Some(b"1")),
        ];
        assert!(
            check_snapshots(&h, CheckMode::Serializable).is_empty(),
            "the paper's documented anomaly must pass in serializable mode"
        );
        let v = check_snapshots(&h, CheckMode::Linearizable);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].condition, "get-floor");
    }

    #[test]
    fn scan_absence_counts_as_observation() {
        let h = vec![
            put(1, 2, b"k1", b"v1"),
            put(3, 4, b"k2", b"v2"),
            ev(
                1,
                5,
                6,
                KvOp::Scan {
                    snap: 0,
                    range: ScanRange {
                        start: Bound::Unbounded,
                        end: Bound::Unbounded,
                    },
                    limit: 10,
                    result: vec![(b"k1".to_vec(), b"v1".to_vec())], // k2 missing!
                },
            ),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].condition, "stale-read");
        assert_eq!(v[0].key, b"k2");
    }

    #[test]
    fn truncated_scan_absences_stop_at_limit() {
        let h = vec![
            put(1, 2, b"k1", b"v1"),
            put(3, 4, b"k2", b"v2"),
            ev(
                1,
                5,
                6,
                KvOp::Scan {
                    snap: 0,
                    range: ScanRange {
                        start: Bound::Unbounded,
                        end: Bound::Unbounded,
                    },
                    limit: 1,
                    result: vec![(b"k1".to_vec(), b"v1".to_vec())],
                },
            ),
        ];
        assert!(check_snapshots(&h, CheckMode::Serializable).is_empty());
    }

    #[test]
    fn frozen_snapshot_conflict_is_flagged() {
        let h = vec![
            put(1, 2, b"a", b"1"),
            put(3, 20, b"a", b"2"),
            snap_create(4, 5, 0),
            snap_get(6, 7, 0, b"a", Some(b"1")),
            snap_get(8, 9, 0, b"a", Some(b"2")),
        ];
        let v = check_snapshots(&h, CheckMode::Serializable);
        assert!(
            v.iter().any(|v| v.condition == "snapshot-not-frozen"),
            "{v:?}"
        );
    }

    #[test]
    fn recovery_checks_final_state() {
        let h = vec![put(1, 2, b"a", b"1"), put(3, 4, b"a", b"2")];
        let good = RecoveredState {
            at: 100,
            reads: vec![(b"a".to_vec(), Some(b"2".to_vec()))],
        };
        assert!(check_recovery(&h, &good).is_empty());
        let lost = RecoveredState {
            at: 100,
            reads: vec![(b"a".to_vec(), Some(b"1".to_vec()))],
        };
        let v = check_recovery(&h, &lost);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].condition, "recovery-lost-write");
        let phantom = RecoveredState {
            at: 100,
            reads: vec![(b"a".to_vec(), Some(b"zzz".to_vec()))],
        };
        let v = check_recovery(&h, &phantom);
        assert_eq!(v[0].condition, "recovery-unexplained-value");
    }
}
