//! Per-key linearizability checking (Wing & Gong, with
//! P-compositionality).
//!
//! Point operations — `put`, `get`, `delete`, `put_if_absent`,
//! `read_modify_write`, and the per-key effects of atomic batches —
//! are checked against a sequential register specification. Because
//! the register spec is *compositional*, a history is linearizable iff
//! each per-key subhistory is, so the search runs independently per
//! key (this is the P-compositionality optimization: search cost is
//! exponential in the per-key concurrency, not the global one).
//!
//! The search itself is the classic Wing–Gong DFS with Lowe's
//! memoization: a configuration is the pair (set of linearized ops,
//! abstract state); configurations that already failed are never
//! re-explored. At each step the candidates are the *minimal* pending
//! ops — those not preceded (in real time) by another pending op.
//!
//! Cross-key claims (snapshot consistency, batch atomicity) are out of
//! scope here; [`crate::snapcheck`] covers them.

use std::collections::{HashMap, HashSet};

use clsm_kv::record::{KvEvent, KvOp, RmwApplied};

/// Outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinOutcome {
    /// Every per-key subhistory is linearizable.
    Ok,
    /// A key's subhistory admits no linearization.
    Violation(LinViolation),
    /// The search budget was exhausted before a verdict (rare; raise
    /// the budget or shrink the schedule).
    Inconclusive {
        /// Key whose search ran out of budget.
        key: Vec<u8>,
    },
}

/// A non-linearizable per-key subhistory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinViolation {
    /// The key whose subhistory failed.
    pub key: Vec<u8>,
    /// Indexes (into the checked event slice) of the ops involved.
    pub events: Vec<usize>,
    /// Human-readable explanation.
    pub detail: String,
}

/// One register-level operation extracted from an event.
#[derive(Debug, Clone)]
enum RegOp {
    /// Unconditional write (put, delete, batch entry): `None` deletes.
    Write(Option<Vec<u8>>),
    /// Observed value.
    Get(Option<Vec<u8>>),
    /// Conditional insert and whether the store claims it stored.
    Pia { value: Vec<u8>, stored: bool },
    /// Atomic read-modify-write: observed previous value + effect.
    Rmw {
        prev: Option<Vec<u8>>,
        applied: RmwApplied,
    },
}

struct PerKeyOp {
    event: usize,
    invoke: u64,
    response: u64,
    op: RegOp,
}

/// Default DFS step budget per key. Schedules the driver produces stay
/// far below this; it exists so adversarial replay files cannot wedge
/// the checker.
pub const DEFAULT_BUDGET: u64 = 20_000_000;

/// Checks the point-op portion of `events` for per-key linearizability.
///
/// Failed (`ok == false`) events are skipped: the driver joins workers
/// before collecting histories, so they only appear in hand-edited
/// replay files where their effects are unknowable black-box.
pub fn check_linearizable(events: &[KvEvent]) -> LinOutcome {
    check_linearizable_budget(events, DEFAULT_BUDGET)
}

/// [`check_linearizable`] with an explicit per-key step budget.
pub fn check_linearizable_budget(events: &[KvEvent], budget: u64) -> LinOutcome {
    let mut per_key: HashMap<Vec<u8>, Vec<PerKeyOp>> = HashMap::new();
    for (idx, e) in events.iter().enumerate() {
        if !e.ok {
            continue;
        }
        let mut push = |key: &[u8], op: RegOp| {
            per_key.entry(key.to_vec()).or_default().push(PerKeyOp {
                event: idx,
                invoke: e.invoke,
                response: e.response,
                op,
            });
        };
        match &e.op {
            KvOp::Put { key, value } => push(key, RegOp::Write(Some(value.clone()))),
            KvOp::Delete { key } => push(key, RegOp::Write(None)),
            KvOp::Get { key, result } => push(key, RegOp::Get(result.clone())),
            KvOp::PutIfAbsent { key, value, stored } => push(
                key,
                RegOp::Pia {
                    value: value.clone(),
                    stored: *stored,
                },
            ),
            KvOp::Rmw { key, prev, applied } => push(
                key,
                RegOp::Rmw {
                    prev: prev.clone(),
                    applied: applied.clone(),
                },
            ),
            KvOp::WriteBatch { entries, .. } => {
                // The batch is one atomic multi-key write; per key its
                // effect is the last entry for that key. Cross-key
                // atomicity is snapcheck's job.
                let mut last: HashMap<&[u8], &Option<Vec<u8>>> = HashMap::new();
                for (k, v) in entries {
                    last.insert(k.as_slice(), v);
                }
                for (k, v) in last {
                    push(k, RegOp::Write((*v).clone()));
                }
            }
            // Snapshot reads are serializable, not linearizable, by
            // design (§ "snapshot scans"); they are checked separately.
            KvOp::SnapshotCreate { .. } | KvOp::SnapshotGet { .. } | KvOp::Scan { .. } => {}
        }
    }

    for (key, mut ops) in per_key {
        ops.sort_by_key(|o| o.invoke);
        match check_key(&ops, budget) {
            KeyOutcome::Ok => {}
            KeyOutcome::Violation => {
                return LinOutcome::Violation(LinViolation {
                    events: ops.iter().map(|o| o.event).collect(),
                    detail: format!(
                        "no linearization of the {} ops on key {:02x?} exists",
                        ops.len(),
                        key
                    ),
                    key,
                });
            }
            KeyOutcome::Exhausted => return LinOutcome::Inconclusive { key },
        }
    }
    LinOutcome::Ok
}

enum KeyOutcome {
    Ok,
    Violation,
    Exhausted,
}

/// Interned abstract register states (`Option<Vec<u8>>` values).
struct States {
    ids: HashMap<Option<Vec<u8>>, u32>,
}

impl States {
    fn new() -> States {
        States {
            ids: HashMap::new(),
        }
    }

    fn intern(&mut self, v: Option<&[u8]>) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(v.map(|v| v.to_vec())).or_insert(next)
    }
}

/// Applies `op` to interned state `state`; `Some(new_state)` if legal.
fn step(states: &mut States, values: &[Option<Vec<u8>>], state: u32, op: &RegOp) -> Option<u32> {
    let current = &values[state as usize];
    match op {
        RegOp::Write(v) => Some(states.intern(v.as_deref())),
        RegOp::Get(r) => (r == current).then_some(state),
        RegOp::Pia { value, stored } => {
            if *stored {
                current.is_none().then(|| states.intern(Some(value)))
            } else {
                current.is_some().then_some(state)
            }
        }
        RegOp::Rmw { prev, applied } => {
            if prev != current {
                return None;
            }
            Some(match applied {
                RmwApplied::Update(v) => states.intern(Some(v)),
                RmwApplied::Delete => states.intern(None),
                RmwApplied::Abort => state,
            })
        }
    }
}

/// A fixed-capacity bitset over op indexes.
#[derive(Clone, PartialEq, Eq, Hash)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> BitSet {
        BitSet(vec![0; n.div_ceil(64)])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
}

/// Wing–Gong DFS over one key's subhistory (iterative, memoized).
fn check_key(ops: &[PerKeyOp], budget: u64) -> KeyOutcome {
    let n = ops.len();
    if n == 0 {
        return KeyOutcome::Ok;
    }

    let mut states = States::new();
    let initial = states.intern(None);
    // `values[id]` is the concrete value behind interned state `id`.
    // Rebuilt lazily because `States::intern` may add entries mid-step.
    let mut values: Vec<Option<Vec<u8>>> = vec![None];
    let refresh = |states: &States, values: &mut Vec<Option<Vec<u8>>>| {
        values.resize(states.ids.len(), None);
        for (v, id) in &states.ids {
            values[*id as usize] = v.clone();
        }
    };

    // Candidates of a configuration: pending ops minimal in the
    // real-time precedence order. Walking pending ops by invoke with a
    // running min of responses finds exactly those.
    let candidates = |linearized: &BitSet,
                      state: u32,
                      states: &mut States,
                      values: &mut Vec<Option<Vec<u8>>>| {
        let mut cands: Vec<(usize, u32)> = Vec::new();
        let mut min_response = u64::MAX;
        // `step` only appends new states, so one refresh covers every
        // lookup of the (pre-existing) current state below.
        refresh(states, values);
        for (i, op) in ops.iter().enumerate() {
            if linearized.get(i) {
                continue;
            }
            if op.invoke >= min_response {
                break;
            }
            if let Some(next) = step(states, values, state, &op.op) {
                cands.push((i, next));
            }
            min_response = min_response.min(op.response);
        }
        cands
    };

    struct Frame {
        /// Op whose linearization entered this configuration.
        entered_via: Option<usize>,
        cands: Vec<(usize, u32)>,
        next: usize,
    }

    let mut linearized = BitSet::new(n);
    let mut done = 0usize;
    let mut seen: HashSet<(BitSet, u32)> = HashSet::new();
    let mut steps = 0u64;

    let mut stack = vec![Frame {
        entered_via: None,
        cands: candidates(&linearized, initial, &mut states, &mut values),
        next: 0,
    }];

    while let Some(frame) = stack.last_mut() {
        if let Some(&(op, next_state)) = frame.cands.get(frame.next) {
            frame.next += 1;
            linearized.set(op);
            done += 1;
            if done == n {
                return KeyOutcome::Ok;
            }
            if !seen.insert((linearized.clone(), next_state)) {
                // Configuration already failed via another order.
                linearized.clear(op);
                done -= 1;
                continue;
            }
            steps += 1;
            if steps > budget {
                return KeyOutcome::Exhausted;
            }
            let cands = candidates(&linearized, next_state, &mut states, &mut values);
            stack.push(Frame {
                entered_via: Some(op),
                cands,
                next: 0,
            });
        } else {
            let entered_via = frame.entered_via;
            stack.pop();
            if let Some(op) = entered_via {
                linearized.clear(op);
                done -= 1;
            }
        }
    }
    KeyOutcome::Violation
}

/// Greedily shrinks a failing history: repeatedly drops events whose
/// removal keeps `still_fails` true. Quadratic, so meant for the small
/// per-violation slices the checkers hand back, not whole histories.
pub fn minimize<F>(events: &[KvEvent], mut still_fails: F) -> Vec<KvEvent>
where
    F: FnMut(&[KvEvent]) -> bool,
{
    let mut current: Vec<KvEvent> = events.to_vec();
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u32, invoke: u64, response: u64, op: KvOp) -> KvEvent {
        KvEvent {
            thread,
            invoke,
            response,
            ok: true,
            op,
        }
    }

    fn put(t: u32, i: u64, r: u64, k: &[u8], v: &[u8]) -> KvEvent {
        ev(
            t,
            i,
            r,
            KvOp::Put {
                key: k.to_vec(),
                value: v.to_vec(),
            },
        )
    }

    fn get(t: u32, i: u64, r: u64, k: &[u8], res: Option<&[u8]>) -> KvEvent {
        ev(
            t,
            i,
            r,
            KvOp::Get {
                key: k.to_vec(),
                result: res.map(|v| v.to_vec()),
            },
        )
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            put(0, 1, 2, b"k", b"a"),
            get(0, 3, 4, b"k", Some(b"a")),
            ev(0, 5, 6, KvOp::Delete { key: b"k".to_vec() }),
            get(0, 7, 8, b"k", None),
        ];
        assert_eq!(check_linearizable(&h), LinOutcome::Ok);
    }

    #[test]
    fn concurrent_get_may_see_either_value() {
        // put(b) overlaps the get; both old and new values are fine.
        for seen in [Some(b"a".as_slice()), Some(b"b".as_slice())] {
            let h = vec![
                put(0, 1, 2, b"k", b"a"),
                put(1, 3, 10, b"k", b"b"),
                get(2, 4, 5, b"k", seen),
            ];
            assert_eq!(check_linearizable(&h), LinOutcome::Ok, "seen {seen:?}");
        }
    }

    #[test]
    fn stale_read_is_flagged() {
        // put(b) completed before the get began, yet the get saw "a".
        let h = vec![
            put(0, 1, 2, b"k", b"a"),
            put(0, 3, 4, b"k", b"b"),
            get(1, 5, 6, b"k", Some(b"a")),
        ];
        match check_linearizable(&h) {
            LinOutcome::Violation(v) => assert_eq!(v.key, b"k"),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn value_from_nowhere_is_flagged() {
        let h = vec![put(0, 1, 2, b"k", b"a"), get(1, 3, 4, b"k", Some(b"zzz"))];
        assert!(matches!(check_linearizable(&h), LinOutcome::Violation(_)));
    }

    #[test]
    fn rmw_lost_update_is_flagged() {
        // Two RMW increments both observed prev "0": a lost update.
        let rmw = |t, i, r, prev: &[u8], new: &[u8]| {
            ev(
                t,
                i,
                r,
                KvOp::Rmw {
                    key: b"c".to_vec(),
                    prev: Some(prev.to_vec()),
                    applied: RmwApplied::Update(new.to_vec()),
                },
            )
        };
        let h = vec![
            put(0, 1, 2, b"c", b"0"),
            rmw(1, 3, 5, b"0", b"1"),
            rmw(2, 4, 6, b"0", b"1"),
        ];
        assert!(matches!(check_linearizable(&h), LinOutcome::Violation(_)));

        // The serialized version is fine.
        let h = vec![
            put(0, 1, 2, b"c", b"0"),
            rmw(1, 3, 4, b"0", b"1"),
            rmw(2, 5, 6, b"1", b"2"),
        ];
        assert_eq!(check_linearizable(&h), LinOutcome::Ok);
    }

    #[test]
    fn pia_double_store_is_flagged() {
        let pia = |t, i, r, stored| {
            ev(
                t,
                i,
                r,
                KvOp::PutIfAbsent {
                    key: b"k".to_vec(),
                    value: b"v".to_vec(),
                    stored,
                },
            )
        };
        // Both claim to have stored: impossible for a register that
        // starts absent and is never deleted.
        let h = vec![pia(0, 1, 2, true), pia(1, 3, 4, true)];
        assert!(matches!(check_linearizable(&h), LinOutcome::Violation(_)));
        let h = vec![pia(0, 1, 2, true), pia(1, 3, 4, false)];
        assert_eq!(check_linearizable(&h), LinOutcome::Ok);
    }

    #[test]
    fn batch_effects_participate_per_key() {
        let h = vec![
            ev(
                0,
                1,
                2,
                KvOp::WriteBatch {
                    batch: 0,
                    entries: vec![(b"a".to_vec(), Some(b"1".to_vec())), (b"b".to_vec(), None)],
                },
            ),
            get(1, 3, 4, b"a", Some(b"1")),
            get(1, 5, 6, b"b", None),
        ];
        assert_eq!(check_linearizable(&h), LinOutcome::Ok);
        let h2 = vec![h[0].clone(), get(1, 3, 4, b"a", None)];
        assert!(matches!(check_linearizable(&h2), LinOutcome::Violation(_)));
    }

    #[test]
    fn minimize_shrinks_to_core() {
        let mut h = vec![
            put(0, 1, 2, b"k", b"a"),
            put(0, 3, 4, b"k", b"b"),
            get(1, 5, 6, b"k", Some(b"a")),
        ];
        // Pad with irrelevant traffic on other keys.
        for i in 0..20u64 {
            h.push(put(2, 100 + 2 * i, 101 + 2 * i, b"other", b"x"));
        }
        let min = minimize(&h, |ev| {
            matches!(check_linearizable(ev), LinOutcome::Violation(_))
        });
        assert!(min.len() <= 3, "minimized to {} events", min.len());
        assert!(matches!(check_linearizable(&min), LinOutcome::Violation(_)));
    }
}
