//! Database introspection: one structured snapshot of everything an
//! operator asks first ("is the memtable full? how deep is L0? who is
//! holding snapshots open?"), renderable as a text report.
//!
//! [`Db::doctor`] gathers the state; [`DoctorReport::render`] prints
//! it. The `clsm-doctor` binary (in the bench crate) is a thin CLI
//! over this.

use std::time::Duration;

use clsm_util::metrics::MetricsSnapshot;
use clsm_util::ratelimit::IoRateLimiterStats;

use crate::admission::AdmissionState;
use crate::db::Db;
use crate::watchdog::{StallEvent, StallKind};
use crate::write_report::WritePathReport;

/// One level's shape in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelGeometry {
    /// Level index (0 = freshest).
    pub level: usize,
    /// Number of table files in the level.
    pub files: usize,
    /// Total bytes across those files.
    pub bytes: u64,
}

/// A point-in-time health snapshot of an open database.
///
/// Everything here is sampled racily (the database keeps running), so
/// treat it as a diagnostic picture, not a consistent cut.
#[derive(Debug, Clone)]
pub struct DoctorReport {
    /// Approximate bytes in the mutable memtable `Pm`.
    pub memtable_bytes: usize,
    /// Flush threshold ([`crate::Options::memtable_bytes`]).
    pub memtable_capacity: usize,
    /// `true` while an immutable memtable `P'm` awaits/undergoes merge.
    pub immutable_pending: bool,
    /// Per-level file counts and byte totals.
    pub levels: Vec<LevelGeometry>,
    /// Live snapshot handles (each pins versions from GC).
    pub live_snapshots: usize,
    /// Timestamp of the oldest live snapshot — the version-GC
    /// watermark — if any snapshot is open.
    pub oldest_snapshot_ts: Option<u64>,
    /// The oracle's `timeCounter`.
    pub time_counter: u64,
    /// The oracle's `snapTime` (highest snapshot time handed out).
    pub snap_time: u64,
    /// In-flight writes currently in the oracle's `Active` set.
    pub active_writes: usize,
    /// Slot capacity of the `Active` set.
    pub active_slots: usize,
    /// Flush vs. compaction byte counters.
    pub write_amp: lsm_storage::store::WriteAmp,
    /// Block-cache `(hits, misses)`, when a cache is configured.
    pub cache: Option<(u64, u64)>,
    /// Current WAL file number.
    pub wal_number: u64,
    /// Backlog of the logging queue at sampling time (persistently
    /// non-zero means writers outpace the log device).
    pub wal_queue_depth: usize,
    /// Recent watchdog verdicts, oldest first.
    pub stall_events: Vec<StallEvent>,
    /// Whether the group-commit pipeline is enabled
    /// ([`crate::Options::group_commit`]).
    pub group_commit: bool,
    /// Stable name of the compaction scheduling policy
    /// ([`crate::CompactionPolicyKind::name`]).
    pub compaction_policy: &'static str,
    /// I/O rate-limiter budget and consumption: `(bytes_per_sec,
    /// burst_bytes, stats)`, or `None` when writes are unthrottled.
    pub io_rate_limit: Option<(u64, u64, IoRateLimiterStats)>,
    /// The graduated admission ladder's position and lifetime counters.
    pub admission: AdmissionState,
    /// Commit-mode distribution, group-size stats, and (when
    /// [`crate::Options::write_path_attribution`] is on) per-stage
    /// write latency, extracted from the metrics snapshot.
    pub write_path: WritePathReport,
}

impl Db {
    /// Gathers a [`DoctorReport`] from the running database.
    pub fn doctor(&self) -> DoctorReport {
        let inner = self.inner();
        let files = inner.store.level_file_counts();
        let bytes = inner.store.level_byte_sizes();
        let levels = files
            .iter()
            .zip(&bytes)
            .enumerate()
            .map(|(level, (&files, &bytes))| LevelGeometry {
                level,
                files,
                bytes,
            })
            .collect();
        DoctorReport {
            memtable_bytes: inner.pm.load().memory_usage(),
            memtable_capacity: inner.opts.memtable_bytes,
            immutable_pending: inner.pm_prev.load().is_some(),
            levels,
            live_snapshots: inner.snapshots.len(),
            oldest_snapshot_ts: inner.snapshots.oldest(),
            time_counter: inner.oracle.current_time(),
            snap_time: inner.oracle.snap_time(),
            active_writes: inner.oracle.active().len(),
            active_slots: inner.opts.active_slots,
            write_amp: inner.store.write_amp(),
            cache: inner.store.cache_stats(),
            wal_number: inner.store.current_wal_number(),
            wal_queue_depth: inner.store.wal_queue_depth(),
            stall_events: self.stall_events(),
            group_commit: inner.opts.group_commit,
            compaction_policy: inner.store.compaction_policy().name(),
            io_rate_limit: inner
                .store
                .io_rate_limiter()
                .filter(|l| !l.is_unlimited())
                .map(|l| (l.bytes_per_sec(), l.burst_bytes(), l.stats())),
            admission: inner.admission_state(),
            write_path: WritePathReport::from_snapshot(&self.metrics()),
        }
    }
}

impl DoctorReport {
    /// Renders the report as the text `clsm-doctor` prints.
    ///
    /// Line formats are stable enough to grep: level lines match
    /// `L<n>: <files> files, <bytes> bytes`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let pct = if self.memtable_capacity == 0 {
            0.0
        } else {
            100.0 * self.memtable_bytes as f64 / self.memtable_capacity as f64
        };
        let _ = writeln!(out, "== clsm-doctor ==");
        let _ = writeln!(
            out,
            "memtable: {} / {} bytes ({:.1}% full), immutable pending: {}",
            self.memtable_bytes,
            self.memtable_capacity,
            pct,
            if self.immutable_pending { "yes" } else { "no" }
        );
        let _ = writeln!(
            out,
            "level geometry (wal #{}, logging-queue depth {}):",
            self.wal_number, self.wal_queue_depth
        );
        for l in &self.levels {
            let _ = writeln!(out, "  L{}: {} files, {} bytes", l.level, l.files, l.bytes);
        }
        match self.oldest_snapshot_ts {
            Some(ts) => {
                let _ = writeln!(
                    out,
                    "snapshots: {} live, oldest ts {} (GC watermark)",
                    self.live_snapshots, ts
                );
            }
            None => {
                let _ = writeln!(out, "snapshots: 0 live (GC unconstrained)");
            }
        }
        let _ = writeln!(
            out,
            "oracle: timeCounter={} snapTime={} activeWrites={}/{}",
            self.time_counter, self.snap_time, self.active_writes, self.active_slots
        );
        let _ = writeln!(
            out,
            "write amp: flushed={} compacted={} factor={:.2}",
            self.write_amp.flushed,
            self.write_amp.compacted,
            self.write_amp.factor()
        );
        if let Some((hits, misses)) = self.cache {
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                100.0 * hits as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "block cache: {hits} hits / {misses} misses ({rate:.1}% hit rate)"
            );
        }
        let _ = writeln!(
            out,
            "group commit: {}",
            if self.group_commit { "on" } else { "off" }
        );
        let _ = writeln!(out, "compaction policy: {}", self.compaction_policy);
        match &self.io_rate_limit {
            Some((bps, burst, stats)) => {
                let _ = writeln!(
                    out,
                    "io rate limit: {bps} B/s (burst {burst} B); consumed \
                     high={} low={} throttle waits={} ({:.1?})",
                    stats.consumed_high,
                    stats.consumed_low,
                    stats.throttle_waits,
                    Duration::from_nanos(stats.throttle_wait_ns)
                );
            }
            None => {
                let _ = writeln!(out, "io rate limit: unlimited");
            }
        }
        let a = &self.admission;
        let _ = writeln!(
            out,
            "admission: {} (debt {:.2}, delay {:.1?}; watermarks {:.2}/{:.2}) \
             delayed={} delay={:.1?} hard stalls={}",
            a.ladder_rung(),
            a.debt,
            a.current_delay,
            a.low_watermark,
            a.high_watermark,
            a.delayed_writes,
            Duration::from_nanos(a.delay_ns),
            a.hard_stalls
        );
        out.push_str(&self.write_path.render());
        if self.stall_events.is_empty() {
            let _ = writeln!(out, "watchdog: no stall events");
        } else {
            let _ = writeln!(out, "watchdog: {} stall event(s)", self.stall_events.len());
            for e in &self.stall_events {
                let _ = writeln!(
                    out,
                    "  [{:>10.3?}] {}: {}",
                    Duration::from_nanos(e.at_ns),
                    e.kind,
                    e.detail
                );
            }
        }
        out
    }

    /// `true` when the watchdog flagged anything — the doctor's
    /// one-bit verdict.
    pub fn unhealthy(&self) -> bool {
        !self.stall_events.is_empty()
    }

    /// Convenience: events of one kind, for tests and tools.
    pub fn events_of(&self, kind: StallKind) -> usize {
        self.stall_events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Column header for the `clsm-doctor --watch` live dashboard
/// (pairs with [`watch_dashboard_line`]).
pub fn watch_dashboard_header() -> String {
    format!(
        "{:>10} {:>10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>12} {:>11} {:>6} {:>8}",
        "puts/s",
        "gets/s",
        "groups/s",
        "avg-grp",
        "wdraw/s",
        "delayed/s",
        "hstalls/s",
        "p99-wr(us)",
        "p99-rd(us)",
        "flush",
        "compact"
    )
}

/// One `--watch` dashboard line from two metric snapshots taken
/// `interval` apart.
///
/// Counter columns (`puts/s`, `gets/s`, `groups/s`, `wdraw/s`,
/// `flush`, `compact`) are deltas between the snapshots — per-second
/// rates except the last two, which are raw per-interval counts.
/// `avg-grp` is the mean committed group size over the interval.
/// The p99 columns (`write_path.total_ns` / `op.get.latency_ns`) are
/// cumulative since open: snapshots carry histogram *summaries*,
/// which cannot be subtracted.
pub fn watch_dashboard_line(
    prev: &MetricsSnapshot,
    cur: &MetricsSnapshot,
    interval: Duration,
) -> String {
    let secs = interval.as_secs_f64().max(1e-9);
    let counter =
        |snap: &MetricsSnapshot, name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let delta = |name: &str| counter(cur, name).saturating_sub(counter(prev, name));
    let rate = |name: &str| delta(name) as f64 / secs;
    let groups = delta("db.commit.groups");
    let grouped = delta("db.commit.group_requests");
    let avg_grp = if groups == 0 {
        0.0
    } else {
        grouped as f64 / groups as f64
    };
    let p99_us = |name: &str| {
        cur.histograms
            .get(name)
            .map(|h| h.p99 as f64 / 1000.0)
            .unwrap_or(0.0)
    };
    format!(
        "{:>10.0} {:>10.0} {:>9.0} {:>8.1} {:>8.0} {:>9.0} {:>9.0} {:>12.1} {:>11.1} {:>6} {:>8}",
        rate("db.puts"),
        rate("db.gets"),
        groups as f64 / secs,
        avg_grp,
        rate("db.commit.withdrawn"),
        rate("admission.delayed_writes"),
        rate("admission.hard_stalls"),
        p99_us("write_path.total_ns"),
        p99_us("op.get.latency_ns"),
        delta("db.flushes"),
        delta("db.compactions")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(puts: u64, gets: u64, groups: u64, grouped: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("db.puts".into(), puts);
        s.counters.insert("db.gets".into(), gets);
        s.counters.insert("db.commit.groups".into(), groups);
        s.counters
            .insert("db.commit.group_requests".into(), grouped);
        s
    }

    fn columns(line: &str) -> Vec<f64> {
        line.split_whitespace()
            .map(|c| c.parse::<f64>().expect("numeric column"))
            .collect()
    }

    #[test]
    fn watch_line_rates_divide_by_the_interval_actually_covered() {
        let prev = snap(1_000, 500, 10, 40);
        let cur = snap(3_000, 1_500, 30, 120);
        // The same deltas over a 2 s window must show half the rate of
        // a 1 s window: a caller passing the nominal tick instead of
        // the measured elapsed time inflates every rate column.
        let one_sec = columns(&watch_dashboard_line(&prev, &cur, Duration::from_secs(1)));
        let two_sec = columns(&watch_dashboard_line(&prev, &cur, Duration::from_secs(2)));
        assert_eq!(one_sec[0], 2000.0, "puts/s over 1s");
        assert_eq!(two_sec[0], 1000.0, "puts/s over 2s");
        assert_eq!(one_sec[1], 1000.0, "gets/s over 1s");
        assert_eq!(two_sec[1], 500.0, "gets/s over 2s");
        assert_eq!(one_sec[2], 20.0, "groups/s over 1s");
        assert_eq!(two_sec[2], 10.0, "groups/s over 2s");
        // Mean group size is a ratio of deltas — interval-independent.
        assert_eq!(one_sec[3], 4.0);
        assert_eq!(two_sec[3], 4.0);
    }

    #[test]
    fn watch_line_deltas_ignore_absolute_counter_levels() {
        // Same window shifted by a large base: identical line.
        let a = watch_dashboard_line(
            &snap(0, 0, 0, 0),
            &snap(100, 200, 4, 8),
            Duration::from_secs(1),
        );
        let b = watch_dashboard_line(
            &snap(1 << 40, 1 << 41, 1 << 20, 1 << 21),
            &snap(
                (1 << 40) + 100,
                (1 << 41) + 200,
                (1 << 20) + 4,
                (1 << 21) + 8,
            ),
            Duration::from_secs(1),
        );
        assert_eq!(a, b);
        // A counter that went backwards (reopened store) clamps to 0
        // instead of underflowing.
        let line = watch_dashboard_line(
            &snap(500, 0, 0, 0),
            &snap(100, 0, 0, 0),
            Duration::from_secs(1),
        );
        assert_eq!(columns(&line)[0], 0.0);
    }
}
