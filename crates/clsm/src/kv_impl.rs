//! [`KvStore`] implementation for [`Db`], making cLSM a drop-in peer
//! of the baseline systems in the workload driver and benchmarks.

use clsm_kv::{KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions};
use clsm_util::error::Result;
use clsm_util::metrics::MetricsSnapshot;

use crate::db::Db;
use crate::sharded::{ShardedDb, ShardedSnapshot};
use crate::snapshot::Snapshot;

impl KvStore for Db {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        Db::write(self, batch, opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Db::get(self, key)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        Ok(Box::new(Db::snapshot(self)?))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Db::snapshot(self)?.scan(range, limit)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        Db::put_if_absent(self, key, value)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        Db::read_modify_write(self, key, f)
    }

    fn quiesce(&self) -> Result<()> {
        self.compact_to_quiescence()
    }

    fn name(&self) -> &'static str {
        "cLSM"
    }

    fn stats(&self) -> MetricsSnapshot {
        self.metrics()
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(Db::write_amp(self))
    }
}

impl KvSnapshot for Snapshot {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Snapshot::get(self, key)
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Snapshot::scan(self, range, limit)
    }
}

impl KvStore for ShardedDb {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        // Atomic even across shards: one shared write timestamp.
        ShardedDb::write(self, batch, opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        ShardedDb::get(self, key)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        Ok(Box::new(ShardedDb::snapshot(self)?))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        ShardedDb::snapshot(self)?.scan(range, limit)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        ShardedDb::put_if_absent(self, key, value)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        ShardedDb::read_modify_write(self, key, f)
    }

    fn quiesce(&self) -> Result<()> {
        self.compact_to_quiescence()
    }

    fn name(&self) -> &'static str {
        "cLSM-sharded"
    }

    fn stats(&self) -> MetricsSnapshot {
        self.metrics()
    }

    fn shard_stats(&self) -> Vec<(String, MetricsSnapshot)> {
        self.shard_metrics()
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(ShardedDb::write_amp(self))
    }
}

impl KvSnapshot for ShardedSnapshot {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        ShardedSnapshot::get(self, key)
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        ShardedSnapshot::scan(self, range, limit)
    }
}
