//! Database configuration.

use std::path::Path;
use std::sync::Arc;

use clsm_util::env::Env;
use clsm_util::ratelimit::IoRateLimiter;
use lsm_storage::compaction::CompactionPolicyKind;
use lsm_storage::StoreOptions;

use crate::admission::AdmissionOptions;
use crate::mem_component::MemtableKind;
use crate::watchdog::WatchdogOptions;

/// Configuration of a [`crate::Db`].
///
/// # Opening a database
///
/// `Options` is the single entry point for constructing stores:
/// [`Options::open`] yields a monolithic [`crate::Db`] and
/// [`Options::open_sharded`] a range-sharded [`crate::ShardedDb`].
/// (`Db::open` / `ShardedDb::open` remain as thin forwarders.)
///
/// ```no_run
/// use clsm::Options;
///
/// let db = Options::small_for_tests().open("/tmp/db".as_ref()).unwrap();
/// # drop(db);
/// ```
///
/// # Injection points
///
/// Everything a test harness can substitute threads through this one
/// struct:
///
/// - **Storage environment** — `store.env` (an `Arc<dyn Env>`) routes
///   every durability-relevant file operation: WAL appends and syncs,
///   SSTable writes, manifest renames, and directory fsyncs. The
///   default [`clsm_util::env::RealEnv`] hits the real filesystem with
///   zero overhead; [`clsm_util::env::FaultEnv`] adds deterministic
///   crash failpoints and torn-tail simulation for the
///   crash-consistency harness. Set it with
///   [`OptionsBuilder::env`].
/// - **Timestamp oracle & snapshot registry** — a [`crate::ShardedDb`]
///   opens its shards through an internal constructor that shares one
///   oracle and one snapshot registry across all shards; a standalone
///   [`crate::Db`] builds its own. These are wired automatically and
///   are not user-replaceable, but all flow through the same
///   `Db::from_parts` seam, so crash tests observe exactly the
///   production wiring.
#[derive(Debug, Clone)]
pub struct Options {
    /// Memtable size that triggers a flush (the paper's default,
    /// inherited from HBase practice, is 128 MiB; scale it down for
    /// small experiments).
    pub memtable_bytes: usize,
    /// `true` → every write waits for an fsync (the paper's synchronous
    /// logging). `false` (default, as in LevelDB) → writes only enqueue
    /// the log record on the logging queue.
    pub sync_writes: bool,
    /// `true` → snapshots are linearizable (never "read in the past");
    /// `false` (default) → serializable, as in the paper's Algorithm 2.
    pub linearizable_snapshots: bool,
    /// `true` (default) → writes ride the leader/follower group-commit
    /// pipeline: concurrent writers are drained into one group that
    /// pays a single timestamp-block acquisition, one coalesced WAL
    /// record, and one publish pass. `false` → every writer runs the
    /// paper's per-writer commit path (the ablation baseline).
    pub group_commit: bool,
    /// `true` (default) → each write records per-stage latencies
    /// (queue wait, stamp, memtable, WAL enqueue, publish, durable,
    /// wake) into the `write_path.*` histograms behind
    /// `Db::write_path_report()`. The cost is a handful of monotonic
    /// clock reads plus thread-striped histogram updates per write — no
    /// locks. `false` → the stage recording sites reduce to a single
    /// branch (commit-mode counters stay on; they are plain relaxed
    /// atomics).
    pub write_path_attribution: bool,
    /// Number of background compaction threads. The paper's cLSM uses a
    /// single compaction thread (§5); the RocksDB comparison (§5.3)
    /// raises this.
    pub compaction_threads: usize,
    /// Slot count of the oracle's `Active` set; must exceed the number
    /// of concurrent writer threads.
    pub active_slots: usize,
    /// Number of range shards for [`crate::ShardedDb`] (1..=256). A
    /// plain [`crate::Db`] ignores this; the sharded composition splits
    /// the keyspace into this many cLSM instances sharing one
    /// timestamp oracle. On reopen of an existing sharded directory
    /// the persisted shard layout is authoritative.
    pub shards: usize,
    /// Which in-memory component implementation to use (§3's generic
    /// algorithm: any thread-safe sorted map works for puts/gets/scans;
    /// RMW requires the skip list).
    pub memtable_kind: MemtableKind,
    /// Stall-watchdog configuration (sampling thread flagging write
    /// stalls, long exclusive-lock holds, and Active-set pressure).
    pub watchdog: WatchdogOptions,
    /// Graduated write-admission configuration (the delay ramp that
    /// replaces the §5.3 all-or-nothing stall; see
    /// [`crate::AdmissionOptions`]).
    pub admission: AdmissionOptions,
    /// Disk substrate tuning.
    pub store: StoreOptions,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_bytes: 128 * 1024 * 1024,
            sync_writes: false,
            linearizable_snapshots: false,
            group_commit: true,
            write_path_attribution: true,
            compaction_threads: 1,
            active_slots: 256,
            shards: 1,
            memtable_kind: MemtableKind::default(),
            watchdog: WatchdogOptions::default(),
            admission: AdmissionOptions::default(),
            store: StoreOptions::default(),
        }
    }
}

impl Options {
    /// Checks configuration invariants; called by `Db::open`.
    pub fn validate(&self) -> clsm_util::error::Result<()> {
        use clsm_util::error::Error;
        if self.memtable_bytes < 4 * 1024 {
            return Err(Error::invalid_argument(
                "memtable_bytes must be at least 4 KiB",
            ));
        }
        if self.active_slots == 0 {
            return Err(Error::invalid_argument("active_slots must be nonzero"));
        }
        if self.compaction_threads == 0 {
            return Err(Error::invalid_argument(
                "compaction_threads must be at least 1 (the paper's maintenance thread)",
            ));
        }
        if self.shards == 0 || self.shards > 256 {
            return Err(Error::invalid_argument("shards must be within 1..=256"));
        }
        if self.store.num_levels < 2 || self.store.num_levels > lsm_storage::NUM_LEVELS {
            return Err(Error::invalid_argument(format!(
                "num_levels must be within 2..={}",
                lsm_storage::NUM_LEVELS
            )));
        }
        if self.store.level_multiplier < 2 {
            return Err(Error::invalid_argument(
                "level_multiplier must be at least 2",
            ));
        }
        if self.store.block_size < 64 {
            return Err(Error::invalid_argument(
                "block_size must be at least 64 bytes",
            ));
        }
        if self.store.wal_stripes == 0 || self.store.wal_stripes > 16 {
            return Err(Error::invalid_argument(
                "store.wal_stripes must be within 1..=16",
            ));
        }
        if self.watchdog.enabled && self.watchdog.interval.is_zero() {
            return Err(Error::invalid_argument(
                "watchdog.interval must be nonzero when the watchdog is enabled",
            ));
        }
        if self.watchdog.enabled && self.watchdog.history == 0 {
            return Err(Error::invalid_argument(
                "watchdog.history must be nonzero when the watchdog is enabled",
            ));
        }
        if self.admission.enabled {
            let a = &self.admission;
            if !a.low_watermark.is_finite()
                || !a.high_watermark.is_finite()
                || a.low_watermark < 0.0
                || a.high_watermark <= a.low_watermark
            {
                return Err(Error::invalid_argument(
                    "admission watermarks must satisfy 0 <= low < high",
                ));
            }
            if a.max_delay.is_zero() {
                return Err(Error::invalid_argument(
                    "admission.max_delay must be nonzero when admission is enabled",
                ));
            }
        }
        Ok(())
    }

    /// A configuration scaled down for unit tests and examples: tiny
    /// memtable and tables so flushes and compactions happen quickly.
    ///
    /// The `CLSM_TEST_COMPACTION_THREADS` environment variable, when
    /// set to a positive integer, overrides the compaction thread
    /// count — CI uses it to run the whole test suite against the
    /// multi-threaded compaction path without a code change.
    pub fn small_for_tests() -> Self {
        let compaction_threads = std::env::var("CLSM_TEST_COMPACTION_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 1)
            .unwrap_or(1);
        Options {
            memtable_bytes: 64 * 1024,
            compaction_threads,
            store: StoreOptions {
                table_file_size: 64 * 1024,
                base_level_bytes: 256 * 1024,
                level_multiplier: 4,
                l0_compaction_trigger: 4,
                block_size: 4096,
                block_cache_bytes: 1 << 20,
                ..StoreOptions::default()
            },
            ..Options::default()
        }
    }

    /// Starts a validating [`OptionsBuilder`] from the defaults.
    ///
    /// ```
    /// use clsm::Options;
    ///
    /// let opts = Options::builder()
    ///     .memtable_bytes(8 * 1024 * 1024)
    ///     .sync_writes(true)
    ///     .compaction_threads(2)
    ///     .build()
    ///     .unwrap();
    /// assert!(opts.sync_writes);
    /// ```
    pub fn builder() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::default(),
        }
    }

    /// Opens (or creates) a monolithic [`crate::Db`] at `path` with
    /// this configuration.
    pub fn open(self, path: &Path) -> clsm_util::error::Result<crate::Db> {
        crate::Db::open(path, self)
    }

    /// Opens (or creates) a range-sharded [`crate::ShardedDb`] at
    /// `path` with `shards` shards sharing one timestamp oracle.
    ///
    /// `shards` overrides [`Options::shards`]; on reopen of an
    /// existing directory the persisted shard layout is authoritative.
    pub fn open_sharded(
        mut self,
        path: &Path,
        shards: usize,
    ) -> clsm_util::error::Result<crate::ShardedDb> {
        self.shards = shards;
        crate::ShardedDb::open(path, self)
    }
}

/// Fluent, validating constructor for [`Options`].
///
/// Every setter returns `self`; [`OptionsBuilder::build`] runs
/// [`Options::validate`], so an invalid combination fails at
/// construction rather than inside `Db::open`. The builder converts
/// into `Options` wherever `impl Into<Options>` is accepted (e.g.
/// `Db::open`), in which case validation is deferred to `open`.
#[derive(Debug, Clone)]
pub struct OptionsBuilder {
    opts: Options,
}

impl OptionsBuilder {
    /// Starts from an existing configuration instead of the defaults.
    pub fn from_options(opts: Options) -> Self {
        OptionsBuilder { opts }
    }

    /// Memtable size that triggers a flush.
    pub fn memtable_bytes(mut self, bytes: usize) -> Self {
        self.opts.memtable_bytes = bytes;
        self
    }

    /// Whether every write waits for an fsync.
    pub fn sync_writes(mut self, sync: bool) -> Self {
        self.opts.sync_writes = sync;
        self
    }

    /// Whether snapshots are linearizable rather than serializable.
    pub fn linearizable_snapshots(mut self, linearizable: bool) -> Self {
        self.opts.linearizable_snapshots = linearizable;
        self
    }

    /// Whether writes ride the group-commit pipeline (default) or the
    /// per-writer commit path (the ablation baseline).
    pub fn group_commit(mut self, enabled: bool) -> Self {
        self.opts.group_commit = enabled;
        self
    }

    /// Whether writes record per-stage latency attribution (see
    /// [`Options::write_path_attribution`]).
    pub fn write_path_attribution(mut self, enabled: bool) -> Self {
        self.opts.write_path_attribution = enabled;
        self
    }

    /// Number of background compaction threads.
    pub fn compaction_threads(mut self, threads: usize) -> Self {
        self.opts.compaction_threads = threads;
        self
    }

    /// Slot count of the oracle's `Active` set.
    pub fn active_slots(mut self, slots: usize) -> Self {
        self.opts.active_slots = slots;
        self
    }

    /// Number of range shards for [`crate::ShardedDb`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.opts.shards = shards;
        self
    }

    /// In-memory component implementation.
    pub fn memtable_kind(mut self, kind: MemtableKind) -> Self {
        self.opts.memtable_kind = kind;
        self
    }

    /// Stall-watchdog configuration.
    pub fn watchdog(mut self, watchdog: WatchdogOptions) -> Self {
        self.opts.watchdog = watchdog;
        self
    }

    /// Graduated write-admission configuration (delay ramp between the
    /// watermarks instead of the §5.3 cliff).
    pub fn admission(mut self, admission: AdmissionOptions) -> Self {
        self.opts.admission = admission;
        self
    }

    /// Disk substrate tuning.
    pub fn store(mut self, store: StoreOptions) -> Self {
        self.opts.store = store;
        self
    }

    /// Number of independent WAL stripes (files + logger threads) per
    /// store; each writing thread appends to its own stripe and a sync
    /// covers all of them. `1` (the default) is the classic single
    /// logging queue. Valid range `1..=16`.
    pub fn wal_stripes(mut self, stripes: usize) -> Self {
        self.opts.store.wal_stripes = stripes;
        self
    }

    /// Compaction scheduling policy of the disk substrate (leveled,
    /// tiered, or hybrid-partial; see
    /// [`lsm_storage::compaction::CompactionPolicyKind`]).
    pub fn compaction_policy(mut self, kind: CompactionPolicyKind) -> Self {
        self.opts.store.compaction_policy = kind;
        self
    }

    /// Caps background + foreground file-write bandwidth with a shared
    /// token bucket (`bytes_per_sec`, refilled up to `burst_bytes`;
    /// flush and WAL traffic outranks compaction). `0` bytes/sec
    /// removes the limit.
    pub fn io_rate_limit(mut self, bytes_per_sec: u64, burst_bytes: u64) -> Self {
        self.opts.store.io_rate_limiter = if bytes_per_sec == 0 {
            None
        } else {
            Some(Arc::new(IoRateLimiter::new(bytes_per_sec, burst_bytes)))
        };
        self
    }

    /// Storage environment every file operation is routed through
    /// (see the "Injection points" section of [`Options`]).
    pub fn env(mut self, env: Arc<dyn Env>) -> Self {
        self.opts.store.env = env;
        self
    }

    /// Validates and returns the finished configuration.
    pub fn build(self) -> clsm_util::error::Result<Options> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

impl From<OptionsBuilder> for Options {
    /// Unvalidated conversion, for passing a builder straight to
    /// `Db::open` (which validates on entry).
    fn from(b: OptionsBuilder) -> Options {
        b.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrips_every_field() {
        let opts = Options::builder()
            .memtable_bytes(1 << 20)
            .sync_writes(true)
            .linearizable_snapshots(true)
            .group_commit(false)
            .compaction_threads(3)
            .active_slots(64)
            .memtable_kind(MemtableKind::LockFreeSkipList)
            .store(StoreOptions {
                block_size: 1024,
                ..StoreOptions::default()
            })
            .build()
            .unwrap();
        assert_eq!(opts.memtable_bytes, 1 << 20);
        assert!(opts.sync_writes);
        assert!(opts.linearizable_snapshots);
        assert!(!opts.group_commit);
        assert_eq!(opts.compaction_threads, 3);
        assert_eq!(opts.active_slots, 64);
        assert_eq!(opts.store.block_size, 1024);
    }

    #[test]
    fn builder_rejects_invalid_configurations() {
        assert!(Options::builder().memtable_bytes(16).build().is_err());
        assert!(Options::builder().active_slots(0).build().is_err());
        assert!(Options::builder().compaction_threads(0).build().is_err());
        assert!(Options::builder().wal_stripes(0).build().is_err());
        assert!(Options::builder().wal_stripes(17).build().is_err());
        assert!(Options::builder().wal_stripes(4).build().is_ok());
        assert!(Options::builder()
            .admission(AdmissionOptions {
                low_watermark: 0.9,
                high_watermark: 0.5,
                ..Default::default()
            })
            .build()
            .is_err());
        assert!(Options::builder()
            .admission(AdmissionOptions {
                max_delay: std::time::Duration::ZERO,
                ..Default::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_selects_policy_admission_and_rate_limit() {
        let opts = Options::builder()
            .compaction_policy(CompactionPolicyKind::Tiered)
            .io_rate_limit(8 << 20, 1 << 20)
            .admission(AdmissionOptions {
                low_watermark: 0.5,
                high_watermark: 0.9,
                ..Default::default()
            })
            .build()
            .unwrap();
        assert_eq!(opts.store.compaction_policy, CompactionPolicyKind::Tiered);
        let limiter = opts.store.io_rate_limiter.as_ref().unwrap();
        assert_eq!(limiter.bytes_per_sec(), 8 << 20);
        assert_eq!(opts.admission.low_watermark, 0.5);

        // Zero bytes/sec removes the limit.
        let opts = Options::builder()
            .io_rate_limit(8 << 20, 0)
            .io_rate_limit(0, 0)
            .build()
            .unwrap();
        assert!(opts.store.io_rate_limiter.is_none());
    }

    #[test]
    fn options_open_and_open_sharded() {
        let dir = std::env::temp_dir().join(format!(
            "options-open-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let db = Options::small_for_tests().open(&dir.join("mono")).unwrap();
        db.put(b"k", b"v").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
        drop(db);

        let sharded = Options::small_for_tests()
            .open_sharded(&dir.join("sharded"), 3)
            .unwrap();
        sharded.put(b"k", b"v").unwrap();
        assert_eq!(sharded.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(sharded.num_shards(), 3);
        drop(sharded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_from_options_preserves_base() {
        let base = Options::small_for_tests();
        let opts = OptionsBuilder::from_options(base.clone())
            .sync_writes(true)
            .build()
            .unwrap();
        assert_eq!(opts.memtable_bytes, base.memtable_bytes);
        assert!(opts.sync_writes);
    }
}
