//! The pluggable memory-component abstraction — the paper's
//! "generic algorithm" claim made concrete.
//!
//! §3: "Our algorithm for supporting puts, gets, snapshot scans, and
//! range queries is decoupled from any specific implementation of the
//! LSM-DS's main building blocks, namely the in-memory component (a
//! map data structure) … Only our support for atomic read-modify-write
//! requires a specific implementation of the in-memory component as a
//! skip-list data structure."
//!
//! [`MemComponent`] is exactly that contract: any thread-safe sorted
//! multi-version map with weakly consistent iterators can serve as
//! `Cm`. Two implementations ship:
//!
//! - [`crate::Memtable`] — the arena-backed lock-free skip list
//!   (default; supports RMW).
//! - [`LockedMemtable`] — a mutex-guarded `BTreeMap`, demonstrating the
//!   decoupling and doubling as the DB-level ablation arm for "how much
//!   does the lock-free structure matter?" (no RMW support, as the
//!   paper predicts).

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clsm_skiplist::Conflict;
use lsm_storage::format::ValueKind;
use lsm_storage::iter::{BoxedIterator, VecIterator};

use crate::memtable::Memtable;

/// A versioned read result: `(ts, value)`, `None` value = tombstone.
pub type VersionedValue = (u64, Option<Vec<u8>>);

/// The in-memory component contract (§3.1–3.2): a thread-safe sorted
/// map of `(key, ts) → value` with weakly consistent ordered iteration.
pub trait MemComponent: Send + Sync + 'static {
    /// Inserts a version (`None` = deletion marker). Must be safe to
    /// call from many threads.
    fn insert(&self, key: &[u8], ts: u64, value: Option<&[u8]>);

    /// Inserts a version **iff** no newer version of `key` exists,
    /// atomically with respect to concurrent inserts; returns
    /// [`Conflict`] (inserting nothing) otherwise.
    ///
    /// Plain writers stamp their timestamp before inserting, so a
    /// conditional (RMW) writer can read the current latest, obtain a
    /// later timestamp, and insert first — the plain writer's version
    /// would then land *below* it, silently shadowed, retroactively
    /// invalidating what the RMW observed. Writers therefore insert
    /// through this check and re-stamp on conflict; unconditional
    /// [`MemComponent::insert`] remains for recovery replay and merges,
    /// where arbitrary timestamp order is legitimate.
    fn insert_as_newest(&self, key: &[u8], ts: u64, value: Option<&[u8]>) -> Result<(), Conflict>;

    /// Newest version of `key` with timestamp ≤ `max_ts`.
    fn get_latest(&self, key: &[u8], max_ts: u64) -> Option<VersionedValue>;

    /// Algorithm 3's conditional insert. Returns `None` when the
    /// implementation cannot support non-blocking RMW (the paper: only
    /// the skip list can), `Some(Err(Conflict))` on a detected race,
    /// `Some(Ok(()))` on success.
    fn insert_if_latest(
        &self,
        key: &[u8],
        ts: u64,
        value: Option<&[u8]>,
        expected_latest: Option<u64>,
    ) -> Option<Result<(), Conflict>>;

    /// Approximate bytes consumed (drives flush scheduling).
    fn memory_usage(&self) -> usize;

    /// Returns `true` when nothing was inserted.
    fn is_empty(&self) -> bool;

    /// Highest timestamp inserted.
    fn max_ts(&self) -> u64;

    /// A weakly consistent ordered iterator over all versions; must
    /// keep the component alive for its own lifetime.
    fn internal_iter(self: Arc<Self>) -> BoxedIterator;
}

impl MemComponent for Memtable {
    fn insert(&self, key: &[u8], ts: u64, value: Option<&[u8]>) {
        Memtable::insert(self, key, ts, value);
    }

    fn insert_as_newest(&self, key: &[u8], ts: u64, value: Option<&[u8]>) -> Result<(), Conflict> {
        Memtable::insert_as_newest(self, key, ts, value)
    }

    fn get_latest(&self, key: &[u8], max_ts: u64) -> Option<VersionedValue> {
        Memtable::get_latest(self, key, max_ts).map(|(ts, v)| (ts, v.map(<[u8]>::to_vec)))
    }

    fn insert_if_latest(
        &self,
        key: &[u8],
        ts: u64,
        value: Option<&[u8]>,
        expected_latest: Option<u64>,
    ) -> Option<Result<(), Conflict>> {
        Some(Memtable::insert_if_latest(
            self,
            key,
            ts,
            value,
            expected_latest,
        ))
    }

    fn memory_usage(&self) -> usize {
        Memtable::memory_usage(self)
    }

    fn is_empty(&self) -> bool {
        Memtable::is_empty(self)
    }

    fn max_ts(&self) -> u64 {
        Memtable::max_ts(self)
    }

    fn internal_iter(self: Arc<Self>) -> BoxedIterator {
        Box::new(Memtable::internal_iter(&self))
    }
}

/// Key of the locked map: `(user key, ts descending)`.
type VersionKey = (Vec<u8>, Reverse<u64>);

/// A coarsely locked `BTreeMap` memory component.
///
/// Exists to demonstrate (and measure) the genericity of Algorithms 1
/// and 2: correctness does not depend on the skip list — only RMW and
/// scalability do.
#[derive(Debug, Default)]
pub struct LockedMemtable {
    map: parking_lot::Mutex<BTreeMap<VersionKey, Option<Vec<u8>>>>,
    bytes: AtomicU64,
    max_ts: AtomicU64,
}

impl LockedMemtable {
    /// Creates an empty component.
    pub fn new() -> LockedMemtable {
        LockedMemtable::default()
    }
}

impl MemComponent for LockedMemtable {
    fn insert(&self, key: &[u8], ts: u64, value: Option<&[u8]>) {
        let charge = key.len() + value.map_or(0, <[u8]>::len) + 48;
        self.map
            .lock()
            .insert((key.to_vec(), Reverse(ts)), value.map(<[u8]>::to_vec));
        self.bytes.fetch_add(charge as u64, Ordering::Relaxed);
        self.max_ts.fetch_max(ts, Ordering::Relaxed);
    }

    fn insert_as_newest(&self, key: &[u8], ts: u64, value: Option<&[u8]>) -> Result<(), Conflict> {
        let charge = key.len() + value.map_or(0, <[u8]>::len) + 48;
        let mut map = self.map.lock();
        // Newest-first within a key: the first entry at or after
        // `(key, Reverse(MAX))` is the key's latest version, if any.
        let newest = map
            .range((key.to_vec(), Reverse(u64::MAX))..)
            .next()
            .filter(|((k, _), _)| k == key)
            .map(|((_, Reverse(t)), _)| *t);
        if newest.is_some_and(|t| t > ts) {
            return Err(Conflict);
        }
        map.insert((key.to_vec(), Reverse(ts)), value.map(<[u8]>::to_vec));
        drop(map);
        self.bytes.fetch_add(charge as u64, Ordering::Relaxed);
        self.max_ts.fetch_max(ts, Ordering::Relaxed);
        Ok(())
    }

    fn get_latest(&self, key: &[u8], max_ts: u64) -> Option<VersionedValue> {
        let map = self.map.lock();
        map.range((key.to_vec(), Reverse(max_ts))..)
            .next()
            .filter(|((k, _), _)| k == key)
            .map(|((_, Reverse(ts)), v)| (*ts, v.clone()))
    }

    fn insert_if_latest(
        &self,
        _key: &[u8],
        _ts: u64,
        _value: Option<&[u8]>,
        _expected_latest: Option<u64>,
    ) -> Option<Result<(), Conflict>> {
        // The paper: non-blocking RMW requires the linked-list/skip-list
        // structure. A locked map could do it trivially, but that would
        // not be the algorithm under test — report unsupported.
        None
    }

    fn memory_usage(&self) -> usize {
        self.bytes.load(Ordering::Relaxed) as usize
    }

    fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    fn max_ts(&self) -> u64 {
        self.max_ts.load(Ordering::Relaxed)
    }

    fn internal_iter(self: Arc<Self>) -> BoxedIterator {
        // Copy-on-iterate: trivially satisfies weak consistency (the
        // scan sees a frozen state). Acceptable for the ablation arm.
        let entries: Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)> = self
            .map
            .lock()
            .iter()
            .map(|((k, Reverse(ts)), v)| match v {
                Some(v) => (k.clone(), *ts, ValueKind::Put, v.clone()),
                None => (k.clone(), *ts, ValueKind::Delete, Vec::new()),
            })
            .collect();
        Box::new(VecIterator::new(entries))
    }
}

/// Which memory-component implementation a [`crate::Db`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemtableKind {
    /// The lock-free skip list (the cLSM design; supports RMW).
    #[default]
    LockFreeSkipList,
    /// A mutex-guarded `BTreeMap` (genericity/ablation arm; RMW
    /// unsupported).
    LockedBTreeMap,
}

impl MemtableKind {
    /// Instantiates an empty component of this kind.
    pub fn create(&self) -> Arc<dyn MemComponent> {
        match self {
            MemtableKind::LockFreeSkipList => Arc::new(Memtable::new()),
            MemtableKind::LockedBTreeMap => Arc::new(LockedMemtable::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::iter::InternalIterator;

    fn exercise(c: Arc<dyn MemComponent>) {
        assert!(c.is_empty());
        c.insert(b"b", 2, Some(b"v2"));
        c.insert(b"a", 1, Some(b"v1"));
        c.insert(b"a", 3, None);
        assert!(!c.is_empty());
        assert_eq!(c.max_ts(), 3);
        assert_eq!(c.get_latest(b"a", u64::MAX >> 1), Some((3, None)));
        assert_eq!(c.get_latest(b"a", 2), Some((1, Some(b"v1".to_vec()))));
        assert_eq!(c.get_latest(b"zz", u64::MAX >> 1), None);
        assert!(c.memory_usage() > 0);

        let mut it = Arc::clone(&c).internal_iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push((it.user_key().to_vec(), it.ts(), it.kind()));
            it.next();
        }
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), 3, ValueKind::Delete),
                (b"a".to_vec(), 1, ValueKind::Put),
                (b"b".to_vec(), 2, ValueKind::Put),
            ]
        );
    }

    #[test]
    fn skiplist_component_contract() {
        exercise(MemtableKind::LockFreeSkipList.create());
    }

    #[test]
    fn locked_btreemap_component_contract() {
        exercise(MemtableKind::LockedBTreeMap.create());
    }

    #[test]
    fn insert_as_newest_on_both_kinds() {
        for kind in [MemtableKind::LockFreeSkipList, MemtableKind::LockedBTreeMap] {
            let c = kind.create();
            c.insert_as_newest(b"k", 5, Some(b"v5")).unwrap();
            assert_eq!(c.insert_as_newest(b"k", 3, Some(b"x")), Err(Conflict));
            c.insert_as_newest(b"k", 7, None).unwrap();
            c.insert_as_newest(b"other", 1, Some(b"vo")).unwrap();
            assert_eq!(c.get_latest(b"k", u64::MAX >> 1), Some((7, None)));
            assert_eq!(c.get_latest(b"k", 6), Some((5, Some(b"v5".to_vec()))));
            assert_eq!(c.max_ts(), 7);
        }
    }

    #[test]
    fn rmw_capability_matches_the_paper() {
        let skip = MemtableKind::LockFreeSkipList.create();
        assert!(skip.insert_if_latest(b"k", 1, Some(b"v"), None).is_some());
        let locked = MemtableKind::LockedBTreeMap.create();
        assert!(locked.insert_if_latest(b"k", 1, Some(b"v"), None).is_none());
    }

    #[test]
    fn locked_component_is_thread_safe() {
        let c = Arc::new(LockedMemtable::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let key = format!("t{t}-{i:05}");
                        c.insert(key.as_bytes(), t * 500 + i + 1, Some(b"v"));
                    }
                });
            }
        });
        assert_eq!(c.map.lock().len(), 2000);
    }
}
