//! The cLSM database: Algorithms 1 and 2 plus background maintenance.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use clsm_util::error::{Error, Result};
use clsm_util::metrics::MetricsSnapshot;
use clsm_util::oracle::{SnapshotRegistry, TimestampOracle};
use clsm_util::rcu::RcuCell;
use clsm_util::shared_lock::SharedExclusiveLock;
use clsm_util::trace::{now_ns, TraceId};

use clsm_kv::{WriteBatch, WriteOptions};
use lsm_storage::format::{ValueKind, WriteRecord};
use lsm_storage::store::{Recovered, RecoveryReport};
use lsm_storage::wal::SyncMode;
use lsm_storage::{Store, StoreOptions};

use crate::mem_component::MemComponent;
use crate::options::Options;
use crate::snapshot::Snapshot;
use crate::stats::{DbMetrics, StatsSnapshot};
use crate::watchdog::Watchdog;

/// Flight-recorder spans for the layers Algorithm 1/2 say matter: the
/// put critical section (shared lock → getTS → log → insert →
/// publish), the lock-free get, snapshot creation, the write stall,
/// and the merge hooks' exclusive-lock holds.
static T_PUT: TraceId = TraceId::new("clsm.put.critical");
static T_WRITE_BATCH: TraceId = TraceId::new("clsm.write_batch.exclusive");
static T_GET: TraceId = TraceId::new("clsm.get");
static T_GET_SNAP: TraceId = TraceId::new("clsm.getSnap");
static T_WRITE_STALL: TraceId = TraceId::new("clsm.write_stall");
static T_BEFORE_MERGE: TraceId = TraceId::new("clsm.beforeMerge.exclusive");
static T_AFTER_MERGE: TraceId = TraceId::new("clsm.afterMerge.exclusive");
static T_MEMTABLE_ROTATE: TraceId = TraceId::new("clsm.memtable_rotate");

/// Latest version of a key: `(ts, value-or-tombstone)`, plus whether
/// it was found in the mutable memtable (the RMW conflict scope).
pub(crate) type VersionedRead = (Option<(u64, Option<Vec<u8>>)>, bool);

/// Shared state of an open database.
pub(crate) struct DbInner {
    pub(crate) opts: Options,
    pub(crate) store: Store,
    /// Algorithm 1's shared-exclusive lock: shared by puts/RMW/getSnap,
    /// exclusive in the merge hooks and for atomic write batches.
    pub(crate) lock: SharedExclusiveLock,
    /// Algorithm 2's timestamp oracle. `Arc` so a sharded composition
    /// can hand the *same* oracle to every shard (see
    /// [`crate::sharded`]); a standalone [`Db`] owns its own.
    pub(crate) oracle: Arc<TimestampOracle>,
    /// Live snapshot handles (version-GC watermark). Shared alongside
    /// the oracle: a cross-shard snapshot registers once and every
    /// shard's merge consults the same watermark.
    pub(crate) snapshots: Arc<SnapshotRegistry>,
    /// Whether this instance is responsible for oracle-wide reporting.
    /// Exactly one store per oracle is primary: it registers the
    /// `oracle.*` gauges and runs the watchdog's Active-set-pressure
    /// detector, so N shards sharing an oracle don't report the same
    /// state N times. A standalone `Db` is always primary.
    pub(crate) oracle_primary: bool,
    /// `Pm`: the mutable memory component.
    pub(crate) pm: RcuCell<Arc<dyn MemComponent>>,
    /// `P'm`: the immutable memory component being merged, if any.
    pub(crate) pm_prev: RcuCell<Option<Arc<dyn MemComponent>>>,
    /// Counters and latency histograms (see [`crate::stats`]).
    pub(crate) metrics: DbMetrics,
    /// Stall-event sink fed by the watchdog sampler (see
    /// [`crate::watchdog`]).
    pub(crate) watchdog: Watchdog,
    /// The group-commit write pipeline (see [`crate::write`]); used
    /// when `Options::group_commit` is on, bypassed otherwise.
    pub(crate) pipeline: crate::write::CommitPipeline,

    pub(crate) shutdown: AtomicBool,
    /// Set while a flush is scheduled or running.
    flush_pending: AtomicBool,
    /// Wakes background workers; also signalled when a flush finishes
    /// (unblocking stalled writers).
    work_mutex: Mutex<()>,
    work_cv: Condvar,
}

/// A concurrent log-structured data store (the paper's cLSM).
///
/// Cheap to share: internally reference-counted. All operations take
/// `&self` and are safe to call from any number of threads.
pub struct Db {
    pub(crate) inner: Arc<DbInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Db {
    /// Opens (or creates) a database at `path`, replaying any WAL left
    /// by a previous incarnation (§4: out-of-order log records are
    /// sorted by timestamp on recovery).
    ///
    /// Accepts anything convertible into [`Options`] — a finished
    /// `Options` value or an [`crate::OptionsBuilder`] directly; the
    /// configuration is validated either way.
    pub fn open(path: &Path, opts: impl Into<Options>) -> Result<Db> {
        Self::open_inner(path, opts.into(), None)
    }

    fn open_inner(
        path: &Path,
        opts: Options,
        shared: Option<(Arc<TimestampOracle>, Arc<SnapshotRegistry>, bool)>,
    ) -> Result<Db> {
        opts.validate()?;
        let store_opts = StoreOptions {
            ..opts.store.clone()
        };
        let (store, recovered) = Store::open(path, store_opts)?;
        Self::from_parts(store, recovered, opts, shared)
    }

    /// Assembles a database from an already-opened store and its
    /// recovered state. [`crate::ShardedDb`] opens every shard's store
    /// first, audits cross-shard batch markers across them (dropping
    /// torn batches from the recovered records), and only then builds
    /// the `Db`s — so the memtables are filled from the *audited*
    /// record set.
    pub(crate) fn from_parts(
        store: Store,
        recovered: Recovered,
        opts: Options,
        shared: Option<(Arc<TimestampOracle>, Arc<SnapshotRegistry>, bool)>,
    ) -> Result<Db> {
        let pm = opts.memtable_kind.create();
        for rec in &recovered.records {
            let value = match rec.kind {
                ValueKind::Put => Some(rec.value.as_slice()),
                ValueKind::Delete => None,
            };
            pm.insert(&rec.key, rec.ts, value);
        }

        let (oracle, snapshots, oracle_primary) = match shared {
            Some((oracle, snapshots, primary)) => {
                // Shards recover in arbitrary order; `fetch_max` puts
                // the shared counter above every shard's last stamp.
                oracle.advance_to(recovered.last_ts);
                (oracle, snapshots, primary)
            }
            None => (
                Arc::new(TimestampOracle::recovered_at(
                    recovered.last_ts,
                    opts.active_slots,
                )),
                Arc::new(SnapshotRegistry::new()),
                true,
            ),
        };

        let metrics = DbMetrics::new();
        let watchdog = Watchdog::new(opts.watchdog.clone(), &metrics.registry);
        let inner = Arc::new(DbInner {
            oracle,
            opts,
            store,
            lock: SharedExclusiveLock::new(),
            snapshots,
            oracle_primary,
            pm: RcuCell::new(pm),
            pm_prev: RcuCell::new(None),
            metrics,
            watchdog,
            pipeline: crate::write::CommitPipeline::new(),
            shutdown: AtomicBool::new(false),
            flush_pending: AtomicBool::new(false),
            work_mutex: Mutex::new(()),
            work_cv: Condvar::new(),
        });

        // One registry for the whole stack: the storage layer records
        // its flush/compaction/WAL metrics into the same registry the
        // DB-level counters live in, and the oracle-pressure gauges
        // read derived state on demand. `Weak` avoids a cycle — the
        // registry is owned by `DbInner`.
        inner.store.attach_metrics(&inner.metrics.registry);
        let weak = Arc::downgrade(&inner);
        // The oracle gauges describe *shared* state when the oracle is
        // injected; only the primary registers them, so a merged
        // snapshot over N shard registries reports each value once.
        if inner.oracle_primary {
            inner.metrics.registry.gauge_fn("oracle.live_snapshots", {
                let weak = weak.clone();
                move || weak.upgrade().map_or(0, |i| i.snapshots.len() as i64)
            });
            inner.metrics.registry.gauge_fn("oracle.active_writes", {
                let weak = weak.clone();
                move || weak.upgrade().map_or(0, |i| i.oracle.active().len() as i64)
            });
            inner.metrics.registry.gauge_fn("oracle.snap_time", {
                let weak = weak.clone();
                move || weak.upgrade().map_or(0, |i| i.oracle.snap_time() as i64)
            });
        }
        inner.metrics.registry.gauge_fn("db.memtable_bytes", {
            let weak = weak.clone();
            move || {
                weak.upgrade()
                    .map_or(0, |i| i.pm.load().memory_usage() as i64)
            }
        });

        let mut workers = Vec::new();
        // Flush worker (the paper's single maintenance thread), plus
        // optional extra compaction threads (RocksDB-style, §5.3).
        {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("clsm-flush".into())
                    .spawn(move || flush_worker(inner))
                    .expect("spawn flush worker"),
            );
        }
        for i in 0..inner.opts.compaction_threads {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("clsm-compact-{i}"))
                    .spawn(move || compaction_worker(inner))
                    .expect("spawn compaction worker"),
            );
        }
        if inner.opts.watchdog.enabled {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("clsm-watchdog".into())
                    .spawn(move || crate::watchdog::watchdog_worker(inner))
                    .expect("spawn watchdog"),
            );
        }

        Ok(Db { inner, workers })
    }

    /// Applies a [`WriteBatch`] under the given [`WriteOptions`] — the
    /// single mutation entry point every other write API desugars to.
    ///
    /// With `Options::group_commit` on (the default) the batch rides
    /// the leader/follower commit pipeline (the `write` module): it
    /// is queued on a lock-free combining queue and one writer commits
    /// the whole pending group with a single timestamp-block
    /// acquisition, one coalesced WAL append, and one publish pass.
    /// With group commit off, single-op batches run the paper's
    /// per-writer put path and multi-op batches take the exclusive
    /// lock, exactly as before — the ablation baseline.
    ///
    /// An empty batch is a no-op. Multi-op batches are atomic: no
    /// snapshot ever observes a strict subset, and recovery replays
    /// them all-or-nothing.
    pub fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::ShuttingDown);
        }
        opts.validate()?;
        if batch.is_empty() {
            return Ok(());
        }
        if batch.iter().any(|(key, _)| key.is_empty()) {
            // The empty key is reserved for batch-commit markers.
            return Err(Error::invalid_argument("empty keys are not supported"));
        }
        let began = Instant::now();
        // `None` = multi-op batch; `Some(is_put)` = single op.
        let single_kind = if batch.len() == 1 {
            Some(batch.ops()[0].1.is_some())
        } else {
            None
        };
        let sync = opts.sync || (inner.opts.sync_writes && !opts.disable_wal);
        let ops = batch.into_ops();
        // Pipeline dispatch. The solo fast path: a writer that wins the
        // leader election against an empty queue has nobody to combine
        // with, so it commits through the per-writer path directly —
        // no request allocation, no queue traffic, no wakeup — and
        // then serves whoever queued behind the held flag. Writers
        // that lose the election enqueue for the leader; the pipeline
        // may hand the ops back (`Submit::Withdrawn`) when no leader
        // serviced the request promptly. The per-writer paths are safe
        // to run concurrently with a committing leader — they follow
        // the same lock/oracle protocol as any individual writer — so
        // both the fast path and withdrawn requests commit solo
        // instead of idling.
        let ops = if inner.opts.group_commit {
            if inner.pipeline.try_lead_solo() {
                inner.metrics.write_path.solo.inc();
                let result = self.write_ops_direct(&ops, sync, opts.disable_wal);
                crate::write::drain_as_leader(inner);
                result?;
                None
            } else {
                match crate::write::submit(inner, ops, sync, opts.disable_wal) {
                    crate::write::Submit::Done(result) => {
                        result?;
                        None
                    }
                    crate::write::Submit::Withdrawn(ops) => Some(ops),
                }
            }
        } else {
            Some(ops)
        };
        if let Some(ops) = ops {
            self.write_ops_direct(&ops, sync, opts.disable_wal)?;
        }
        let elapsed = began.elapsed();
        if let Some(wp) = inner.write_path() {
            wp.rec_total(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        match single_kind {
            Some(true) => {
                inner.metrics.puts.inc();
                inner.metrics.put_latency.record_duration(elapsed);
            }
            Some(false) => {
                inner.metrics.deletes.inc();
                inner.metrics.delete_latency.record_duration(elapsed);
            }
            None => {
                // One bump per batch, matching the historical counter
                // semantics.
                inner.metrics.puts.inc();
                inner.metrics.write_batch_latency.record_duration(elapsed);
            }
        }
        Ok(())
    }

    /// Stores `value` under `key` (Algorithm 2's `put`).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(WriteBatch::single_put(key, value), &WriteOptions::new())
    }

    /// Deletes `key` by storing a deletion marker (the paper's ⊥).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(WriteBatch::single_delete(key), &WriteOptions::new())
    }

    /// Commits `ops` through the per-writer paths: the shared-lock
    /// single-op path or the exclusive-lock batch path. Used when the
    /// pipeline is off, by the solo fast path, and for withdrawn
    /// requests.
    fn write_ops_direct(
        &self,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
        sync: bool,
        disable_wal: bool,
    ) -> Result<()> {
        if let Some((key, value)) = ops.first().filter(|_| ops.len() == 1) {
            self.write_one(key, value.as_deref(), sync, disable_wal)
        } else {
            self.write_batch_exclusive(ops, sync, disable_wal)
        }
    }

    /// The per-writer put path (the group-commit-off ablation), and the
    /// fallback for single-op writes when the pipeline is disabled.
    fn write_one(
        &self,
        key: &[u8],
        value: Option<&[u8]>,
        sync: bool,
        disable_wal: bool,
    ) -> Result<()> {
        let inner = &self.inner;
        inner.admit_write();
        let wp = inner.write_path();

        {
            // Algorithm 2, put: shared lock → getTS → insert → log →
            // Active.remove. The WAL enqueue is non-blocking (logging
            // queue); the insert is lock-free.
            //
            // The insert must land as the key's *newest* version: a
            // concurrent RMW can read the current latest, obtain a
            // later timestamp, and link first — a plain insert would
            // then slide below it, silently shadowed, retroactively
            // invalidating the RMW's observed "latest" (a lost
            // update). On conflict the abandoned stamp is published
            // (so snapshot creation keeps moving) and the write
            // re-stamps; the conflicting writer has already made
            // progress, so the loop is non-blocking. The WAL record
            // carries the final timestamp — recovery orders replay by
            // timestamp, not log position, so logging after the insert
            // leaves the recovered image unchanged.
            let _span = T_PUT.span_with(key.len() as u64);
            let _shared = inner.lock.lock_shared();
            // Attribution: accumulated `get_ts` time is the stamp
            // stage; the rest of the loop (inserts, plus the rare
            // abandoned-stamp publish on conflict) is the memtable
            // stage.
            let loop_start = if wp.is_some() { now_ns() } else { 0 };
            let mut stamp_ns = 0u64;
            let stamp = loop {
                let t0 = if wp.is_some() { now_ns() } else { 0 };
                let stamp = inner.oracle.get_ts();
                if wp.is_some() {
                    stamp_ns += now_ns().saturating_sub(t0);
                }
                match inner.pm.load().insert_as_newest(key, stamp.ts, value) {
                    Ok(()) => break stamp,
                    Err(_conflict) => inner.oracle.publish(stamp),
                }
            };
            if let Some(wp) = wp {
                let loop_ns = now_ns().saturating_sub(loop_start);
                wp.rec_stamp(stamp_ns);
                wp.rec_memtable(loop_ns.saturating_sub(stamp_ns));
            }
            let logged = if disable_wal {
                Ok(())
            } else {
                let record = match value {
                    Some(v) => WriteRecord::put(stamp.ts, key, v),
                    None => WriteRecord::delete(stamp.ts, key),
                };
                let wal_start = if wp.is_some() { now_ns() } else { 0 };
                let r = inner.store.log(&[record], SyncMode::Async);
                if let Some(wp) = wp {
                    wp.rec_wal_enqueue(now_ns().saturating_sub(wal_start));
                }
                r
            };
            let publish_start = if wp.is_some() { now_ns() } else { 0 };
            inner.oracle.publish(stamp);
            if let Some(wp) = wp {
                wp.rec_publish(now_ns().saturating_sub(publish_start));
            }
            logged?;
        }
        if sync {
            // Group-committed durability wait happens outside the
            // critical section so it never blocks the merge hooks.
            if let Some(wp) = wp {
                let sync_start = now_ns();
                let durable_ns = inner.store.sync_wal_timed()?;
                wp.rec_durable(durable_ns.saturating_sub(sync_start));
            } else {
                inner.store.sync_wal()?;
            }
        }
        inner.maybe_schedule_flush();
        Ok(())
    }

    /// The coarse-grained batch path (§4): the shared-exclusive lock in
    /// *exclusive* mode. Used for multi-op batches when group commit is
    /// off (the pipeline leader uses the same lock mode for groups
    /// carrying a multi-op batch).
    fn write_batch_exclusive(
        &self,
        batch: &[(Vec<u8>, Option<Vec<u8>>)],
        sync: bool,
        disable_wal: bool,
    ) -> Result<()> {
        let inner = &self.inner;
        inner.admit_write();
        let wp = inner.write_path();
        let logged;
        {
            let _span = T_WRITE_BATCH.span_with(batch.len() as u64);
            let _excl = inner.lock.lock_exclusive();
            let stamp_start = if wp.is_some() { now_ns() } else { 0 };
            let mut records = Vec::with_capacity(batch.len());
            let mut stamps = Vec::with_capacity(batch.len());
            for (key, value) in batch {
                let stamp = inner.oracle.get_ts();
                records.push(match value {
                    Some(v) => WriteRecord::put(stamp.ts, key.clone(), v.clone()),
                    None => WriteRecord::delete(stamp.ts, key.clone()),
                });
                stamps.push(stamp);
            }
            if let Some(wp) = wp {
                wp.rec_stamp(now_ns().saturating_sub(stamp_start));
            }
            logged = if disable_wal {
                Ok(())
            } else {
                let wal_start = if wp.is_some() { now_ns() } else { 0 };
                let r = inner.store.log(&records, SyncMode::Async);
                if let Some(wp) = wp {
                    wp.rec_wal_enqueue(now_ns().saturating_sub(wal_start));
                }
                r
            };
            // Insert and publish even when the log append failed: an
            // unpublished stamp would wedge snapshot creation forever,
            // and recovery never depends on an unlogged record.
            // Attribution: inserts and publishes interleave per entry
            // here, so the publish stage is folded into the memtable
            // stage (see `WritePathMetrics`).
            let mem_start = if wp.is_some() { now_ns() } else { 0 };
            let pm = inner.pm.load();
            for (record, stamp) in records.iter().zip(stamps) {
                let value = match record.kind {
                    ValueKind::Put => Some(record.value.as_slice()),
                    ValueKind::Delete => None,
                };
                pm.insert(&record.key, record.ts, value);
                inner.oracle.publish(stamp);
            }
            if let Some(wp) = wp {
                wp.rec_memtable(now_ns().saturating_sub(mem_start));
            }
        }
        logged?;
        if sync {
            if let Some(wp) = wp {
                let sync_start = now_ns();
                let durable_ns = inner.store.sync_wal_timed()?;
                wp.rec_durable(durable_ns.saturating_sub(sync_start));
            } else {
                inner.store.sync_wal()?;
            }
        }
        inner.maybe_schedule_flush();
        Ok(())
    }

    /// Atomically applies a batch of puts/deletes.
    #[deprecated(
        since = "0.6.0",
        note = "build a `WriteBatch` and call `write(batch, &WriteOptions::new())` instead"
    )]
    pub fn write_batch(&self, batch: &[(Vec<u8>, Option<Vec<u8>>)]) -> Result<()> {
        self.write(WriteBatch::from(batch), &WriteOptions::new())
    }

    /// Returns the latest value of `key`, or `None` if absent/deleted.
    ///
    /// Never blocks (Algorithm 1): component pointers are read through
    /// RCU in data-flow order `Pm → P'm → Pd`, the opposite of the
    /// order the merge hooks update them, so a concurrent swing is
    /// harmless.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let began = Instant::now();
        let _span = T_GET.span();
        let result = self.inner.get_at(key, lsm_storage::format::MAX_TS);
        self.inner.metrics.gets.inc();
        self.inner
            .metrics
            .get_latency
            .record_duration(began.elapsed());
        result
    }

    /// Scans all live pairs from an implicit fresh snapshot
    /// (convenience over [`Db::snapshot`] + iterate). The snapshot
    /// handle lives inside the iterator.
    pub fn iter(&self) -> Result<crate::snapshot::SnapshotIter> {
        let began = Instant::now();
        let it = self.snapshot()?.into_iter_owned()?;
        self.inner
            .metrics
            .scan_latency
            .record_duration(began.elapsed());
        Ok(it)
    }

    /// Range query over an implicit fresh snapshot, accepting any
    /// standard range expression over byte-vector keys. The snapshot
    /// handle lives inside the iterator.
    ///
    /// ```no_run
    /// # use clsm::{Db, Options};
    /// # let db = Db::open(std::path::Path::new("x"), Options::default()).unwrap();
    /// let from_b = db.range(b"b".to_vec()..).unwrap();
    /// let b_to_d = db.range(b"b".to_vec()..b"d".to_vec()).unwrap();
    /// let everything = db.range(..).unwrap();
    /// ```
    pub fn range<R>(&self, range: R) -> Result<crate::snapshot::SnapshotIter>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let began = Instant::now();
        let it = self.snapshot()?.into_range_bounds_owned(range)?;
        self.inner
            .metrics
            .scan_latency
            .record_duration(began.elapsed());
        Ok(it)
    }

    /// Creates a consistent snapshot (Algorithm 2's `getSnap`).
    pub fn snapshot(&self) -> Result<Snapshot> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::ShuttingDown);
        }
        let began = Instant::now();
        let ts = {
            // The registry is read by `beforeMerge` under the exclusive
            // lock; registering under shared mode closes the race
            // between installing a handle and the merge observing it.
            // The span covers the `Active`-min wait inside `get_snap`
            // (which also records its own `oracle.getSnap.active_wait`
            // sub-span when it actually waits).
            let _span = T_GET_SNAP.span();
            let _shared = inner.lock.lock_shared();
            let ts = if inner.opts.linearizable_snapshots {
                inner.oracle.get_snap_linearizable()
            } else {
                inner.oracle.get_snap()
            };
            inner.snapshots.register(ts);
            ts
        };
        inner.metrics.snapshots.inc();
        inner
            .metrics
            .snapshot_latency
            .record_duration(began.elapsed());
        Ok(Snapshot::new(Arc::clone(inner), ts))
    }

    /// Current operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.metrics.stats()
    }

    /// A point-in-time view of every registered metric: operation
    /// counters (`db.*`), per-operation latency histograms (`op.*`),
    /// storage-layer flush/compaction/WAL metrics (`storage.*`), and
    /// oracle pressure gauges (`oracle.*`). Render with
    /// [`MetricsSnapshot::to_text`] or [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.registry.snapshot()
    }

    /// Write-path latency attribution: the per-stage histograms
    /// (enqueue → claim → stamp → memtable → WAL-enqueue → publish →
    /// durable → wake) plus the group-size and
    /// leader/follower/withdraw distributions, extracted from
    /// [`Db::metrics`]. Stage histograms are empty unless
    /// [`Options::write_path_attribution`] is on.
    pub fn write_path_report(&self) -> crate::WritePathReport {
        crate::WritePathReport::from_snapshot(&self.metrics())
    }

    /// Blocks until the memtable is flushed and no compaction is due
    /// (test/benchmark hook; not part of the paper's API).
    ///
    /// Waits on the workers' condvar — flush and compaction workers
    /// signal it whenever they finish a unit of work — so the caller
    /// wakes as soon as progress happens rather than on a poll tick.
    /// The timed wait is only a backstop against a missed edge.
    pub fn compact_to_quiescence(&self) -> Result<()> {
        let inner = &self.inner;
        loop {
            inner.maybe_schedule_flush_force();
            if let Some(e) = inner.store.wal_poisoned() {
                return Err(e);
            }
            if !inner.is_busy() {
                return Ok(());
            }
            let mut guard = inner.work_mutex.lock();
            // Re-check under the lock so a completion signalled between
            // the check above and this wait is not missed.
            if inner.is_busy() {
                inner
                    .work_cv
                    .wait_for(&mut guard, std::time::Duration::from_millis(25));
            }
        }
    }

    /// Per-level file counts (diagnostics).
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.inner.store.level_file_counts()
    }

    /// Approximate bytes in the mutable memtable.
    pub fn memtable_bytes(&self) -> usize {
        self.inner.pm.load().memory_usage()
    }

    /// Manually compacts the key range `[start, end]` down to the
    /// bottom level (flushes the memtable first so everything in the
    /// range participates).
    pub fn compact_range(&self, start: &[u8], end: &[u8]) -> Result<()> {
        self.compact_to_quiescence()?;
        self.inner
            .store
            .compact_range(start, end, self.inner.gc_watermark())
    }

    /// Walks every on-disk table verifying checksums and key order;
    /// returns the number of entries checked (offline verification
    /// hook).
    pub fn verify_integrity(&self) -> Result<u64> {
        self.inner.store.verify_integrity()
    }

    /// Block-cache `(hits, misses)`, if a cache is configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.inner.store.cache_stats()
    }

    /// Write-amplification counters (bytes flushed vs. rewritten by
    /// compaction) — useful when analyzing compaction-bound workloads
    /// like Figure 11's.
    pub fn write_amp(&self) -> lsm_storage::store::WriteAmp {
        self.inner.store.write_amp()
    }

    /// What the opening recovery pass saw: WALs replayed, records
    /// recovered, torn tails tolerated (see `clsm-doctor
    /// --crash-audit`).
    pub fn recovery_report(&self) -> &RecoveryReport {
        self.inner.store.recovery_report()
    }

    /// Approximate bytes stored for keys in `[start, end]`: on-disk
    /// share plus the in-memory components (LevelDB's
    /// `GetApproximateSizes` analogue; coarse, for capacity planning).
    pub fn approximate_size(&self, start: &[u8], end: &[u8]) -> u64 {
        let disk = self.inner.store.approximate_range_bytes(start, end);
        // Memory components are not range-indexed; charge them whole.
        let mem = self.inner.pm.load().memory_usage()
            + self.inner.pm_prev.load().map_or(0, |m| m.memory_usage());
        disk + mem as u64
    }

    /// Force-releases snapshot handles older than `ttl`, unblocking
    /// version GC when an application leaks handles (the paper's
    /// TTL-based snapshot removal, §3.2.1). Returns how many were
    /// reclaimed. Reads through a reclaimed handle may subsequently
    /// miss versions — by contract, expired handles must not be used.
    pub fn expire_snapshots(&self, ttl: std::time::Duration) -> usize {
        self.inner.snapshots.expire_older_than(ttl)
    }

    pub(crate) fn inner(&self) -> &Arc<DbInner> {
        &self.inner
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.work_mutex.lock();
            self.inner.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Unflushed memtable data stays recoverable via the WAL; make
        // sure the logging queue has pushed it to the OS.
        let _ = self.inner.store.sync_wal();
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("memtable_bytes", &self.memtable_bytes())
            .field("levels", &self.level_file_counts())
            .finish()
    }
}

impl DbInner {
    /// The write-path attribution handles, or `None` when
    /// `Options::write_path_attribution` is off — this single branch is
    /// all a disabled stage-recording site costs.
    #[inline]
    pub(crate) fn write_path(&self) -> Option<&crate::stats::WritePathMetrics> {
        if self.opts.write_path_attribution {
            Some(&self.metrics.write_path)
        } else {
            None
        }
    }

    /// Read at a snapshot time: `Pm → P'm → Pd` (Algorithm 1's get).
    pub(crate) fn get_at(&self, key: &[u8], max_ts: u64) -> Result<Option<Vec<u8>>> {
        let pm = self.pm.load();
        if let Some((_, value)) = pm.get_latest(key, max_ts) {
            return Ok(value);
        }
        if let Some(prev) = self.pm_prev.load() {
            if let Some((_, value)) = prev.get_latest(key, max_ts) {
                return Ok(value);
            }
        }
        match self.store.get(key, max_ts)? {
            Some((_, ValueKind::Put, value)) => Ok(Some(value)),
            Some((_, ValueKind::Delete, _)) | None => Ok(None),
        }
    }

    /// Latest version's `(ts, value)` of `key` across all components
    /// (the read step of Algorithm 3). The boolean is `true` when the
    /// version lives in the *mutable* memtable.
    pub(crate) fn read_latest_versioned(&self, key: &[u8]) -> Result<VersionedRead> {
        let max_ts = lsm_storage::format::MAX_TS;
        let pm = self.pm.load();
        if let Some((ts, value)) = pm.get_latest(key, max_ts) {
            return Ok((Some((ts, value)), true));
        }
        if let Some(prev) = self.pm_prev.load() {
            if let Some((ts, value)) = prev.get_latest(key, max_ts) {
                return Ok((Some((ts, value)), false));
            }
        }
        match self.store.get(key, max_ts)? {
            Some((ts, ValueKind::Put, value)) => Ok((Some((ts, Some(value))), false)),
            Some((ts, ValueKind::Delete, _)) => Ok((Some((ts, None)), false)),
            None => Ok((None, false)),
        }
    }

    /// Combined admission debt right now (see
    /// [`crate::AdmissionOptions::debt`]): memtable fill fraction
    /// (amplified while a flush is in flight) vs. L0 file count.
    pub(crate) fn admission_debt(&self) -> f64 {
        let fill = self.pm.load().memory_usage() as f64 / self.opts.memtable_bytes as f64;
        let l0_files = self.store.current_version().num_files(0);
        let flush_pending =
            self.flush_pending.load(Ordering::Acquire) || self.pm_prev.load().is_some();
        self.opts.admission.debt(fill, l0_files, flush_pending)
    }

    /// The admission ladder's current position plus its lifetime
    /// counters, for `clsm-doctor`.
    pub(crate) fn admission_state(&self) -> crate::admission::AdmissionState {
        let debt = self.admission_debt();
        let a = &self.opts.admission;
        crate::admission::AdmissionState {
            enabled: a.enabled,
            debt,
            current_delay: a.delay_for(debt),
            low_watermark: a.low_watermark,
            high_watermark: a.high_watermark,
            delayed_writes: self.metrics.admission_delayed_writes.get(),
            delay_ns: self.metrics.admission_delay_ns.get(),
            hard_stalls: self.metrics.admission_hard_stalls.get(),
        }
    }

    /// Graduated write admission: the entry gate every write path runs
    /// before touching the memtable.
    ///
    /// Replaces the §5.3 all-or-nothing stall with a two-step ladder:
    /// first the proportional delay ramp (debt between the watermarks
    /// charges each write a sub-millisecond sleep, slowing the
    /// aggregate ingest rate so the flush catches up *before* the
    /// memtable fills), then — only if the cliff is reached anyway —
    /// the hard stall. On the open rung (low debt, no full memtable)
    /// this is three relaxed loads and no clock read.
    pub(crate) fn admit_write(&self) {
        let delay = if self.opts.admission.enabled {
            self.opts.admission.delay_for(self.admission_debt())
        } else {
            std::time::Duration::ZERO
        };
        if delay.is_zero()
            && (self.pm.load().memory_usage() < self.opts.memtable_bytes
                || self.pm_prev.load().is_none())
        {
            return;
        }
        let began = Instant::now();
        if !delay.is_zero() {
            std::thread::sleep(delay);
            self.metrics.admission_delayed_writes.inc();
            self.metrics
                .admission_delay_ns
                .add(u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX));
        }
        self.stall_if_needed();
        if let Some(wp) = self.write_path() {
            wp.rec_admission(u64::try_from(began.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Write stall (§5.3): when `Cm` is full while `C'm` is still being
    /// merged, client writes wait for the merge to finish. The ladder's
    /// last rung — with the ramp on, a write should rarely get here.
    pub(crate) fn stall_if_needed(&self) {
        let mut stalled_at: Option<Instant> = None;
        let mut stall_span = None;
        loop {
            let full = self.pm.load().memory_usage() >= self.opts.memtable_bytes;
            if !full || self.pm_prev.load().is_none() {
                break;
            }
            if stalled_at.is_none() {
                stalled_at = Some(Instant::now());
                stall_span = Some(T_WRITE_STALL.span());
                self.metrics.write_stalls.inc();
                self.metrics.admission_hard_stalls.inc();
            }
            let mut guard = self.work_mutex.lock();
            // Re-check under the lock to avoid missing the wakeup: the
            // flush worker notifies `work_cv` under `work_mutex` after
            // every flush attempt (success or error), and `Drop` sets
            // `shutdown` before notifying under the same mutex — so a
            // plain wait (no timed backstop) cannot hang.
            if self.pm.load().memory_usage() >= self.opts.memtable_bytes
                && self.pm_prev.load().is_some()
                && !self.shutdown.load(Ordering::Acquire)
            {
                self.work_cv.wait(&mut guard);
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
        }
        drop(stall_span);
        if let Some(began) = stalled_at {
            self.metrics
                .write_stall_ns
                .add(u64::try_from(began.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Whether any background work is pending or in flight (the
    /// quiescence condition, inverted).
    fn is_busy(&self) -> bool {
        self.flush_pending.load(Ordering::Acquire)
            || !self.pm.load().is_empty()
            || self.pm_prev.load().is_some()
            || self.store.needs_compaction()
    }

    pub(crate) fn maybe_schedule_flush(&self) {
        if self.pm.load().memory_usage() >= self.opts.memtable_bytes {
            self.maybe_schedule_flush_force();
        }
    }

    fn maybe_schedule_flush_force(&self) {
        if !self.flush_pending.swap(true, Ordering::AcqRel) {
            let _g = self.work_mutex.lock();
            self.work_cv.notify_all();
        }
    }

    /// The snapshot-GC watermark: the oldest live snapshot, or "now"
    /// when none exists (future snapshots always exceed the current
    /// counter).
    pub(crate) fn gc_watermark(&self) -> u64 {
        self.snapshots
            .oldest()
            .unwrap_or_else(|| self.oracle.current_time())
    }

    /// The merge of `C'm` into `Cd` with its beforeMerge/afterMerge
    /// hooks (Algorithm 1 lines 8–17).
    fn flush_once(&self) -> Result<bool> {
        // --- beforeMerge: swing the memory pointers under the
        // exclusive lock. Order matters for lock-free readers:
        // P'm must point at the old data before Pm stops doing so.
        let (imm, new_wal, watermark) = {
            // The span brackets both the wait for readers to drain and
            // the hold itself — together they are the merge's write-path
            // interference, the quantity §3.1 argues must stay tiny.
            let _span = T_BEFORE_MERGE.span();
            let _excl = self.lock.lock_exclusive();
            let old = self.pm.load();
            if old.is_empty() {
                return Ok(false);
            }
            let _rotate = T_MEMTABLE_ROTATE.span_with(old.memory_usage() as u64);
            self.pm_prev.store(Some(Arc::clone(&old)));
            self.pm.store(self.opts.memtable_kind.create());
            // New WAL: records of the immutable memtable live only in
            // older logs, which die when the flush commits.
            let new_wal = self.store.rotate_wal()?;
            // Read the snapshot list under the exclusive lock (§3.2.1).
            let watermark = self.gc_watermark();
            (old, new_wal, watermark)
        };

        // --- merge (no locks held): stream C'm into L0.
        let mut iter = Arc::clone(&imm).internal_iter();
        let max_ts = imm.max_ts();
        self.store
            .flush_memtable(&mut iter, watermark, max_ts, new_wal)?;

        // --- afterMerge: Pd was already swung inside the store (data
        // is reachable via the disk pointer); dropping P'm last keeps
        // the read order `Pm → P'm → Pd` gap-free throughout.
        {
            let _span = T_AFTER_MERGE.span();
            let _excl = self.lock.lock_exclusive();
            self.pm_prev.store(None);
        }
        self.metrics.flushes.inc();
        Ok(true)
    }
}

/// Background flush worker: waits for a scheduled flush, runs the
/// merge, then wakes stalled writers.
fn flush_worker(inner: Arc<DbInner>) {
    loop {
        {
            let mut guard = inner.work_mutex.lock();
            while !inner.flush_pending.load(Ordering::Acquire)
                && !inner.shutdown.load(Ordering::Acquire)
            {
                inner
                    .work_cv
                    .wait_for(&mut guard, std::time::Duration::from_millis(50));
            }
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match inner.flush_once() {
            Ok(_) => {}
            Err(_e) => {
                // The store records WAL poisoning; surface via
                // `compact_to_quiescence` / next sync. Back off to
                // avoid a hot error loop.
                std::thread::sleep(std::time::Duration::from_millis(10));
                // A mid-flush failure can leave `P'm` parked. Stalled
                // writers wait (untimed) for that flush to finish, so
                // keep retrying rather than going back to sleep with
                // `flush_pending` cleared.
                if inner.pm_prev.load().is_some() && !inner.shutdown.load(Ordering::Acquire) {
                    continue;
                }
            }
        }
        inner.flush_pending.store(false, Ordering::Release);
        let _g = inner.work_mutex.lock();
        inner.work_cv.notify_all();
    }
}

/// Background compaction worker. Several may run concurrently (the
/// RocksDB-style configuration of §5.3); disjoint input claims keep
/// them from colliding.
fn compaction_worker(inner: Arc<DbInner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let did_work = if inner.store.needs_compaction() {
            match inner.store.maybe_compact(inner.gc_watermark()) {
                Ok(ran) => {
                    if ran {
                        inner.metrics.compactions.inc();
                    }
                    ran
                }
                Err(_) => false,
            }
        } else {
            false
        };
        if did_work {
            // Quiescence waiters watch `needs_compaction`; tell them a
            // compaction just retired.
            let _g = inner.work_mutex.lock();
            inner.work_cv.notify_all();
        } else {
            let mut guard = inner.work_mutex.lock();
            if !inner.shutdown.load(Ordering::Acquire) {
                inner
                    .work_cv
                    .wait_for(&mut guard, std::time::Duration::from_millis(20));
            }
        }
    }
}
