//! The memory component: a lock-free skip list plus bookkeeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clsm_skiplist::{Conflict, OwnedCursor, SkipList};
use lsm_storage::format::ValueKind;
use lsm_storage::iter::InternalIterator;

/// A memory component (`Cm` or `C'm` in the paper): entries live in an
/// arena-backed lock-free skip list and are multi-versioned by
/// timestamp.
pub struct Memtable {
    list: Arc<SkipList>,
    /// Highest timestamp inserted (for the flush edit's `last_ts`).
    max_ts: AtomicU64,
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Memtable {
            list: Arc::new(SkipList::new()),
            max_ts: AtomicU64::new(0),
        }
    }

    /// Inserts a versioned entry (`None` value = deletion marker).
    pub fn insert(&self, key: &[u8], ts: u64, value: Option<&[u8]>) {
        self.list.insert(key, ts, value);
        self.max_ts.fetch_max(ts, Ordering::Relaxed);
    }

    /// Inserts iff no newer version of `key` exists (see
    /// [`SkipList::insert_as_newest`]); writers that stamp before
    /// inserting use this and re-stamp on conflict.
    pub fn insert_as_newest(
        &self,
        key: &[u8],
        ts: u64,
        value: Option<&[u8]>,
    ) -> Result<(), Conflict> {
        let r = self.list.insert_as_newest(key, ts, value);
        if r.is_ok() {
            self.max_ts.fetch_max(ts, Ordering::Relaxed);
        }
        r
    }

    /// Algorithm 3's conditional insert (see
    /// [`SkipList::insert_if_latest`]).
    pub fn insert_if_latest(
        &self,
        key: &[u8],
        ts: u64,
        value: Option<&[u8]>,
        expected_latest: Option<u64>,
    ) -> Result<(), Conflict> {
        let r = self.list.insert_if_latest(key, ts, value, expected_latest);
        if r.is_ok() {
            self.max_ts.fetch_max(ts, Ordering::Relaxed);
        }
        r
    }

    /// Newest version of `key` with timestamp ≤ `max_ts`:
    /// `Some((ts, None))` is a tombstone, outer `None` means absent.
    pub fn get_latest(&self, key: &[u8], max_ts: u64) -> Option<(u64, Option<&[u8]>)> {
        self.list.get_latest(key, max_ts)
    }

    /// Approximate bytes consumed.
    pub fn memory_usage(&self) -> usize {
        self.list.memory_usage()
    }

    /// Returns `true` when nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Number of entries (versions).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Highest timestamp inserted so far.
    pub fn max_ts(&self) -> u64 {
        self.max_ts.load(Ordering::Relaxed)
    }

    /// An [`InternalIterator`] over the memtable, holding it alive.
    pub fn internal_iter(self: &Arc<Self>) -> MemtableIter {
        MemtableIter {
            cursor: self.list.owned_cursor(),
            _table: Arc::clone(self),
        }
    }
}

impl std::fmt::Debug for Memtable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memtable")
            .field("entries", &self.len())
            .field("bytes", &self.memory_usage())
            .finish()
    }
}

/// Iterator adapter: skip-list cursor → [`InternalIterator`].
///
/// Holds an `Arc` to both the list (via the cursor) and the memtable,
/// which is the paper's per-component reference count keeping `C'm`
/// alive while scans read it.
pub struct MemtableIter {
    cursor: OwnedCursor,
    _table: Arc<Memtable>,
}

impl InternalIterator for MemtableIter {
    fn valid(&self) -> bool {
        self.cursor.valid()
    }

    fn seek_to_first(&mut self) {
        self.cursor.seek_to_first();
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        self.cursor.seek(user_key, ts);
    }

    fn next(&mut self) {
        self.cursor.advance();
    }

    fn user_key(&self) -> &[u8] {
        self.cursor.key()
    }

    fn ts(&self) -> u64 {
        self.cursor.ts()
    }

    fn kind(&self) -> ValueKind {
        match self.cursor.value() {
            Some(_) => ValueKind::Put,
            None => ValueKind::Delete,
        }
    }

    fn value(&self) -> &[u8] {
        self.cursor.value().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memtable_roundtrip_and_iter() {
        let mt = Arc::new(Memtable::new());
        mt.insert(b"b", 2, Some(b"vb"));
        mt.insert(b"a", 1, Some(b"va"));
        mt.insert(b"a", 3, None); // delete
        assert_eq!(mt.len(), 3);
        assert_eq!(mt.max_ts(), 3);
        assert_eq!(mt.get_latest(b"a", 10), Some((3, None)));
        assert_eq!(mt.get_latest(b"a", 2), Some((1, Some(&b"va"[..]))));

        let mut it = mt.internal_iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push((it.user_key().to_vec(), it.ts(), it.kind()));
            it.next();
        }
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), 3, ValueKind::Delete),
                (b"a".to_vec(), 1, ValueKind::Put),
                (b"b".to_vec(), 2, ValueKind::Put),
            ]
        );
    }

    #[test]
    fn iter_keeps_memtable_alive() {
        let mt = Arc::new(Memtable::new());
        mt.insert(b"k", 1, Some(b"v"));
        let mut it = mt.internal_iter();
        drop(mt);
        it.seek_to_first();
        assert!(it.valid());
        assert_eq!(it.value(), b"v");
    }
}
