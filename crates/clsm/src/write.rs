//! The leader/follower group-commit write pipeline.
//!
//! Every mutation submitted through [`crate::Db::write`] (when
//! `Options::group_commit` is on) becomes a [`WriteRequest`] pushed
//! onto a lock-free [`CombiningQueue`]. One writer — the *leader*,
//! elected with a single CAS on a flag — drains the queue and commits
//! the whole group on everyone's behalf:
//!
//! 1. one contiguous *block* of timestamps from the oracle
//!    ([`clsm_util::oracle::TimestampOracle::get_ts_block`]: one
//!    `fetch_add` + one `Active`-set registration for N writes, with
//!    the Figure 4 rollback extended to blocks),
//! 2. all memtable inserts,
//! 3. one coalesced WAL append through the logging queue's
//!    group-commit seam,
//! 4. one publish pass, then wake every follower.
//!
//! The per-writer commit path pays the oracle CAS, the WAL enqueue,
//! and the publish once *per write*; the pipeline pays each once *per
//! group*, which is what restores monotone write scaling under
//! contention (ROADMAP item 1).
//!
//! # Graceful degradation: withdrawal
//!
//! Combining only pays when a leader actually absorbs concurrent
//! requests. When it can't — one core, so leader and follower never
//! run simultaneously; or a leader parked in flush admission — a
//! follower that spends [`SPIN_YIELDS`] reschedules unserviced
//! *withdraws*: it takes its own ops back (the `Mutex<Option<Vec<..>>>`
//! around them is the claim token, so the withdrawal races the
//! leader's drain-time claim and exactly one side wins) and commits
//! them through the ordinary per-writer path, which is protocol-
//! compatible with a concurrently committing leader. The pipeline thus
//! costs at most a bounded wait over the per-writer baseline, while
//! still combining whenever the scheduler lets writers overlap. Note
//! the WAL's logging queue group-commits fsyncs below this layer, so
//! durability batching survives degradation too.
//!
//! # Lock mode
//!
//! A group containing only single-op requests commits under the
//! **shared** lock, exactly like individual puts: each insert uses
//! `insert_as_newest`, and an insert that loses to a concurrent RMW
//! abandons its block slot (a legal timestamp hole) and restamps with
//! a fresh `getTS` until it lands newest — the paper's put loop,
//! amortized. A group containing any multi-op batch commits under the
//! **exclusive** lock instead: restamping one entry of an atomic batch
//! under the shared lock could publish the batch with non-contiguous
//! visibility, letting a snapshot observe it torn. Exclusive mode
//! excludes RMW entirely, so plain inserts suffice and every entry
//! keeps its block stamp (the same coarse-grained choice §4 makes for
//! batches).
//!
//! # Durability
//!
//! WAL-logged entries of the whole group coalesce into **one** log
//! payload, so a torn WAL tail drops the group atomically and no
//! logical batch ever recovers partially. Requests with `sync` wait
//! for one group-committed fsync issued after the lock is released;
//! requests with `disable_wal` skip the log (and recovery) entirely.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use clsm_util::combine::CombiningQueue;
use clsm_util::error::Result;
use clsm_util::trace::{now_ns, TraceId};

use lsm_storage::format::WriteRecord;
use lsm_storage::wal::SyncMode;

use crate::db::DbInner;

/// Flight-recorder span on the leader: one committed group (argument =
/// number of operations in the group).
static T_COMMIT_LEADER: TraceId = TraceId::new("clsm.commit.leader");
/// Flight-recorder span on a follower: waiting for a leader to commit
/// its request.
static T_COMMIT_FOLLOWER: TraceId = TraceId::new("clsm.commit.follower_wait");
/// Flight-recorder event: a follower withdrew its request and fell
/// back to the per-writer commit path.
static T_COMMIT_WITHDRAW: TraceId = TraceId::new("clsm.commit.withdraw");

/// One batch body: `(key, Some(value))` puts, `(key, None)` deletes.
type BatchOps = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// One writer's pending mutation, parked on the combining queue until
/// a leader commits it (or the owner withdraws it — see [`submit`]).
pub(crate) struct WriteRequest {
    /// The batch body: `(key, Some(value))` puts, `(key, None)` deletes.
    ///
    /// Doubles as the *claim token*: whoever `take`s the ops — the
    /// leader at drain time, or the owner withdrawing — owns the
    /// commit. A drained request whose ops are already gone was
    /// withdrawn and is simply dropped.
    ops: Mutex<Option<BatchOps>>,
    /// Effective sync: the caller's `WriteOptions::sync` or the store's
    /// `sync_writes` mode.
    sync: bool,
    /// Skip the WAL for this request.
    disable_wal: bool,
    /// The commit outcome, set exactly once by the committing leader.
    done: Mutex<Option<Result<()>>>,
    cv: Condvar,
    /// Attribution stamp: `trace::now_ns()` at queue push, or 0 when
    /// `Options::write_path_attribution` is off. The leader diffs it at
    /// claim time into `write_path.queue_wait_ns`.
    enqueued_at: u64,
    /// Attribution stamp: set by [`complete`](Self::complete) just
    /// before the outcome is published; the submitter diffs it on
    /// observing `done` into `write_path.wake_ns`. Only written when
    /// `enqueued_at != 0`, so the disabled path stays clock-free.
    completed_at: AtomicU64,
}

impl WriteRequest {
    fn complete(&self, result: Result<()>) {
        if self.enqueued_at != 0 {
            self.completed_at.store(now_ns(), Ordering::Relaxed);
        }
        let mut done = self.done.lock();
        *done = Some(result);
        self.cv.notify_all();
    }
}

/// The per-[`crate::Db`] pipeline state: the combining queue plus the
/// leader-election flag.
pub(crate) struct CommitPipeline {
    queue: CombiningQueue<Arc<WriteRequest>>,
    /// `true` while some writer is draining the queue as leader.
    leader: AtomicBool,
}

impl CommitPipeline {
    pub(crate) fn new() -> Self {
        CommitPipeline {
            queue: CombiningQueue::new(),
            leader: AtomicBool::new(false),
        }
    }

    /// Tries to become leader with nobody waiting — the solo fast
    /// path's election. On success the caller commits its own batch
    /// directly and MUST afterwards call [`drain_as_leader`] to serve
    /// anyone who queued behind the held flag and release it. (A push
    /// can land between the emptiness check and the CAS; the mandatory
    /// drain afterwards is what keeps that writer from waiting a full
    /// withdrawal cycle.)
    pub(crate) fn try_lead_solo(&self) -> bool {
        self.queue.is_empty()
            && self
                .leader
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }
}

impl std::fmt::Debug for CommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitPipeline")
            .field("leader", &self.leader.load(Ordering::Relaxed))
            .field("queue_empty", &self.queue.is_empty())
            .finish()
    }
}

/// What happened to a batch handed to [`submit`].
pub(crate) enum Submit {
    /// A leader (possibly the calling thread) committed the batch.
    Done(Result<()>),
    /// The owner withdrew the batch before any leader claimed it: the
    /// caller gets its ops back and must commit them through the
    /// per-writer path. This is the pipeline's graceful degradation —
    /// when the leader can't service us promptly (few cores, or a
    /// leader parked in a slow flush admission), committing solo at
    /// per-writer cost beats idling in the queue.
    Withdrawn(BatchOps),
}

/// Submits one validated, non-empty batch to the pipeline and blocks
/// until a leader (possibly this thread) commits it — or until the
/// wait stops being worth it, in which case the batch is withdrawn and
/// returned to the caller (see [`Submit::Withdrawn`]).
pub(crate) fn submit(inner: &DbInner, ops: BatchOps, sync: bool, disable_wal: bool) -> Submit {
    debug_assert!(!ops.is_empty());
    let req = Arc::new(WriteRequest {
        ops: Mutex::new(Some(ops)),
        sync,
        disable_wal,
        done: Mutex::new(None),
        cv: Condvar::new(),
        enqueued_at: if inner.write_path().is_some() {
            now_ns()
        } else {
            0
        },
        completed_at: AtomicU64::new(0),
    });
    inner.pipeline.queue.push(Arc::clone(&req));
    // Whether this thread ever held the leader flag — splits committed
    // requests into `db.commit.leader_requests` vs `follower_requests`.
    let mut was_leader = false;
    loop {
        if let Some(result) = req.done.lock().take() {
            return committed(inner, &req, was_leader, result);
        }
        if inner
            .pipeline
            .leader
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // Leader: drain and commit groups until the queue is empty.
            // Our own request is in some group — ours or an earlier
            // leader's — so the done-check above terminates the loop.
            was_leader = true;
            run_leader(inner);
            continue;
        }
        // Follower: a leader exists; give it a few reschedules to
        // commit us. Each yield cedes the CPU to the leader, so on a
        // loaded machine the result is usually ready within one or two
        // and the follower never parks (a parked follower costs two
        // context switches per write: the futex sleep and the wake).
        let _span = T_COMMIT_FOLLOWER.span();
        for _ in 0..SPIN_YIELDS {
            std::thread::yield_now();
            if let Some(result) = req.done.lock().take() {
                return committed(inner, &req, was_leader, result);
            }
            if !inner.pipeline.leader.load(Ordering::Acquire) {
                // The leader stepped down without committing us (we
                // pushed after its final drain); re-run the election.
                break;
            }
        }
        if let Some(result) = req.done.lock().take() {
            return committed(inner, &req, was_leader, result);
        }
        // The leader isn't servicing us. Try to withdraw: taking our
        // own ops back races the leader's drain-time claim, and the
        // `Mutex<Option<_>>` arbitrates — exactly one side wins, so
        // the batch commits exactly once.
        if let Some(ops) = req.ops.lock().take() {
            T_COMMIT_WITHDRAW.instant(1);
            inner.metrics.write_path.withdrawn.inc();
            return Submit::Withdrawn(ops);
        }
        // A leader claimed our ops between the spin and the withdraw,
        // so completion is guaranteed — park until it arrives. The
        // timed wait is only a backstop against a missed notify; the
        // claiming leader always signals the condvar.
        let mut done = req.done.lock();
        loop {
            if let Some(result) = done.take() {
                drop(done);
                return committed(inner, &req, was_leader, result);
            }
            req.cv.wait_for(&mut done, Duration::from_millis(1));
        }
    }
}

/// Books a leader-committed request: bumps the leader/follower split
/// and, with attribution on, records the wake stage (outcome published
/// → submitter observed it).
fn committed(inner: &DbInner, req: &WriteRequest, was_leader: bool, result: Result<()>) -> Submit {
    if was_leader {
        inner.metrics.write_path.leader_requests.inc();
    } else {
        inner.metrics.write_path.follower_requests.inc();
    }
    if let Some(wp) = inner.write_path() {
        let completed_at = req.completed_at.load(Ordering::Relaxed);
        if completed_at != 0 {
            wp.rec_wake(now_ns().saturating_sub(completed_at));
        }
    }
    Submit::Done(result)
}

/// How many times a follower yields to the leader before withdrawing
/// its request. Yields are cheap relative to a futex sleep + wake, and
/// a leader that is going to service us at all typically does so
/// within the first couple.
const SPIN_YIELDS: usize = 8;

/// A claimed request: the Arc (for completion) plus its taken ops.
type Claimed = (Arc<WriteRequest>, BatchOps);

/// Claims every drained request's ops; a request whose ops are already
/// gone was withdrawn by its owner and is dropped. With attribution
/// on, this is the leader-claim stage boundary: each claimed request's
/// time on the queue lands in `write_path.queue_wait_ns`.
fn claim(inner: &DbInner, drained: Vec<Arc<WriteRequest>>) -> Vec<Claimed> {
    let claimed_at = inner.write_path().map(|wp| (wp, now_ns()));
    drained
        .into_iter()
        .filter_map(|req| {
            let ops = req.ops.lock().take();
            ops.map(|ops| {
                if let Some((wp, now)) = &claimed_at {
                    if req.enqueued_at != 0 {
                        wp.rec_queue_wait(now.saturating_sub(req.enqueued_at));
                    }
                }
                (req, ops)
            })
        })
        .collect()
}

/// Entry for the solo fast path in [`crate::Db::write`]: the caller
/// won the leader CAS with an empty queue and committed its own batch
/// through the per-writer path; this drains whoever queued behind the
/// held flag, then steps down.
pub(crate) fn drain_as_leader(inner: &DbInner) {
    run_leader(inner);
}

/// Drains and commits groups until the queue is empty, then steps down.
fn run_leader(inner: &DbInner) {
    // Requests a shared-mode commit popped but could not absorb (see
    // `commit_group`'s late-arrival pass); they head the next group.
    let mut carry: Vec<Claimed> = Vec::new();
    loop {
        let group = if carry.is_empty() {
            let drained = inner.pipeline.queue.pop_all();
            if drained.is_empty() {
                inner.pipeline.leader.store(false, Ordering::Release);
                // A producer may have pushed between the drain and the
                // release and seen the flag still set (so it parked as
                // a follower); re-claim leadership for it.
                if inner.pipeline.queue.is_empty()
                    || inner
                        .pipeline
                        .leader
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                {
                    return;
                }
                continue;
            }
            claim(inner, drained)
        } else {
            std::mem::take(&mut carry)
        };
        if group.is_empty() {
            continue;
        }
        carry = commit_group(inner, group);
    }
}

/// Upper bound on operations absorbed into one group, so a steady
/// stream of late arrivals can't stretch a single commit (and the
/// latency of its sync waiters) without bound.
const MAX_GROUP_OPS: u64 = 4096;

/// Commits one claimed group: stamps, inserts, logs, publishes, syncs,
/// and wakes every member. While it holds the lock it also absorbs
/// *late arrivals* — requests pushed mid-commit (on few cores: while
/// the leader was preempted mid-commit) join this group's WAL append
/// and publish pass instead of paying their own, which is where the
/// combining actually comes from on a loaded machine.
///
/// Returns the late arrivals it popped but could not absorb (multi-op
/// batches need the exclusive lock a shared-mode commit doesn't hold);
/// the caller commits them as the next group.
fn commit_group(inner: &DbInner, mut group: Vec<Claimed>) -> Vec<Claimed> {
    let mut total: u64 = group.iter().map(|(_, ops)| ops.len() as u64).sum();
    let _span = T_COMMIT_LEADER.span_with(total);
    // One admission check for the whole group (the stall-aware
    // scheduling seam: the leader is the single point where a slowed
    // or stalled store backpressures every queued writer at once).
    inner.admit_write();

    let any_multi = group.iter().any(|(_, ops)| ops.len() > 1);
    let mut leftover: Vec<Claimed> = Vec::new();

    let wp = inner.write_path();
    let mut records: Vec<WriteRecord> = Vec::with_capacity(total as usize);
    let log_result: Result<()>;
    {
        // See the module docs: shared mode for single-op-only groups
        // (coexists with RMW via restamp-on-conflict), exclusive when
        // any atomic multi-op batch is aboard.
        let (_shared, _excl);
        if any_multi {
            _excl = Some(inner.lock.lock_exclusive());
            _shared = None;
        } else {
            _shared = Some(inner.lock.lock_shared());
            _excl = None;
        }
        let pm = inner.pm.load();
        // Timestamp blocks (one per stamping pass) and restamped
        // (conflict-retried) singles; all published after the log
        // append, exactly like the per-writer path.
        let mut blocks = Vec::with_capacity(1);
        let mut extra_stamps = Vec::new();
        // Stamps and inserts `group[from..]`, appending WAL records.
        let mut insert_tail = |group: &[Claimed], from: usize, records: &mut Vec<WriteRecord>| {
            let count: u64 = group[from..].iter().map(|(_, ops)| ops.len() as u64).sum();
            let stamp_start = if wp.is_some() { now_ns() } else { 0 };
            let block = inner.oracle.get_ts_block(count);
            // Stamp stage ends / memtable stage begins here; restamp
            // retries inside the insert loop below are charged to the
            // memtable stage (they are rare conflict fallout).
            let mem_start = if let Some(wp) = wp {
                let t = now_ns();
                wp.rec_stamp(t.saturating_sub(stamp_start));
                t
            } else {
                0
            };
            let mut slot = 0u64;
            for (req, ops) in &group[from..] {
                for (key, value) in ops {
                    let ts = block.ts(slot);
                    slot += 1;
                    let final_ts = if any_multi {
                        // Exclusive: no concurrent writer can exist, so
                        // the block stamp is trivially the newest
                        // version.
                        pm.insert(key, ts, value.as_deref());
                        ts
                    } else {
                        match pm.insert_as_newest(key, ts, value.as_deref()) {
                            Ok(()) => ts,
                            // Lost to a concurrent RMW: abandon the
                            // block slot (a legal timestamp hole) and
                            // restamp fresh until the insert lands
                            // newest.
                            Err(_conflict) => loop {
                                let stamp = inner.oracle.get_ts();
                                match pm.insert_as_newest(key, stamp.ts, value.as_deref()) {
                                    Ok(()) => {
                                        let ts = stamp.ts;
                                        extra_stamps.push(stamp);
                                        break ts;
                                    }
                                    Err(_conflict) => inner.oracle.publish(stamp),
                                }
                            },
                        }
                    };
                    if !req.disable_wal {
                        records.push(match value {
                            Some(v) => WriteRecord::put(final_ts, key.clone(), v.clone()),
                            None => WriteRecord::delete(final_ts, key.clone()),
                        });
                    }
                }
            }
            if let Some(wp) = wp {
                wp.rec_memtable(now_ns().saturating_sub(mem_start));
            }
            blocks.push(block);
        };
        insert_tail(&group, 0, &mut records);
        // Late-arrival absorption: keep draining while writers are
        // pushing. A shared-mode commit can only take single-op lates
        // (a multi-op batch needs the exclusive lock); those go to
        // `leftover` and the absorption stops, since anything popped
        // after them must also wait its turn to keep FIFO-ish order.
        while total < MAX_GROUP_OPS && leftover.is_empty() {
            let late = claim(inner, inner.pipeline.queue.pop_all());
            if late.is_empty() {
                break;
            }
            let mut absorbed = Vec::with_capacity(late.len());
            let mut late_iter = late.into_iter();
            for (req, ops) in late_iter.by_ref() {
                if any_multi || ops.len() == 1 {
                    absorbed.push((req, ops));
                } else {
                    leftover.push((req, ops));
                    break;
                }
            }
            leftover.extend(late_iter);
            if absorbed.is_empty() {
                break;
            }
            total += absorbed
                .iter()
                .map(|(_, ops)| ops.len() as u64)
                .sum::<u64>();
            let from = group.len();
            group.extend(absorbed);
            insert_tail(&group, from, &mut records);
        }
        // One coalesced payload for the whole group: recovery sees the
        // group all-or-nothing, so no member's logical batch can ever
        // come back torn.
        log_result = if records.is_empty() {
            Ok(())
        } else {
            let wal_start = if wp.is_some() { now_ns() } else { 0 };
            let r = inner.store.log(&records, SyncMode::Async);
            if let Some(wp) = wp {
                wp.rec_wal_enqueue(now_ns().saturating_sub(wal_start));
            }
            r
        };
        // Publish only after every insert is visible — a snapshot
        // granted now sees the whole group. Publish even on a failed
        // log append: an unpublished stamp would wedge snapshot
        // creation forever (the WAL is poisoned and surfaces the error
        // on its own).
        let publish_start = if wp.is_some() { now_ns() } else { 0 };
        for stamp in extra_stamps {
            inner.oracle.publish(stamp);
        }
        for block in blocks {
            inner.oracle.publish_block(block);
        }
        if let Some(wp) = wp {
            wp.rec_publish(now_ns().saturating_sub(publish_start));
        }
    }

    // One group-committed fsync for every sync requester, outside the
    // lock so it never blocks the merge hooks.
    let any_sync = group.iter().any(|(req, _)| req.sync);
    let sync_result = if any_sync && log_result.is_ok() {
        if let Some(wp) = wp {
            // The durable-ack timestamp is taken on the logger thread
            // right after the fsync, so the stage excludes the time it
            // took to wake this leader back up.
            let sync_start = now_ns();
            inner.store.sync_wal_timed().map(|durable_ns| {
                wp.rec_durable(durable_ns.saturating_sub(sync_start));
            })
        } else {
            inner.store.sync_wal()
        }
    } else {
        Ok(())
    };

    // Group-shape bookkeeping (always on; feeds the doctor's
    // group-commit section): one group, `group.len()` member requests,
    // `total` operations.
    inner.metrics.write_path.groups.inc();
    inner
        .metrics
        .write_path
        .group_requests
        .add(group.len() as u64);
    inner.metrics.write_path.group_size.record(total);

    for (req, _) in &group {
        let result = if let (Err(e), false) = (&log_result, req.disable_wal) {
            Err(e.clone())
        } else if req.sync {
            sync_result.clone()
        } else {
            Ok(())
        };
        req.complete(result);
    }
    inner.maybe_schedule_flush();
    leftover
}
