//! Atomic write batches (builder API).
//!
//! LevelDB exposes `WriteBatch`; cLSM "continues to block" for batches
//! by taking the shared-exclusive lock in exclusive mode (§4). This
//! module provides the ergonomic builder over
//! [`Db::write_batch`](crate::Db::write_batch).

use clsm_util::error::Result;

use crate::db::Db;

/// A buffered set of writes applied atomically.
///
/// # Examples
///
/// ```
/// use clsm::{Db, Options, WriteBatch};
///
/// let dir = std::env::temp_dir().join(format!("clsm-batch-doc-{}", std::process::id()));
/// let db = Db::open(&dir, Options::small_for_tests()).unwrap();
/// let mut batch = WriteBatch::new();
/// batch.put(b"a", b"1").put(b"b", b"2").delete(b"c");
/// db.write(batch).unwrap();
/// assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
/// drop(db);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    pub(crate) ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Adds a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push((key.to_vec(), Some(value.to_vec())));
        self
    }

    /// Adds a delete.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.ops.push((key.to_vec(), None));
        self
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clears the batch for reuse.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

impl Db {
    /// Applies a [`WriteBatch`] atomically: all operations receive
    /// consecutive timestamps under the exclusive lock, so no snapshot
    /// or scan can observe a partial batch.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        self.write_batch(&batch.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Options;

    #[test]
    fn builder_accumulates_and_clears() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(b"x", b"1").delete(b"y").put(b"z", b"2");
        assert_eq!(b.len(), 3);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = std::env::temp_dir().join(format!(
            "clsm-batch-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.stats().puts, 0);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
