//! Atomic write batches — re-exported from [`clsm_kv`].
//!
//! The batch type used to live here as a cLSM-only builder; it now
//! lives in the `clsm-kv` crate so the [`KvStore`](crate::KvStore)
//! trait, the baselines, and cLSM all share one mutation vocabulary.
//! Apply a batch with [`Db::write`](crate::Db::write):
//!
//! ```
//! use clsm::{Db, Options, WriteBatch, WriteOptions};
//!
//! let dir = std::env::temp_dir().join(format!("clsm-batch-doc-{}", std::process::id()));
//! let db = Db::open(&dir, Options::small_for_tests()).unwrap();
//! let mut batch = WriteBatch::new();
//! batch.put(b"a".as_slice(), b"1".as_slice());
//! batch.put(b"b".as_slice(), b"2".as_slice());
//! batch.delete(b"c".as_slice());
//! db.write(batch, &WriteOptions::new()).unwrap();
//! assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
//! drop(db);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub use clsm_kv::{WriteBatch, WriteOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Db, Options};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "clsm-batch-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = tmpdir("empty");
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        db.write(WriteBatch::new(), &WriteOptions::new()).unwrap();
        assert_eq!(db.stats().puts, 0);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn contradictory_options_are_rejected() {
        let dir = tmpdir("opts");
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"k".as_slice(), b"v".as_slice());
        let bad = WriteOptions {
            sync: true,
            disable_wal: true,
        };
        assert!(db.write(batch, &bad).is_err());
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
