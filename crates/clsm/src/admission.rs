//! Graduated write admission: the stall-aware replacement for the
//! §5.3 cliff.
//!
//! The paper's write stall is all-or-nothing: writers run at full
//! speed until `Pm` fills while `P'm` is still merging, then block
//! outright. "On Performance Stability in LSM-based Storage Systems"
//! (Luo & Carey) shows that exactly this shape produces throughput
//! sawtooths and p999 spikes, and that a *graduated* slowdown removes
//! them; bLSM's spring-and-gear throttle (reproduced in
//! `baselines::blsm_like`) is the primitive form of the idea.
//!
//! This module computes a **debt** signal in `[0, ∞)` from three
//! inputs —
//!
//! 1. memtable fill fraction (`Pm` bytes / `memtable_bytes`),
//! 2. L0 file count against [`AdmissionOptions::l0_slowdown_files`],
//! 3. the pending-flush flag (`P'm` present), which shrinks the
//!    remaining cushion and therefore *amplifies* the memtable term —
//!
//! and maps it through a proportional delay ramp:
//!
//! ```text
//! delay
//!   ^
//! max_delay ············································╭────────
//!   |                                                  /
//!   |                                                 /   hard
//!   |                                                /    stall
//!   |                                               /     beyond
//!   0 ──────────────────────────────────────────────      (§5.3)
//!     0              low_watermark       high_watermark   debt →
//! ```
//!
//! Below the low watermark writes are untouched. Between the
//! watermarks each write pays a delay growing linearly to
//! [`AdmissionOptions::max_delay`]. The hard stall still exists — a
//! full memtable with a merge in flight physically cannot accept
//! writes — but with the ramp active, writers are slowed *before* the
//! cliff, the flush wins the race, and the stall never engages (the
//! `admission.hard_stalls` counter is the proof either way).

use std::time::Duration;

/// Configuration of the graduated admission controller
/// (field of [`crate::Options`]).
#[derive(Debug, Clone)]
pub struct AdmissionOptions {
    /// Run the delay ramp (default `true`). Off, only the §5.3 hard
    /// stall remains — the ablation baseline, and what the admission
    /// kill-test runs to reproduce the cliff.
    pub enabled: bool,
    /// Debt below this → no delay (default 0.7).
    pub low_watermark: f64,
    /// Debt at/above this → the full [`Self::max_delay`] per write
    /// (default 0.95); between the watermarks the delay ramps
    /// linearly.
    pub high_watermark: f64,
    /// Per-write delay at the high watermark (default 1 ms — two
    /// orders of magnitude below a typical flush, so the ramp slows
    /// writers without ever looking like a stall itself).
    pub max_delay: Duration,
    /// L0 file count that alone counts as debt 1.0 (default 8 =
    /// twice the default `l0_compaction_trigger`: compaction debt
    /// becomes admission debt only once compaction is clearly
    /// behind).
    pub l0_slowdown_files: usize,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        AdmissionOptions {
            enabled: true,
            low_watermark: 0.7,
            high_watermark: 0.95,
            max_delay: Duration::from_millis(1),
            l0_slowdown_files: 8,
        }
    }
}

/// Extra memtable-fill debt charged while a flush is in flight: the
/// cushion between "memtable full" and "writers blocked" is gone, so
/// the same fill fraction is more urgent.
pub(crate) const PENDING_FLUSH_DEBT: f64 = 0.15;

impl AdmissionOptions {
    /// Combines the raw signals into the debt scalar.
    pub fn debt(&self, memtable_fill: f64, l0_files: usize, flush_pending: bool) -> f64 {
        let mem = if flush_pending {
            memtable_fill + PENDING_FLUSH_DEBT
        } else {
            memtable_fill
        };
        let l0 = if self.l0_slowdown_files == 0 {
            0.0
        } else {
            l0_files as f64 / self.l0_slowdown_files as f64
        };
        mem.max(l0)
    }

    /// The per-write delay the ramp prescribes at `debt`.
    pub fn delay_for(&self, debt: f64) -> Duration {
        if !self.enabled || debt <= self.low_watermark {
            return Duration::ZERO;
        }
        if debt >= self.high_watermark {
            return self.max_delay;
        }
        let span = self.high_watermark - self.low_watermark;
        if span <= 0.0 {
            return self.max_delay;
        }
        self.max_delay.mul_f64((debt - self.low_watermark) / span)
    }
}

/// A point-in-time view of the admission ladder, for `clsm-doctor`.
#[derive(Debug, Clone)]
pub struct AdmissionState {
    /// Whether the delay ramp is active.
    pub enabled: bool,
    /// Current combined debt.
    pub debt: f64,
    /// The delay the ramp would charge a write right now.
    pub current_delay: Duration,
    /// Configured low watermark.
    pub low_watermark: f64,
    /// Configured high watermark.
    pub high_watermark: f64,
    /// Writes delayed by the ramp so far (`admission.delayed_writes`).
    pub delayed_writes: u64,
    /// Total ramp delay charged so far (`admission.delay_ns`).
    pub delay_ns: u64,
    /// Writes that hit the §5.3 hard stall (`admission.hard_stalls`).
    pub hard_stalls: u64,
}

impl AdmissionState {
    /// The rung of the ladder the controller currently sits on.
    pub fn ladder_rung(&self) -> &'static str {
        if !self.enabled {
            "disabled"
        } else if self.debt >= self.high_watermark {
            "stall"
        } else if self.debt > self.low_watermark {
            "slowdown"
        } else {
            "open"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_is_zero_below_low_watermark() {
        let a = AdmissionOptions::default();
        assert_eq!(a.delay_for(0.0), Duration::ZERO);
        assert_eq!(a.delay_for(a.low_watermark), Duration::ZERO);
    }

    #[test]
    fn ramp_is_proportional_between_watermarks() {
        let a = AdmissionOptions {
            low_watermark: 0.5,
            high_watermark: 1.0,
            max_delay: Duration::from_millis(10),
            ..Default::default()
        };
        assert_eq!(a.delay_for(0.75), Duration::from_millis(5));
        assert_eq!(a.delay_for(1.0), Duration::from_millis(10));
        assert_eq!(a.delay_for(2.0), Duration::from_millis(10));
    }

    #[test]
    fn disabled_ramp_never_delays() {
        let a = AdmissionOptions {
            enabled: false,
            ..Default::default()
        };
        assert_eq!(a.delay_for(10.0), Duration::ZERO);
    }

    #[test]
    fn debt_takes_the_worst_signal() {
        let a = AdmissionOptions {
            l0_slowdown_files: 8,
            ..Default::default()
        };
        // Memtable dominates.
        assert!((a.debt(0.9, 0, false) - 0.9).abs() < 1e-9);
        // L0 dominates: 12 files / 8 = 1.5.
        assert!((a.debt(0.1, 12, false) - 1.5).abs() < 1e-9);
        // Pending flush amplifies the memtable term.
        assert!((a.debt(0.9, 0, true) - (0.9 + PENDING_FLUSH_DEBT)).abs() < 1e-9);
    }

    #[test]
    fn ladder_rungs() {
        let mk = |debt: f64, enabled: bool| AdmissionState {
            enabled,
            debt,
            current_delay: Duration::ZERO,
            low_watermark: 0.7,
            high_watermark: 0.95,
            delayed_writes: 0,
            delay_ns: 0,
            hard_stalls: 0,
        };
        assert_eq!(mk(0.2, true).ladder_rung(), "open");
        assert_eq!(mk(0.8, true).ladder_rung(), "slowdown");
        assert_eq!(mk(1.2, true).ladder_rung(), "stall");
        assert_eq!(mk(1.2, false).ladder_rung(), "disabled");
    }
}
