//! Stall watchdog: a sampling thread that watches for the write-path
//! pathologies the paper's evaluation warns about and surfaces them as
//! structured events.
//!
//! Four detectors run on every sample:
//!
//! - **Write stall** (§5.3): `Pm` is full while `P'm` is still being
//!   merged, so client writes are blocked behind the flush.
//! - **Sustained slowdown**: the graduated admission ramp (see
//!   [`crate::AdmissionOptions`]) has been charging writers delays for
//!   several consecutive samples. Deliberately distinct from the stall
//!   detector: a slowdown episode means backpressure is *working*
//!   (writers throttled, no cliff), a stall episode means it wasn't
//!   enough.
//! - **Exclusive hold**: the shared-exclusive lock has been held in
//!   exclusive mode longer than a threshold. `beforeMerge`/`afterMerge`
//!   are supposed to be "a few pointer swings" (§3.1); a long hold
//!   means something is wrong (or a test injected one).
//! - **Active-set pressure**: the oracle's `Active` set is close to its
//!   slot capacity, i.e. `getSnap`'s min-scan is about to get expensive
//!   and `getTS` may soon fail to find a free slot.
//!
//! Each detector is *episode-deduplicated*: one event per continuous
//! episode, not one per sample, so a 2-second stall produces a single
//! [`StallEvent`] rather than two hundred. Events land in three places:
//! monotonic counters in the metrics registry (`watchdog.*`), instant
//! events in the flight recorder (`watchdog.*`), and a small in-memory
//! ring readable via [`Db::stall_events`] — which is what
//! `clsm-doctor` prints as its verdicts.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use clsm_util::metrics::{Counter, MetricsRegistry};
use clsm_util::trace::{self, TraceId};

use crate::db::{Db, DbInner};

/// Flight-recorder instants, one per detector; the argument carries the
/// episode magnitude (ns held, memtable bytes, Active-set size).
static T_WRITE_STALL: TraceId = TraceId::new("watchdog.write_stall");
static T_SUSTAINED_SLOWDOWN: TraceId = TraceId::new("watchdog.sustained_slowdown");
static T_EXCL_HOLD: TraceId = TraceId::new("watchdog.exclusive_hold");
static T_ACTIVE_PRESSURE: TraceId = TraceId::new("watchdog.active_set_pressure");

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Writes are stalled: memtable full while the previous one is
    /// still being merged (§5.3).
    WriteStall,
    /// The admission ramp charged writers delays for at least
    /// [`WatchdogOptions::slowdown_windows`] consecutive samples.
    SustainedSlowdown,
    /// The shared-exclusive lock was held exclusively for longer than
    /// [`WatchdogOptions::exclusive_hold_threshold`].
    ExclusiveHold,
    /// The oracle's `Active` set reached
    /// [`WatchdogOptions::active_set_threshold`] entries.
    ActiveSetPressure,
}

impl std::fmt::Display for StallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StallKind::WriteStall => "write-stall",
            StallKind::SustainedSlowdown => "sustained-slowdown",
            StallKind::ExclusiveHold => "exclusive-hold",
            StallKind::ActiveSetPressure => "active-set-pressure",
        };
        f.write_str(s)
    }
}

/// One detected stall episode.
#[derive(Debug, Clone)]
pub struct StallEvent {
    /// Which detector fired.
    pub kind: StallKind,
    /// Trace-clock nanoseconds at detection (same clock as the flight
    /// recorder, so events line up with trace spans).
    pub at_ns: u64,
    /// Kind-dependent magnitude: nanoseconds held (`ExclusiveHold`),
    /// memtable bytes (`WriteStall`), or set size
    /// (`ActiveSetPressure`).
    pub magnitude: u64,
    /// Human-readable one-liner for reports.
    pub detail: String,
}

/// Configuration of the stall watchdog (field of [`crate::Options`]).
#[derive(Debug, Clone)]
pub struct WatchdogOptions {
    /// Run the sampling thread (default `true`; the thread is idle
    /// ~100% of the time on a healthy database).
    pub enabled: bool,
    /// Sampling cadence. Must be nonzero; episodes shorter than one
    /// interval can be missed — that is the deal with sampling.
    pub interval: Duration,
    /// Exclusive holds at least this long become
    /// [`StallKind::ExclusiveHold`] events.
    pub exclusive_hold_threshold: Duration,
    /// `Active` set sizes at least this become
    /// [`StallKind::ActiveSetPressure`] events. Sized against
    /// [`crate::Options::active_slots`] (default 256), ¾ full is the
    /// default alarm line.
    pub active_set_threshold: usize,
    /// How many consecutive samples with ramp-delay growth make a
    /// [`StallKind::SustainedSlowdown`] episode. At the default 10 ms
    /// interval, 3 means "admission has been throttling for ≥ 30 ms".
    pub slowdown_windows: usize,
    /// How many recent events [`Db::stall_events`] retains.
    pub history: usize,
}

impl Default for WatchdogOptions {
    fn default() -> Self {
        WatchdogOptions {
            enabled: true,
            interval: Duration::from_millis(10),
            exclusive_hold_threshold: Duration::from_millis(5),
            active_set_threshold: 192,
            slowdown_windows: 3,
            history: 64,
        }
    }
}

/// Shared sink the sampler reports into; owned by `DbInner`.
#[derive(Debug)]
pub(crate) struct Watchdog {
    opts: WatchdogOptions,
    recent: Mutex<VecDeque<StallEvent>>,
    /// `watchdog.stall_events` — all kinds combined.
    total: Arc<Counter>,
    write_stalls: Arc<Counter>,
    sustained_slowdowns: Arc<Counter>,
    exclusive_holds: Arc<Counter>,
    active_pressure: Arc<Counter>,
}

impl Watchdog {
    /// Registers the watchdog counters and builds the event sink.
    pub(crate) fn new(opts: WatchdogOptions, registry: &MetricsRegistry) -> Watchdog {
        Watchdog {
            recent: Mutex::new(VecDeque::with_capacity(opts.history.min(1024))),
            total: registry.counter("watchdog.stall_events"),
            write_stalls: registry.counter("watchdog.write_stall_events"),
            sustained_slowdowns: registry.counter("watchdog.sustained_slowdown_events"),
            exclusive_holds: registry.counter("watchdog.exclusive_hold_events"),
            active_pressure: registry.counter("watchdog.active_set_pressure_events"),
            opts,
        }
    }

    /// Records one episode in all three sinks (metrics, trace, ring).
    fn report(&self, kind: StallKind, magnitude: u64, detail: String) {
        self.total.inc();
        match kind {
            StallKind::WriteStall => {
                self.write_stalls.inc();
                T_WRITE_STALL.instant(magnitude);
            }
            StallKind::SustainedSlowdown => {
                self.sustained_slowdowns.inc();
                T_SUSTAINED_SLOWDOWN.instant(magnitude);
            }
            StallKind::ExclusiveHold => {
                self.exclusive_holds.inc();
                T_EXCL_HOLD.instant(magnitude);
            }
            StallKind::ActiveSetPressure => {
                self.active_pressure.inc();
                T_ACTIVE_PRESSURE.instant(magnitude);
            }
        }
        let event = StallEvent {
            kind,
            at_ns: trace::now_ns(),
            magnitude,
            detail,
        };
        let mut recent = self.recent.lock();
        if recent.len() >= self.opts.history.max(1) {
            recent.pop_front();
        }
        recent.push_back(event);
    }

    /// Copy of the retained event ring, oldest first.
    pub(crate) fn recent(&self) -> Vec<StallEvent> {
        self.recent.lock().iter().cloned().collect()
    }
}

/// Per-thread detector state: one flag/baseline per detector so each
/// continuous episode reports exactly once.
#[derive(Debug, Default)]
struct DetectorState {
    /// `excl_since_ns` of the last hold already reported (a new hold
    /// gets a new start stamp, resetting the dedup).
    reported_excl_since: u64,
    /// The write-stall condition held at the previous sample.
    write_stall_active: bool,
    /// Baseline of the `db.write_stalls` counter, to catch stalls that
    /// begin and end between two samples.
    write_stalls_seen: u64,
    /// The pressure condition held at the previous sample.
    active_pressure_active: bool,
    /// Baseline of `admission.delay_ns` at the previous sample.
    admission_delay_seen: u64,
    /// `admission.delay_ns` where the current slowdown run began.
    slowdown_episode_base: u64,
    /// Consecutive samples (so far) with ramp-delay growth.
    slowdown_samples: usize,
    /// The current slowdown run was already reported.
    slowdown_active: bool,
}

/// The sampling loop; runs on the `clsm-watchdog` thread until
/// shutdown. Sleeps in short ticks so `Db::drop` never waits more than
/// ~10 ms for the join.
pub(crate) fn watchdog_worker(inner: Arc<DbInner>) {
    let interval = inner.opts.watchdog.interval;
    let tick = interval
        .min(Duration::from_millis(10))
        .max(Duration::from_micros(100));
    let mut state = DetectorState {
        write_stalls_seen: inner.metrics.write_stalls.get(),
        admission_delay_seen: inner.metrics.admission_delay_ns.get(),
        ..DetectorState::default()
    };
    let mut slept = Duration::ZERO;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(tick);
        slept += tick;
        if slept < interval {
            continue;
        }
        slept = Duration::ZERO;
        sample(&inner, &mut state);
    }
}

/// One watchdog sample: run all four detectors.
fn sample(inner: &DbInner, state: &mut DetectorState) {
    let wd = &inner.watchdog;
    let opts = &wd.opts;

    // Detector 1: long exclusive holds. Keyed by the hold's start stamp
    // so one long hold reports once even across many samples, while a
    // fresh hold re-arms the detector.
    if let Some(since) = inner.lock.exclusive_held_since_ns() {
        let held_ns = trace::now_ns().saturating_sub(since);
        if held_ns >= opts.exclusive_hold_threshold.as_nanos() as u64
            && since != state.reported_excl_since
        {
            state.reported_excl_since = since;
            wd.report(
                StallKind::ExclusiveHold,
                held_ns,
                format!(
                    "exclusive lock held {:.1?} so far (threshold {:.1?})",
                    Duration::from_nanos(held_ns),
                    opts.exclusive_hold_threshold
                ),
            );
        }
    }

    // Detector 2: writes stalled behind the flush. Two signals: the
    // stall condition itself (memtable full + merge in flight), and the
    // `db.write_stalls` counter for episodes shorter than one interval.
    let memtable_bytes = inner.pm.load().memory_usage();
    let condition = memtable_bytes >= inner.opts.memtable_bytes && inner.pm_prev.load().is_some();
    let stalls_now = inner.metrics.write_stalls.get();
    if (condition || stalls_now > state.write_stalls_seen) && !state.write_stall_active {
        let detail = if condition {
            format!(
                "writes stalled behind flush (memtable {memtable_bytes} / {} bytes, \
                 immutable memtable still merging)",
                inner.opts.memtable_bytes
            )
        } else {
            format!(
                "writes stalled behind flush ({} stall(s) since last sample, already resolved)",
                stalls_now - state.write_stalls_seen
            )
        };
        wd.report(StallKind::WriteStall, memtable_bytes as u64, detail);
    }
    state.write_stall_active = condition;
    state.write_stalls_seen = stalls_now;

    // Detector 3: sustained slowdown — the admission ramp charged
    // writers delays across several consecutive samples. Fed by the
    // `admission.delay_ns` counter rather than the instantaneous debt,
    // so a steady trickle of throttled writes is what triggers it (a
    // single delayed write between two samples is not an episode).
    let delay_ns_now = inner.metrics.admission_delay_ns.get();
    if delay_ns_now > state.admission_delay_seen {
        if state.slowdown_samples == 0 {
            state.slowdown_episode_base = state.admission_delay_seen;
        }
        state.slowdown_samples += 1;
    } else {
        state.slowdown_samples = 0;
        state.slowdown_active = false;
    }
    state.admission_delay_seen = delay_ns_now;
    if state.slowdown_samples >= opts.slowdown_windows.max(1) && !state.slowdown_active {
        state.slowdown_active = true;
        let charged_ns = delay_ns_now - state.slowdown_episode_base;
        wd.report(
            StallKind::SustainedSlowdown,
            charged_ns,
            format!(
                "admission ramp throttling writers for {} consecutive samples \
                 ({:.1?} of delay charged; debt {:.2})",
                state.slowdown_samples,
                Duration::from_nanos(charged_ns),
                inner.admission_debt()
            ),
        );
    }

    // Detector 4: Active-set growth (stuck or very slow writers make
    // `getSnap` wait on an old minimum, §3.2). When the oracle is
    // shared across shards this is oracle-wide state, so only the
    // primary shard's watchdog reports it — otherwise one episode
    // would produce N identical events.
    if !inner.oracle_primary {
        return;
    }
    let active_len = inner.oracle.active().len();
    let pressure = active_len >= opts.active_set_threshold;
    if pressure && !state.active_pressure_active {
        wd.report(
            StallKind::ActiveSetPressure,
            active_len as u64,
            format!(
                "oracle Active set at {active_len} entries (threshold {}, slots {})",
                opts.active_set_threshold, inner.opts.active_slots
            ),
        );
    }
    state.active_pressure_active = pressure;
}

impl Db {
    /// Recent stall episodes flagged by the watchdog, oldest first.
    ///
    /// Empty when the watchdog is disabled or nothing pathological has
    /// happened. The ring keeps the last
    /// [`WatchdogOptions::history`] events.
    pub fn stall_events(&self) -> Vec<StallEvent> {
        self.inner.watchdog.recent()
    }

    /// Test-only fault injection: holds the database's shared-exclusive
    /// lock exclusively for `hold`, blocking writers and the merge
    /// hooks, so the watchdog's exclusive-hold detector can be
    /// exercised deterministically (see
    /// `SharedExclusiveLock::hold_exclusive_for`). Never call this on a
    /// production path.
    #[doc(hidden)]
    pub fn inject_exclusive_hold(&self, hold: Duration) {
        self.inner.lock.hold_exclusive_for(hold);
    }
}
