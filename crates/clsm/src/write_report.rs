//! Write-path latency attribution report: a typed view over the
//! `write_path.*` histograms and `db.commit.*` counters.
//!
//! The report is extracted from a [`MetricsSnapshot`] rather than read
//! from live handles, so one code path serves both a standalone
//! [`crate::Db`] (its own snapshot) and a [`crate::ShardedDb`] (the
//! bucket-merged snapshot across all shards) — and any snapshot that
//! was serialized to `*.metrics.json` and read back elsewhere.

use clsm_util::metrics::{HistogramSummary, MetricsSnapshot};

/// The write-path stages in pipeline order: `(short name, metric
/// name)`. A given write visits a subset — `admission` exists only for
/// writes the admission ramp delayed (or hard-stalled),
/// `queue_wait`/`wake` only for pipelined requests, `durable` only for
/// sync writes, and group stages are recorded once per committed
/// group — so per-stage counts legitimately differ.
pub const WRITE_PATH_STAGES: &[(&str, &str)] = &[
    ("admission", "write_path.admission_ns"),
    ("queue_wait", "write_path.queue_wait_ns"),
    ("stamp", "write_path.stamp_ns"),
    ("memtable", "write_path.memtable_ns"),
    ("wal_enqueue", "write_path.wal_enqueue_ns"),
    ("publish", "write_path.publish_ns"),
    ("durable", "write_path.durable_ns"),
    ("wake", "write_path.wake_ns"),
];

/// One stage's latency summary.
#[derive(Debug, Clone)]
pub struct WriteStage {
    /// Short stage name (first column of [`WRITE_PATH_STAGES`]).
    pub name: &'static str,
    /// The stage histogram at snapshot time (nanoseconds).
    pub summary: HistogramSummary,
}

/// Per-stage write-path latency breakdown plus the commit-mode
/// distribution, built by [`WritePathReport::from_snapshot`].
#[derive(Debug, Clone)]
pub struct WritePathReport {
    /// Stages present in the snapshot, in pipeline order. Empty for
    /// snapshots of systems that don't register the attribution
    /// histograms (e.g. baseline stores).
    pub stages: Vec<WriteStage>,
    /// End-to-end `Db::write` latency (`write_path.total_ns`).
    pub total: Option<HistogramSummary>,
    /// Operations per leader-committed group (`write_path.group_size`).
    pub group_size: Option<HistogramSummary>,
    /// Requests committed on the solo fast path.
    pub solo: u64,
    /// Pipelined requests whose submitter became the leader.
    pub leader_requests: u64,
    /// Pipelined requests committed by another thread's leader.
    pub follower_requests: u64,
    /// Pipelined requests withdrawn and committed by their own writer.
    pub withdrawn: u64,
    /// Groups committed by leaders.
    pub groups: u64,
    /// Requests committed as group members (= leader + follower at
    /// quiescence).
    pub group_requests: u64,
}

impl WritePathReport {
    /// Extracts the report from any metrics snapshot (a `Db`'s own, a
    /// `ShardedDb`'s merged one, or a deserialized `*.metrics.json`).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> WritePathReport {
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        WritePathReport {
            stages: WRITE_PATH_STAGES
                .iter()
                .filter_map(|&(name, metric)| {
                    snap.histograms.get(metric).map(|summary| WriteStage {
                        name,
                        summary: summary.clone(),
                    })
                })
                .collect(),
            total: snap.histograms.get("write_path.total_ns").cloned(),
            group_size: snap.histograms.get("write_path.group_size").cloned(),
            solo: counter("db.commit.solo"),
            leader_requests: counter("db.commit.leader_requests"),
            follower_requests: counter("db.commit.follower_requests"),
            withdrawn: counter("db.commit.withdrawn"),
            groups: counter("db.commit.groups"),
            group_requests: counter("db.commit.group_requests"),
        }
    }

    /// Whether the snapshot carried any write-path data at all (stage
    /// samples, an end-to-end sample, or any commit-mode activity).
    pub fn has_samples(&self) -> bool {
        self.stages.iter().any(|s| s.summary.count > 0)
            || self.total.as_ref().is_some_and(|t| t.count > 0)
            || self.solo + self.leader_requests + self.follower_requests + self.withdrawn > 0
    }

    /// Fraction of committed requests that withdrew from the pipeline
    /// and fell back to the per-writer path (0 when nothing committed).
    pub fn withdraw_rate(&self) -> f64 {
        let committed = self.solo + self.leader_requests + self.follower_requests + self.withdrawn;
        if committed == 0 {
            0.0
        } else {
            self.withdrawn as f64 / committed as f64
        }
    }

    /// Renders stable, greppable text lines (the format `clsm-doctor`
    /// and the bench driver print).
    pub fn render(&self) -> String {
        fn line(name: &str, h: &HistogramSummary) -> String {
            format!(
                "  {name:<12} count={} mean={:.0} p50={} p90={} p99={} p999={} max={}\n",
                h.count, h.mean, h.p50, h.p90, h.p99, h.p999, h.max
            )
        }
        let mut out = String::from("write path stages (ns):\n");
        for stage in &self.stages {
            out.push_str(&line(stage.name, &stage.summary));
        }
        if let Some(total) = &self.total {
            out.push_str(&line("total", total));
        }
        out.push_str(&format!(
            "commit modes: solo={} leader={} follower={} withdrawn={} \
             groups={} grouped={} (withdraw rate {:.2}%)\n",
            self.solo,
            self.leader_requests,
            self.follower_requests,
            self.withdrawn,
            self.groups,
            self.group_requests,
            self.withdraw_rate() * 100.0
        ));
        if let Some(gs) = &self.group_size {
            out.push_str(&format!(
                "group size (ops): count={} mean={:.1} p50={} p90={} max={}\n",
                gs.count, gs.mean, gs.p50, gs.p90, gs.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clsm_util::metrics::MetricsRegistry;

    #[test]
    fn report_extracts_stages_and_counters() {
        let reg = MetricsRegistry::new();
        reg.histogram("write_path.stamp_ns").record(100);
        reg.histogram("write_path.memtable_ns").record(200);
        reg.histogram("write_path.total_ns").record(400);
        reg.histogram("write_path.group_size").record(3);
        reg.counter("db.commit.solo").add(5);
        reg.counter("db.commit.withdrawn").add(1);
        reg.counter("db.commit.leader_requests").add(2);

        let report = WritePathReport::from_snapshot(&reg.snapshot());
        assert!(report.has_samples());
        assert_eq!(report.solo, 5);
        assert_eq!(report.withdrawn, 1);
        // Only registered stages appear, in pipeline order.
        let names: Vec<_> = report.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["stamp", "memtable"]);
        assert_eq!(report.total.as_ref().unwrap().count, 1);
        // withdraw rate = 1 / (5 + 2 + 0 + 1)
        assert!((report.withdraw_rate() - 0.125).abs() < 1e-9);

        let text = report.render();
        assert!(text.contains("stamp"));
        assert!(text.contains("commit modes: solo=5"));
        assert!(text.contains("group size (ops): count=1"));
    }

    #[test]
    fn empty_snapshot_has_no_samples() {
        let report = WritePathReport::from_snapshot(&MetricsRegistry::new().snapshot());
        assert!(!report.has_samples());
        assert!(report.stages.is_empty());
        assert_eq!(report.withdraw_rate(), 0.0);
    }
}
