//! cLSM: scalable concurrency for log-structured data stores.
//!
//! This crate is a from-scratch Rust implementation of the algorithm in
//! *Scaling Concurrent Log-Structured Data Stores* (Golan-Gueta,
//! Bortnikov, Hillel, Keidar — EuroSys 2015). It layers the paper's
//! concurrency control over the [`lsm_storage`] disk substrate:
//!
//! - **Non-blocking gets** ([`Db::get`]): reads traverse the mutable
//!   memtable `Pm`, the immutable memtable `P'm`, and the disk
//!   component `Pd` through RCU-protected pointers; no lock, ever.
//! - **Mostly non-blocking puts** ([`Db::put`]): writes hold a
//!   writer-preferring shared-exclusive lock in *shared* mode while
//!   they insert into the lock-free memtable; the lock is taken
//!   exclusively only in the short `beforeMerge`/`afterMerge` hooks
//!   around a memtable flush (Algorithm 1).
//! - **Serializable snapshot scans** ([`Db::snapshot`]): Algorithm 2's
//!   timestamp oracle (`timeCounter`, `Active` set, `snapTime`) gives
//!   every snapshot a time below every in-flight write.
//! - **Non-blocking read-modify-write** ([`Db::read_modify_write`]):
//!   Algorithm 3's optimistic conflict detection in the skip list.
//! - **Group-committed writes** ([`Db::write`]): every mutation is a
//!   [`WriteBatch`] applied under [`WriteOptions`]; a leader/follower
//!   pipeline (the `write` module) commits whole groups of queued
//!   writes with one timestamp-block acquisition, one coalesced WAL
//!   append, and one publish pass.
//!
//! # Examples
//!
//! ```
//! use clsm::{Db, Options};
//!
//! let dir = std::env::temp_dir().join(format!("clsm-doc-{}", std::process::id()));
//! let db = Db::open(&dir, Options::small_for_tests()).unwrap();
//! db.put(b"user:1", b"alice").unwrap();
//! assert_eq!(db.get(b"user:1").unwrap(), Some(b"alice".to_vec()));
//!
//! let snap = db.snapshot().unwrap();
//! db.put(b"user:1", b"bob").unwrap();
//! // The snapshot still sees the old state.
//! assert_eq!(snap.get(b"user:1").unwrap(), Some(b"alice".to_vec()));
//! assert_eq!(db.get(b"user:1").unwrap(), Some(b"bob".to_vec()));
//! drop(db);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

mod admission;
mod batch;
mod db;
mod doctor;
mod kv_impl;
mod mem_component;
mod memtable;
mod options;
mod rmw;
mod sharded;
mod snapshot;
mod stats;
mod watchdog;
mod write;
mod write_report;

pub use admission::{AdmissionOptions, AdmissionState};
pub use batch::{WriteBatch, WriteOptions};
pub use db::Db;
pub use doctor::{watch_dashboard_header, watch_dashboard_line, DoctorReport, LevelGeometry};
pub use mem_component::{LockedMemtable, MemComponent, MemtableKind, VersionedValue};
pub use memtable::Memtable;
pub use options::{Options, OptionsBuilder};
pub use rmw::{RmwDecision, RmwResult};
pub use sharded::{partition_of, ShardedDb, ShardedDoctorReport, ShardedIter, ShardedSnapshot};
pub use snapshot::{Snapshot, SnapshotIter};
pub use stats::StatsSnapshot;
pub use watchdog::{StallEvent, StallKind, WatchdogOptions};
pub use write_report::{WritePathReport, WriteStage, WRITE_PATH_STAGES};

pub use clsm_kv::{KvSnapshot, KvStore, ScanRange};
pub use clsm_util::error::{Error, Result};
pub use clsm_util::metrics::{HistogramSummary, MetricsSnapshot};
pub use clsm_util::ratelimit::{IoRateLimiter, IoRateLimiterStats};
pub use lsm_storage::compaction::CompactionPolicyKind;
pub use lsm_storage::store::RecoveryReport;
