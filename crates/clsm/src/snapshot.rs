//! Consistent snapshots, scans, and range queries (§3.2).

use std::sync::Arc;

use clsm_util::error::Result;

use lsm_storage::format::ValueKind;
use lsm_storage::iter::{InternalIterator, MergingIterator};
use lsm_storage::version::Version;

use crate::db::DbInner;

/// A consistent read-only view of the database at one point in time.
///
/// A snapshot handle is "simply a timestamp" (§3.2.1): reads through it
/// return, for every key, the newest version written at or before that
/// time. While the handle is live, the merge process keeps every
/// version a read at this time could need; dropping the handle releases
/// them for garbage collection.
pub struct Snapshot {
    inner: Arc<DbInner>,
    ts: u64,
    /// Whether dropping this handle unregisters `ts` from the snapshot
    /// registry. `false` for per-shard *views* of one cross-shard
    /// snapshot: the registration belongs to the sharded handle, which
    /// unregisters exactly once for all shards.
    owns_registration: bool,
}

impl Snapshot {
    pub(crate) fn new(inner: Arc<DbInner>, ts: u64) -> Snapshot {
        Snapshot {
            inner,
            ts,
            owns_registration: true,
        }
    }

    /// A read-only view at `ts` that does *not* own a registry entry —
    /// the caller guarantees `ts` stays registered (and thus GC-safe)
    /// for this view's lifetime.
    pub(crate) fn new_view(inner: Arc<DbInner>, ts: u64) -> Snapshot {
        Snapshot {
            inner,
            ts,
            owns_registration: false,
        }
    }

    /// The snapshot's timestamp.
    pub fn timestamp(&self) -> u64 {
        self.ts
    }

    /// Reads `key` as of this snapshot ("snapshot read", §3.2.2).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get_at(key, self.ts)
    }

    /// Iterates every live key-value pair in key order.
    pub fn iter(&self) -> Result<SnapshotIter> {
        self.scan_from(None, None)
    }

    /// Range query over `[start, end)` in key order (§3.2.2). Pass
    /// `end = None` for an unbounded upper end.
    pub fn range(&self, start: &[u8], end: Option<&[u8]>) -> Result<SnapshotIter> {
        self.scan_from(Some(start), end)
    }

    /// Range query driven by any standard range expression over
    /// byte-vector keys (`a..b`, `a..=b`, `a..`, `..b`, `..`).
    ///
    /// Bounds are normalized to the `[start, end)` form the merging
    /// iterator understands: an excluded start and an included end both
    /// shift by the key's immediate lexicographic successor (`key ++
    /// 0x00`).
    pub fn range_bounds<R>(&self, range: R) -> Result<SnapshotIter>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let (start, end) = bounds_to_keys(&range);
        self.scan_from(start.as_deref(), end.as_deref())
    }

    /// Returns up to `limit` live pairs with keys in `range`, in key
    /// order (the evaluation harness's scan shape, Figure 7b). Accepts
    /// any standard range expression or a [`clsm_kv::ScanRange`].
    pub fn scan<R>(&self, range: R, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let mut out = Vec::with_capacity(limit.min(1024));
        for item in self.range_bounds(range)? {
            // Check before pushing so `limit = 0` yields nothing.
            if out.len() >= limit {
                break;
            }
            out.push(item?);
        }
        Ok(out)
    }

    fn scan_from(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Result<SnapshotIter> {
        // Gather component iterators newest-first: Pm, P'm, then the
        // disk levels. Each child holds its component alive (`Arc`s on
        // memtables, the pinned `Version` for the files) — the paper's
        // per-component reference counts.
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(self.inner.pm.load().internal_iter());
        if let Some(prev) = self.inner.pm_prev.load() {
            children.push(prev.internal_iter());
        }
        let (version, disk_iters) = self.inner.store.version_iterators()?;
        children.extend(disk_iters);

        let mut merged = MergingIterator::new(children);
        match start {
            Some(key) => merged.seek(key, self.ts),
            None => merged.seek_to_first(),
        }
        Ok(SnapshotIter {
            merged,
            snap_ts: self.ts,
            end: end.map(<[u8]>::to_vec),
            _version: version,
            _snapshot: None,
            last_key: None,
            finished: false,
        })
    }

    /// Consumes the snapshot into a full-scan iterator that keeps the
    /// handle (and thus the GC registration) alive for its duration.
    pub fn into_iter_owned(self) -> Result<SnapshotIter> {
        let mut it = self.iter()?;
        it._snapshot = Some(self);
        Ok(it)
    }

    /// Consumes the snapshot into a [`Snapshot::range_bounds`] iterator
    /// that keeps the handle alive for its duration (see
    /// [`Snapshot::into_iter_owned`]).
    pub fn into_range_bounds_owned<R>(self, range: R) -> Result<SnapshotIter>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let mut it = self.range_bounds(range)?;
        it._snapshot = Some(self);
        Ok(it)
    }
}

/// Normalizes a `RangeBounds` expression to the internal
/// `(inclusive start, exclusive end)` pair. Byte strings have an exact
/// immediate successor under lexicographic order — `key ++ 0x00` — so
/// excluded starts and included ends are representable without loss.
pub(crate) fn bounds_to_keys<R>(range: &R) -> (Option<Vec<u8>>, Option<Vec<u8>>)
where
    R: std::ops::RangeBounds<Vec<u8>>,
{
    use std::ops::Bound;
    fn successor(key: &[u8]) -> Vec<u8> {
        let mut s = Vec::with_capacity(key.len() + 1);
        s.extend_from_slice(key);
        s.push(0);
        s
    }
    let start = match range.start_bound() {
        Bound::Included(k) => Some(k.clone()),
        Bound::Excluded(k) => Some(successor(k)),
        Bound::Unbounded => None,
    };
    let end = match range.end_bound() {
        Bound::Included(k) => Some(successor(k)),
        Bound::Excluded(k) => Some(k.clone()),
        Bound::Unbounded => None,
    };
    (start, end)
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        if self.owns_registration {
            self.inner.snapshots.unregister(self.ts);
        }
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("ts", &self.ts).finish()
    }
}

/// Iterator over a snapshot's live key-value pairs.
///
/// Implements the `next` filtering of §3.2.1: versions newer than the
/// snapshot time are skipped, only the newest remaining version of each
/// key is surfaced, and deletion markers hide their key.
///
/// # Semantics
///
/// - **Consistency**: every pair yielded is the newest version of its
///   key at the snapshot's timestamp. Writes committed after the
///   snapshot was taken are never visible, no matter how long the
///   iteration runs or how much flushing/compaction happens meanwhile.
/// - **Order**: keys come out in strictly increasing lexicographic
///   byte order; each key appears at most once.
/// - **Liveness**: the iterator never blocks writers — it reads the
///   memory components through RCU pointers and pins the on-disk file
///   set (a `Version`) for its whole lifetime. Holding an iterator
///   therefore also holds disk space: dropped files are only reclaimed
///   once the last iterator over them goes away.
/// - **GC interaction**: when the iterator owns its snapshot handle
///   (`Db::iter` / `Db::range`), the handle stays registered until the
///   iterator is dropped, so the versions it may still need survive
///   merges. An expired handle (see `Db::expire_snapshots`) voids this
///   guarantee.
/// - **Errors**: I/O or corruption surfaces as an `Err` item; after
///   the first `Err` (or the end of the range) the iterator is fused.
pub struct SnapshotIter {
    merged: MergingIterator,
    snap_ts: u64,
    end: Option<Vec<u8>>,
    /// Pins the disk files the child iterators read.
    _version: Arc<Version>,
    /// Keeps the snapshot handle registered while iterating, when the
    /// iterator owns its snapshot (see [`Snapshot::into_iter_owned`]).
    _snapshot: Option<Snapshot>,
    /// Last key whose newest visible version was already processed;
    /// persists across `next` calls so older versions never resurface.
    last_key: Option<Vec<u8>>,
    finished: bool,
}

impl Iterator for SnapshotIter {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        while self.merged.valid() {
            let ts = self.merged.ts();
            let key = self.merged.user_key();

            if let Some(end) = &self.end {
                if key >= end.as_slice() {
                    break;
                }
            }
            if ts > self.snap_ts || self.last_key.as_deref() == Some(key) {
                // Invisible at this snapshot, or an older version of a
                // key already decided.
                self.merged.next();
                continue;
            }
            // Newest visible version of this key.
            self.last_key = Some(key.to_vec());
            match self.merged.kind() {
                ValueKind::Put => {
                    let pair = (key.to_vec(), self.merged.value().to_vec());
                    self.merged.next();
                    return Some(Ok(pair));
                }
                ValueKind::Delete => {
                    // Tombstone: the key is dead at this snapshot; keep
                    // scanning (older versions are now skipped via
                    // `last_key`).
                    self.merged.next();
                }
            }
        }
        self.finished = true;
        if let Err(e) = self.merged.status() {
            return Some(Err(e));
        }
        None
    }
}

impl SnapshotIter {
    /// Surfaces any I/O or corruption error hit during iteration.
    pub fn status(&self) -> Result<()> {
        self.merged.status()
    }
}
