//! Consistent snapshots, scans, and range queries (§3.2).

use std::sync::Arc;

use clsm_util::error::Result;

use lsm_storage::format::ValueKind;
use lsm_storage::iter::{InternalIterator, MergingIterator};
use lsm_storage::version::Version;

use crate::db::DbInner;

/// A consistent read-only view of the database at one point in time.
///
/// A snapshot handle is "simply a timestamp" (§3.2.1): reads through it
/// return, for every key, the newest version written at or before that
/// time. While the handle is live, the merge process keeps every
/// version a read at this time could need; dropping the handle releases
/// them for garbage collection.
pub struct Snapshot {
    inner: Arc<DbInner>,
    ts: u64,
}

impl Snapshot {
    pub(crate) fn new(inner: Arc<DbInner>, ts: u64) -> Snapshot {
        Snapshot { inner, ts }
    }

    /// The snapshot's timestamp.
    pub fn timestamp(&self) -> u64 {
        self.ts
    }

    /// Reads `key` as of this snapshot ("snapshot read", §3.2.2).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get_at(key, self.ts)
    }

    /// Iterates every live key-value pair in key order.
    pub fn iter(&self) -> Result<SnapshotIter> {
        self.scan_from(None, None)
    }

    /// Range query over `[start, end)` in key order (§3.2.2). Pass
    /// `end = None` for an unbounded upper end.
    pub fn range(&self, start: &[u8], end: Option<&[u8]>) -> Result<SnapshotIter> {
        self.scan_from(Some(start), end)
    }

    fn scan_from(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Result<SnapshotIter> {
        // Gather component iterators newest-first: Pm, P'm, then the
        // disk levels. Each child holds its component alive (`Arc`s on
        // memtables, the pinned `Version` for the files) — the paper's
        // per-component reference counts.
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(self.inner.pm.load().internal_iter());
        if let Some(prev) = self.inner.pm_prev.load() {
            children.push(prev.internal_iter());
        }
        let (version, disk_iters) = self.inner.store.version_iterators()?;
        children.extend(disk_iters);

        let mut merged = MergingIterator::new(children);
        match start {
            Some(key) => merged.seek(key, self.ts),
            None => merged.seek_to_first(),
        }
        Ok(SnapshotIter {
            merged,
            snap_ts: self.ts,
            end: end.map(<[u8]>::to_vec),
            _version: version,
            _snapshot: None,
            last_key: None,
            finished: false,
        })
    }

    /// Consumes the snapshot into a full-scan iterator that keeps the
    /// handle (and thus the GC registration) alive for its duration.
    pub fn into_iter_owned(self) -> Result<SnapshotIter> {
        let mut it = self.iter()?;
        it._snapshot = Some(self);
        Ok(it)
    }

    /// Consumes the snapshot into a range iterator (see
    /// [`Snapshot::into_iter_owned`]).
    pub fn into_range_owned(self, start: &[u8], end: Option<&[u8]>) -> Result<SnapshotIter> {
        let mut it = self.range(start, end)?;
        it._snapshot = Some(self);
        Ok(it)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.inner.snapshots.unregister(self.ts);
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("ts", &self.ts).finish()
    }
}

/// Iterator over a snapshot's live key-value pairs.
///
/// Implements the `next` filtering of §3.2.1: versions newer than the
/// snapshot time are skipped, only the newest remaining version of each
/// key is surfaced, and deletion markers hide their key.
pub struct SnapshotIter {
    merged: MergingIterator,
    snap_ts: u64,
    end: Option<Vec<u8>>,
    /// Pins the disk files the child iterators read.
    _version: Arc<Version>,
    /// Keeps the snapshot handle registered while iterating, when the
    /// iterator owns its snapshot (see [`Snapshot::into_iter_owned`]).
    _snapshot: Option<Snapshot>,
    /// Last key whose newest visible version was already processed;
    /// persists across `next` calls so older versions never resurface.
    last_key: Option<Vec<u8>>,
    finished: bool,
}

impl Iterator for SnapshotIter {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        while self.merged.valid() {
            let ts = self.merged.ts();
            let key = self.merged.user_key();

            if let Some(end) = &self.end {
                if key >= end.as_slice() {
                    break;
                }
            }
            if ts > self.snap_ts || self.last_key.as_deref() == Some(key) {
                // Invisible at this snapshot, or an older version of a
                // key already decided.
                self.merged.next();
                continue;
            }
            // Newest visible version of this key.
            self.last_key = Some(key.to_vec());
            match self.merged.kind() {
                ValueKind::Put => {
                    let pair = (key.to_vec(), self.merged.value().to_vec());
                    self.merged.next();
                    return Some(Ok(pair));
                }
                ValueKind::Delete => {
                    // Tombstone: the key is dead at this snapshot; keep
                    // scanning (older versions are now skipped via
                    // `last_key`).
                    self.merged.next();
                }
            }
        }
        self.finished = true;
        if let Err(e) = self.merged.status() {
            return Some(Err(e));
        }
        None
    }
}

impl SnapshotIter {
    /// Surfaces any I/O or corruption error hit during iteration.
    pub fn status(&self) -> Result<()> {
        self.merged.status()
    }
}
