//! The database's observability layer: counters and latency histograms
//! registered in a [`MetricsRegistry`], plus the legacy
//! [`StatsSnapshot`] counter view.
//!
//! Every handle here is pre-registered at `Db::open` and recorded
//! through directly on the hot paths — no locks, no registry lookups,
//! just relaxed atomics (see `clsm_util::metrics`). The full registry
//! (including the storage layer's `storage.*` metrics and the oracle
//! pressure gauges) is exposed via `Db::metrics()`.

use std::sync::Arc;

use clsm_util::metrics::{ConcurrentHistogram, Counter, MetricsRegistry};

/// Pre-registered metrics handles of one open database.
///
/// Counter names carry the `db.` prefix, per-operation latency
/// histograms the `op.` prefix, storage-layer metrics (registered by
/// the store against the same registry) the `storage.` prefix, and
/// oracle pressure gauges the `oracle.` prefix.
#[derive(Debug)]
pub(crate) struct DbMetrics {
    /// The registry behind `Db::metrics()`; shared with the store.
    pub registry: Arc<MetricsRegistry>,

    // -- operation counters (the legacy `StatsSnapshot` view) --
    pub puts: Arc<Counter>,
    pub gets: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub rmw_ops: Arc<Counter>,
    pub rmw_conflicts: Arc<Counter>,
    pub snapshots: Arc<Counter>,
    pub flushes: Arc<Counter>,
    pub compactions: Arc<Counter>,
    pub write_stalls: Arc<Counter>,

    // -- per-operation latency histograms (nanoseconds) --
    pub put_latency: Arc<ConcurrentHistogram>,
    pub get_latency: Arc<ConcurrentHistogram>,
    pub delete_latency: Arc<ConcurrentHistogram>,
    pub write_batch_latency: Arc<ConcurrentHistogram>,
    pub rmw_latency: Arc<ConcurrentHistogram>,
    pub snapshot_latency: Arc<ConcurrentHistogram>,
    pub scan_latency: Arc<ConcurrentHistogram>,

    /// Total nanoseconds writers spent stalled on a full memtable.
    pub write_stall_ns: Arc<Counter>,
}

impl DbMetrics {
    /// Creates a fresh registry with every database metric registered.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        DbMetrics {
            puts: registry.counter("db.puts"),
            gets: registry.counter("db.gets"),
            deletes: registry.counter("db.deletes"),
            rmw_ops: registry.counter("db.rmw_ops"),
            rmw_conflicts: registry.counter("db.rmw_conflicts"),
            snapshots: registry.counter("db.snapshots"),
            flushes: registry.counter("db.flushes"),
            compactions: registry.counter("db.compactions"),
            write_stalls: registry.counter("db.write_stalls"),
            put_latency: registry.histogram("op.put.latency_ns"),
            get_latency: registry.histogram("op.get.latency_ns"),
            delete_latency: registry.histogram("op.delete.latency_ns"),
            write_batch_latency: registry.histogram("op.write_batch.latency_ns"),
            rmw_latency: registry.histogram("op.rmw.latency_ns"),
            snapshot_latency: registry.histogram("op.snapshot.latency_ns"),
            scan_latency: registry.histogram("op.scan.latency_ns"),
            write_stall_ns: registry.counter("db.write_stall_ns"),
            registry,
        }
    }

    /// The legacy counter view (`Db::stats()`).
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts.get(),
            gets: self.gets.get(),
            deletes: self.deletes.get(),
            rmw_ops: self.rmw_ops.get(),
            rmw_conflicts: self.rmw_conflicts.get(),
            snapshots: self.snapshots.get(),
            flushes: self.flushes.get(),
            compactions: self.compactions.get(),
            write_stalls: self.write_stalls.get(),
        }
    }
}

impl Default for DbMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed delete operations.
    pub deletes: u64,
    /// Completed read-modify-write operations.
    pub rmw_ops: u64,
    /// RMW retries due to conflicts (Algorithm 3).
    pub rmw_conflicts: u64,
    /// Snapshots created.
    pub snapshots: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Disk compactions performed.
    pub compactions: u64,
    /// Puts that stalled waiting for a flush.
    pub write_stalls: u64,
}
