//! Operation counters (diagnostics and the evaluation harness).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone operation counters. All methods are wait-free.
#[derive(Debug, Default)]
pub struct Stats {
    pub(crate) puts: AtomicU64,
    pub(crate) gets: AtomicU64,
    pub(crate) deletes: AtomicU64,
    pub(crate) rmw_ops: AtomicU64,
    pub(crate) rmw_conflicts: AtomicU64,
    pub(crate) snapshots: AtomicU64,
    pub(crate) flushes: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) write_stalls: AtomicU64,
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed delete operations.
    pub deletes: u64,
    /// Completed read-modify-write operations.
    pub rmw_ops: u64,
    /// RMW retries due to conflicts (Algorithm 3).
    pub rmw_conflicts: u64,
    /// Snapshots created.
    pub snapshots: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Disk compactions performed.
    pub compactions: u64,
    /// Puts that stalled waiting for a flush.
    pub write_stalls: u64,
}

impl Stats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            rmw_ops: self.rmw_ops.load(Ordering::Relaxed),
            rmw_conflicts: self.rmw_conflicts.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            write_stalls: self.write_stalls.load(Ordering::Relaxed),
        }
    }
}
