//! The database's observability layer: counters and latency histograms
//! registered in a [`MetricsRegistry`], plus the legacy
//! [`StatsSnapshot`] counter view.
//!
//! Every handle here is pre-registered at `Db::open` and recorded
//! through directly on the hot paths — no locks, no registry lookups,
//! just relaxed atomics (see `clsm_util::metrics`). The full registry
//! (including the storage layer's `storage.*` metrics and the oracle
//! pressure gauges) is exposed via `Db::metrics()`.

use std::sync::Arc;

use clsm_util::metrics::{ConcurrentHistogram, Counter, MetricsRegistry};
use clsm_util::trace::TraceId;

/// Flight-recorder instants mirroring the write-path stage histograms
/// (argument = stage duration in ns), so a Perfetto trace and the
/// `write_path.*` histograms tell the same story. Each emission is one
/// relaxed load + branch when tracing is disabled.
mod stage_trace {
    use super::TraceId;

    pub static ADMISSION: TraceId = TraceId::new("clsm.write.admission");
    pub static QUEUE_WAIT: TraceId = TraceId::new("clsm.write.queue_wait");
    pub static STAMP: TraceId = TraceId::new("clsm.write.stamp");
    pub static MEMTABLE: TraceId = TraceId::new("clsm.write.memtable");
    pub static WAL_ENQUEUE: TraceId = TraceId::new("clsm.write.wal_enqueue");
    pub static PUBLISH: TraceId = TraceId::new("clsm.write.publish");
    pub static DURABLE: TraceId = TraceId::new("clsm.write.durable");
    pub static WAKE: TraceId = TraceId::new("clsm.write.wake");
    pub static TOTAL: TraceId = TraceId::new("clsm.write.total");
}

/// Pre-registered metrics handles of one open database.
///
/// Counter names carry the `db.` prefix, per-operation latency
/// histograms the `op.` prefix, storage-layer metrics (registered by
/// the store against the same registry) the `storage.` prefix, and
/// oracle pressure gauges the `oracle.` prefix.
#[derive(Debug)]
pub(crate) struct DbMetrics {
    /// The registry behind `Db::metrics()`; shared with the store.
    pub registry: Arc<MetricsRegistry>,

    // -- operation counters (the legacy `StatsSnapshot` view) --
    pub puts: Arc<Counter>,
    pub gets: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub rmw_ops: Arc<Counter>,
    pub rmw_conflicts: Arc<Counter>,
    pub snapshots: Arc<Counter>,
    pub flushes: Arc<Counter>,
    pub compactions: Arc<Counter>,
    pub write_stalls: Arc<Counter>,

    // -- per-operation latency histograms (nanoseconds) --
    pub put_latency: Arc<ConcurrentHistogram>,
    pub get_latency: Arc<ConcurrentHistogram>,
    pub delete_latency: Arc<ConcurrentHistogram>,
    pub write_batch_latency: Arc<ConcurrentHistogram>,
    pub rmw_latency: Arc<ConcurrentHistogram>,
    pub snapshot_latency: Arc<ConcurrentHistogram>,
    pub scan_latency: Arc<ConcurrentHistogram>,

    /// Total nanoseconds writers spent stalled on a full memtable.
    pub write_stall_ns: Arc<Counter>,

    // -- graduated admission (the delay ramp before the hard stall) --
    /// Writes charged a nonzero ramp delay.
    pub admission_delayed_writes: Arc<Counter>,
    /// Total ramp delay charged, in nanoseconds.
    pub admission_delay_ns: Arc<Counter>,
    /// Writes that still hit the §5.3 hard stall (memtable full with a
    /// flush in flight). Zero under a healthy ramp.
    pub admission_hard_stalls: Arc<Counter>,

    /// Write-path latency attribution (stage histograms and
    /// commit-mode distribution counters).
    pub write_path: WritePathMetrics,
}

/// Pre-registered write-path attribution handles.
///
/// The stage histograms (`write_path.*_ns`) are recorded only when
/// `Options::write_path_attribution` is on — the disabled path is a
/// single branch with no clock reads. The commit-mode counters and the
/// group-size histogram are always on: they cost one relaxed atomic op
/// per write (or per group) and feed the doctor's group-commit section
/// regardless of the attribution flag.
///
/// Stage boundaries, in pipeline order (a write visits a subset):
/// enqueue → leader-claim (`queue_wait`) → stamped (`stamp`) →
/// memtable-done (`memtable`) → WAL-enqueued (`wal_enqueue`) →
/// published (`publish`) → durable fsync (`durable`, sync writes only)
/// → requester woken (`wake`). `total` spans `Db::write` entry to
/// return. Counts differ per stage by design: `queue_wait`/`wake` are
/// per pipelined request, group stages are once per committed group,
/// `durable` only for sync writes.
#[derive(Debug)]
pub(crate) struct WritePathMetrics {
    /// Admission-controller hold (ramp delay + any hard stall) before
    /// the write enters the pipeline. Zero-delay admissions are not
    /// recorded, so the count doubles as "writes touched by admission".
    pub admission: Arc<ConcurrentHistogram>,
    /// Request push → leader claim (per pipelined request).
    pub queue_wait: Arc<ConcurrentHistogram>,
    /// Timestamp-block / per-op timestamp acquisition.
    pub stamp: Arc<ConcurrentHistogram>,
    /// Memtable insert pass (includes restamp retries in shared mode;
    /// the exclusive batch path folds publish into this stage).
    pub memtable: Arc<ConcurrentHistogram>,
    /// WAL record encode + logging-queue enqueue (`Store::log`).
    pub wal_enqueue: Arc<ConcurrentHistogram>,
    /// Oracle publish pass (makes stamped writes visible to readers).
    pub publish: Arc<ConcurrentHistogram>,
    /// Sync-wait start → logger-thread fsync completion (sync writes
    /// only; uses the WAL durable-ack timestamp, so cross-thread wake
    /// latency is excluded).
    pub durable: Arc<ConcurrentHistogram>,
    /// Leader marked the request done → requester observed it.
    pub wake: Arc<ConcurrentHistogram>,
    /// `Db::write` entry → return (every write, any path).
    pub total: Arc<ConcurrentHistogram>,

    /// Operations per leader-committed group (always on).
    pub group_size: Arc<ConcurrentHistogram>,
    /// Requests committed on the solo fast path (empty queue, CAS won).
    pub solo: Arc<Counter>,
    /// Pipelined requests whose submitter became the leader.
    pub leader_requests: Arc<Counter>,
    /// Pipelined requests committed by another thread's leader.
    pub follower_requests: Arc<Counter>,
    /// Pipelined requests withdrawn and committed by their own writer.
    pub withdrawn: Arc<Counter>,
    /// Groups committed by leaders.
    pub groups: Arc<Counter>,
    /// Requests committed as members of a group (leader's own plus
    /// followers); equals `leader_requests + follower_requests` at
    /// quiescence.
    pub group_requests: Arc<Counter>,
}

impl WritePathMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        WritePathMetrics {
            admission: registry.histogram("write_path.admission_ns"),
            queue_wait: registry.histogram("write_path.queue_wait_ns"),
            stamp: registry.histogram("write_path.stamp_ns"),
            memtable: registry.histogram("write_path.memtable_ns"),
            wal_enqueue: registry.histogram("write_path.wal_enqueue_ns"),
            publish: registry.histogram("write_path.publish_ns"),
            durable: registry.histogram("write_path.durable_ns"),
            wake: registry.histogram("write_path.wake_ns"),
            total: registry.histogram("write_path.total_ns"),
            group_size: registry.histogram("write_path.group_size"),
            solo: registry.counter("db.commit.solo"),
            leader_requests: registry.counter("db.commit.leader_requests"),
            follower_requests: registry.counter("db.commit.follower_requests"),
            withdrawn: registry.counter("db.commit.withdrawn"),
            groups: registry.counter("db.commit.groups"),
            group_requests: registry.counter("db.commit.group_requests"),
        }
    }

    /// Records one stage sample and mirrors it to the flight recorder.
    pub fn rec_admission(&self, ns: u64) {
        self.admission.record(ns);
        stage_trace::ADMISSION.instant(ns);
    }

    /// See [`rec_admission`](Self::rec_admission).
    pub fn rec_queue_wait(&self, ns: u64) {
        self.queue_wait.record(ns);
        stage_trace::QUEUE_WAIT.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_stamp(&self, ns: u64) {
        self.stamp.record(ns);
        stage_trace::STAMP.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_memtable(&self, ns: u64) {
        self.memtable.record(ns);
        stage_trace::MEMTABLE.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_wal_enqueue(&self, ns: u64) {
        self.wal_enqueue.record(ns);
        stage_trace::WAL_ENQUEUE.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_publish(&self, ns: u64) {
        self.publish.record(ns);
        stage_trace::PUBLISH.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_durable(&self, ns: u64) {
        self.durable.record(ns);
        stage_trace::DURABLE.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_wake(&self, ns: u64) {
        self.wake.record(ns);
        stage_trace::WAKE.instant(ns);
    }

    /// See [`rec_queue_wait`](Self::rec_queue_wait).
    pub fn rec_total(&self, ns: u64) {
        self.total.record(ns);
        stage_trace::TOTAL.instant(ns);
    }
}

impl DbMetrics {
    /// Creates a fresh registry with every database metric registered.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        DbMetrics {
            puts: registry.counter("db.puts"),
            gets: registry.counter("db.gets"),
            deletes: registry.counter("db.deletes"),
            rmw_ops: registry.counter("db.rmw_ops"),
            rmw_conflicts: registry.counter("db.rmw_conflicts"),
            snapshots: registry.counter("db.snapshots"),
            flushes: registry.counter("db.flushes"),
            compactions: registry.counter("db.compactions"),
            write_stalls: registry.counter("db.write_stalls"),
            put_latency: registry.histogram("op.put.latency_ns"),
            get_latency: registry.histogram("op.get.latency_ns"),
            delete_latency: registry.histogram("op.delete.latency_ns"),
            write_batch_latency: registry.histogram("op.write_batch.latency_ns"),
            rmw_latency: registry.histogram("op.rmw.latency_ns"),
            snapshot_latency: registry.histogram("op.snapshot.latency_ns"),
            scan_latency: registry.histogram("op.scan.latency_ns"),
            write_stall_ns: registry.counter("db.write_stall_ns"),
            admission_delayed_writes: registry.counter("admission.delayed_writes"),
            admission_delay_ns: registry.counter("admission.delay_ns"),
            admission_hard_stalls: registry.counter("admission.hard_stalls"),
            write_path: WritePathMetrics::new(&registry),
            registry,
        }
    }

    /// The legacy counter view (`Db::stats()`).
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts.get(),
            gets: self.gets.get(),
            deletes: self.deletes.get(),
            rmw_ops: self.rmw_ops.get(),
            rmw_conflicts: self.rmw_conflicts.get(),
            snapshots: self.snapshots.get(),
            flushes: self.flushes.get(),
            compactions: self.compactions.get(),
            write_stalls: self.write_stalls.get(),
        }
    }
}

impl Default for DbMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed delete operations.
    pub deletes: u64,
    /// Completed read-modify-write operations.
    pub rmw_ops: u64,
    /// RMW retries due to conflicts (Algorithm 3).
    pub rmw_conflicts: u64,
    /// Snapshots created.
    pub snapshots: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Disk compactions performed.
    pub compactions: u64,
    /// Puts that stalled waiting for a flush.
    pub write_stalls: u64,
}
