//! Range-sharded composition of cLSM stores sharing one timestamp
//! oracle — partitioned throughput *with* cross-shard consistent scans.
//!
//! Figure 1 of the paper shows that splitting a store into independent
//! partitions buys throughput but costs consistency: "the data store's
//! consistent snapshot scans do not span multiple partitions" (§2.2).
//! That limitation is not fundamental — it is an artifact of each
//! partition running its own clock. cLSM derives snapshot consistency
//! entirely from Algorithm 2's oracle (`timeCounter`, the `Active`
//! set, `snapTime`), so N shards that share **one** oracle hand out
//! globally ordered write timestamps, and a single `getSnap` timestamp
//! is a serializable cut across *every* shard at once.
//!
//! [`ShardedDb`] composes N full [`Db`] instances (each with its own
//! directory, WAL, memtables, levels, and background workers) behind
//! one shared [`TimestampOracle`] and [`SnapshotRegistry`]:
//!
//! - **Point operations** route by range ([`partition_of`]) and run at
//!   full per-shard concurrency — the Figure 1 throughput win.
//! - **Cross-shard batches** ([`ShardedDb::write`]) take *one*
//!   write timestamp for every entry. While that stamp sits in the
//!   shared `Active` set, no snapshot can be granted a time at or
//!   above it, so scanners observe either the whole batch or none of
//!   it — never one shard's half.
//! - **Snapshots** ([`ShardedDb::snapshot`]) publish one `getSnap`
//!   timestamp that is simultaneously valid on every shard; scans
//!   stitch per-shard iterators in range order into one serializable
//!   cross-shard view.
//!
//! # Locking protocol (deadlock freedom)
//!
//! Both multi-shard operations acquire per-shard locks in **ascending
//! shard order** and do only non-blocking work while holding them:
//!
//! - `write` (cross-shard case): lock touched shards (exclusive,
//!   ascending — see [`ShardedDb::write`] for why exclusive) → `getTS`
//!   (one stamp) → log + insert on each shard → `publish` → unlock.
//!   A batch whose keys all land on one shard instead delegates to
//!   that shard's [`Db::write`], riding its group-commit pipeline.
//! - `snapshot`: lock all shards (shared, ascending) →
//!   [`TimestampOracle::get_snap_publish`] (non-blocking half) →
//!   register → unlock → [`TimestampOracle::wait_snap_visible`].
//!
//! Waiting for in-flight writers happens strictly *after* the locks
//! are released; a flush's exclusive acquisition on one shard never
//! waits, directly or transitively, on a thread that is waiting for
//! that same flush. Combined with the ascending acquisition order this
//! rules out cycles. Registering the snapshot *before* waiting is
//! GC-safe: the registry only ever protects more versions than needed.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use clsm_kv::{WriteBatch, WriteOptions};
use clsm_util::env::Env;
use clsm_util::error::{Error, Result};
use clsm_util::metrics::{MetricsRegistry, MetricsSnapshot};
use clsm_util::oracle::{SnapshotRegistry, TimestampOracle};
use clsm_util::trace::now_ns;

use lsm_storage::format::WriteRecord;
use lsm_storage::store::{Recovered, RecoveryReport};
use lsm_storage::wal::SyncMode;
use lsm_storage::Store;

use crate::db::Db;
use crate::doctor::DoctorReport;
use crate::options::Options;
use crate::snapshot::{bounds_to_keys, Snapshot, SnapshotIter};
use crate::stats::StatsSnapshot;

/// Name of the shard-layout manifest inside a sharded directory.
const MANIFEST: &str = "SHARDS";
/// First line of the manifest (format version guard).
const MANIFEST_HEADER: &str = "clsm-sharded-manifest v1";

/// Index of the shard owning `key`, given the exclusive upper
/// boundaries of all shards but the last (`boundaries` sorted strictly
/// ascending). Shard `i` owns `[boundaries[i-1], boundaries[i])`, with
/// the first shard unbounded below and the last unbounded above.
pub fn partition_of(boundaries: &[Vec<u8>], key: &[u8]) -> usize {
    boundaries.partition_point(|b| b.as_slice() <= key)
}

/// Evenly spaced single-byte boundaries for `shards` ranges: shard `i`
/// gets first bytes `[256*i/N, 256*(i+1)/N)`.
fn default_boundaries(shards: usize) -> Vec<Vec<u8>> {
    (1..shards)
        .map(|i| vec![(256 * i / shards) as u8])
        .collect()
}

fn shard_dir(root: &Path, index: usize) -> PathBuf {
    root.join(format!("shard-{index:03}"))
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(Error::corruption(format!("bad hex key in manifest: {s:?}")));
    }
    Ok((0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("checked hex"))
        .collect())
}

/// Persists the shard layout (count + boundaries) so reopening uses
/// the same ranges regardless of the options passed later. Durable
/// write + atomic rename + directory sync: a crash leaves either the
/// old manifest or the new one, never a torn mixture.
fn write_manifest(env: &dyn Env, root: &Path, boundaries: &[Vec<u8>]) -> Result<()> {
    let mut text = String::new();
    text.push_str(MANIFEST_HEADER);
    text.push('\n');
    text.push_str(&format!("shards {}\n", boundaries.len() + 1));
    for b in boundaries {
        text.push_str(&format!("boundary {}\n", hex_encode(b)));
    }
    let tmp = root.join(format!("{MANIFEST}.tmp"));
    env.write(&tmp, text.as_bytes())?;
    env.rename(&tmp, &root.join(MANIFEST))?;
    env.sync_dir(root)?;
    Ok(())
}

/// Reads the persisted shard layout, or `None` when the directory has
/// no manifest (fresh directory, or a plain `Db` directory).
fn read_manifest(env: &dyn Env, root: &Path) -> Result<Option<Vec<Vec<u8>>>> {
    let path = root.join(MANIFEST);
    let text = match env.read(&path) {
        Ok(bytes) => String::from_utf8(bytes).map_err(|_| {
            Error::corruption(format!("shard manifest {} is not UTF-8", path.display()))
        })?,
        Err(e) if e.is_not_found() => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(Error::corruption(format!(
            "unrecognized shard manifest header in {}",
            path.display()
        )));
    }
    let shards: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| Error::corruption("shard manifest missing `shards N` line"))?;
    let mut boundaries = Vec::with_capacity(shards.saturating_sub(1));
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let hex = line
            .strip_prefix("boundary ")
            .ok_or_else(|| Error::corruption(format!("unexpected manifest line: {line:?}")))?;
        boundaries.push(hex_decode(hex)?);
    }
    if boundaries.len() + 1 != shards || !boundaries.windows(2).all(|w| w[0] < w[1]) {
        return Err(Error::corruption(
            "shard manifest boundaries inconsistent with shard count",
        ));
    }
    Ok(Some(boundaries))
}

/// A range-sharded cLSM: N full [`Db`] instances sharing one timestamp
/// oracle, with serializable cross-shard snapshots.
///
/// Cheap operations (`put`/`get`/`delete`) touch exactly one shard;
/// [`ShardedDb::snapshot`] and [`ShardedDb::write`] coordinate
/// through the shared oracle as described in the [module docs]
/// (crate::sharded).
///
/// # Examples
///
/// ```
/// use clsm::{Options, ShardedDb};
///
/// let dir = std::env::temp_dir().join(format!("clsm-sharded-doc-{}", std::process::id()));
/// let mut opts = Options::small_for_tests();
/// opts.shards = 4;
/// let db = ShardedDb::open(&dir, opts).unwrap();
/// db.put(b"apple", b"1").unwrap();
/// db.put(b"zebra", b"2").unwrap();
/// let snap = db.snapshot().unwrap();
/// db.put(b"apple", b"3").unwrap();
/// // The snapshot is one consistent cut across all shards.
/// assert_eq!(snap.get(b"apple").unwrap(), Some(b"1".to_vec()));
/// assert_eq!(snap.get(b"zebra").unwrap(), Some(b"2".to_vec()));
/// drop((snap, db));
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct ShardedDb {
    shards: Vec<Db>,
    /// Exclusive upper bound of shard `i`, for `i < shards.len() - 1`.
    boundaries: Vec<Vec<u8>>,
    oracle: Arc<TimestampOracle>,
    snapshots: Arc<SnapshotRegistry>,
    /// Timestamps of cross-shard batches found torn (and dropped) by
    /// the recovery audit, ascending.
    torn_batches: Vec<u64>,
}

impl ShardedDb {
    /// Opens (or creates) a sharded database rooted at `path`.
    ///
    /// A fresh directory is split into [`Options::shards`] ranges with
    /// evenly spaced single-byte boundaries and the layout is persisted
    /// in a `SHARDS` manifest. On reopen the manifest is authoritative:
    /// the store comes back with the ranges it was created with, and
    /// `opts.shards` is ignored.
    pub fn open(path: &Path, opts: impl Into<Options>) -> Result<ShardedDb> {
        let opts: Options = opts.into();
        opts.validate()?;
        let env = Arc::clone(&opts.store.env);
        env.create_dir_all(path)?;
        let boundaries = match read_manifest(env.as_ref(), path)? {
            Some(b) => b,
            None => {
                let b = default_boundaries(opts.shards);
                write_manifest(env.as_ref(), path, &b)?;
                b
            }
        };
        Self::open_inner(path, opts, boundaries)
    }

    /// Opens (or creates) a sharded database with explicit range
    /// boundaries (strictly ascending; `boundaries.len() + 1` shards).
    /// Reopening a directory whose persisted layout differs is an
    /// error.
    pub fn open_with_boundaries(
        path: &Path,
        opts: impl Into<Options>,
        boundaries: Vec<Vec<u8>>,
    ) -> Result<ShardedDb> {
        let opts: Options = opts.into();
        opts.validate()?;
        if !boundaries.windows(2).all(|w| w[0] < w[1]) {
            return Err(Error::invalid_argument(
                "shard boundaries must be strictly ascending",
            ));
        }
        if boundaries.len() + 1 > 256 {
            return Err(Error::invalid_argument("at most 256 shards"));
        }
        let env = Arc::clone(&opts.store.env);
        env.create_dir_all(path)?;
        match read_manifest(env.as_ref(), path)? {
            Some(existing) if existing != boundaries => {
                return Err(Error::invalid_argument(
                    "existing shard layout differs from the requested boundaries",
                ));
            }
            Some(_) => {}
            None => write_manifest(env.as_ref(), path, &boundaries)?,
        }
        Self::open_inner(path, opts, boundaries)
    }

    fn open_inner(path: &Path, opts: Options, boundaries: Vec<Vec<u8>>) -> Result<ShardedDb> {
        let oracle = Arc::new(TimestampOracle::new(opts.active_slots));
        let snapshots = Arc::new(SnapshotRegistry::new());
        let mut child_opts = opts;
        child_opts.shards = 1;
        let num = boundaries.len() + 1;

        // Open every shard's *store* first, so the batch audit sees
        // the recovered records of all shards before any memtable is
        // filled.
        let mut opened: Vec<(Store, Recovered)> = Vec::with_capacity(num);
        for i in 0..num {
            opened.push(Store::open(&shard_dir(path, i), child_opts.store.clone())?);
        }
        let torn_batches = audit_cross_shard_batches(&mut opened);

        let mut shards = Vec::with_capacity(num);
        for (i, (store, recovered)) in opened.into_iter().enumerate() {
            // Shard 0 is the oracle primary: it registers the
            // `oracle.*` gauges and runs the watchdog's Active-set
            // detector, so shared state is reported exactly once.
            shards.push(Db::from_parts(
                store,
                recovered,
                child_opts.clone(),
                Some((Arc::clone(&oracle), Arc::clone(&snapshots), i == 0)),
            )?);
        }
        Ok(ShardedDb {
            shards,
            boundaries,
            oracle,
            snapshots,
            torn_batches,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The exclusive upper boundaries (one fewer than the shard count).
    pub fn boundaries(&self) -> &[Vec<u8>] {
        &self.boundaries
    }

    /// Direct access to one shard (diagnostics and shard-pinned
    /// drivers; the shard is a full [`Db`]).
    pub fn shard(&self, i: usize) -> &Db {
        &self.shards[i]
    }

    fn shard_for(&self, key: &[u8]) -> &Db {
        &self.shards[partition_of(&self.boundaries, key)]
    }

    /// Stores `value` under `key` on the owning shard.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.shard_for(key).put(key, value)
    }

    /// Returns the latest value of `key` (non-blocking, single shard).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shard_for(key).get(key)
    }

    /// Deletes `key` on the owning shard.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.shard_for(key).delete(key)
    }

    /// Atomically stores `value` if `key` is absent; single shard.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.shard_for(key).put_if_absent(key, value)
    }

    /// Atomically applies `f` to the current value of `key`
    /// (Algorithm 3 on the owning shard).
    ///
    /// A key lives on exactly one shard, so the shard-local optimistic
    /// conflict detection carries the whole guarantee; the shared
    /// oracle stamps the write exactly as it would on a monolithic
    /// [`Db`].
    pub fn read_modify_write<F>(&self, key: &[u8], f: F) -> Result<crate::RmwResult>
    where
        F: FnMut(Option<&[u8]>) -> crate::RmwDecision,
    {
        self.shard_for(key).read_modify_write(key, f)
    }

    /// Applies a [`WriteBatch`] under the given [`WriteOptions`] — the
    /// single mutation entry point, batch-atomic even across shards.
    ///
    /// A batch whose keys all land on one shard (including every
    /// single-op batch) delegates to that shard's [`Db::write`] and
    /// rides its group-commit pipeline. Only genuinely cross-shard
    /// batches take the coarse-grained path below.
    ///
    /// Every cross-shard entry is written at **one** shared timestamp, acquired
    /// while holding the touched shards' locks (**exclusive** mode,
    /// ascending order — batches are the one operation cLSM keeps
    /// coarse-grained, as on [`Db`]) and published only after every
    /// shard's log append and memtable insert landed. A concurrent
    /// [`ShardedDb::snapshot`] therefore sees the whole batch or none
    /// of it: its `getSnap` time is below the batch stamp while the
    /// stamp is active, and at or above it only once all inserts are
    /// visible.
    ///
    /// Exclusive mode also guarantees the batch stamp is the newest
    /// version for every touched key: single-key writers (put, RMW)
    /// hold their shard's lock in shared mode across their whole
    /// stamp→insert window, so by the time the batch holds the lock no
    /// lower stamp destined for a touched shard is still in flight,
    /// and none can be issued until the batch releases. Without that,
    /// a racing RMW could read a pre-batch value, stamp later, and
    /// insert first — shadowing the batch's entry (a lost update).
    ///
    /// Duplicate keys keep the last occurrence (all entries share one
    /// timestamp, so "later wins within the batch" must be resolved
    /// here rather than by version order).
    pub fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        opts.validate()?;
        if batch.is_empty() {
            return Ok(());
        }
        if batch.iter().any(|(key, _)| key.is_empty()) {
            // The empty key is reserved for batch-commit markers.
            return Err(Error::invalid_argument("empty keys are not supported"));
        }
        // Single-shard fast path: route to the owning shard's pipeline.
        // Within-batch duplicates resolve by insertion order there (the
        // shard stamps entries with ascending timestamps), matching the
        // last-occurrence-wins dedup below.
        let first_shard = partition_of(&self.boundaries, &batch.ops()[0].0);
        if batch
            .iter()
            .all(|(key, _)| partition_of(&self.boundaries, key) == first_shard)
        {
            return self.shards[first_shard].write(batch, opts);
        }
        let began = Instant::now();
        // Deduplicate (last occurrence wins) and group by shard. The
        // BTreeMap keys double as the ascending lock-acquisition order.
        let mut last = std::collections::BTreeMap::new();
        for (key, value) in batch.ops() {
            last.insert(key.as_slice(), value);
        }
        type ShardEntries<'a> = Vec<(&'a [u8], &'a Option<Vec<u8>>)>;
        let mut per_shard: std::collections::BTreeMap<usize, ShardEntries> =
            std::collections::BTreeMap::new();
        for (key, value) in last {
            per_shard
                .entry(partition_of(&self.boundaries, key))
                .or_default()
                .push((key, value));
        }

        // Admission checks happen before any lock is held: a stalled
        // shard waits on its flush, which needs that shard's exclusive
        // lock.
        for &s in per_shard.keys() {
            self.shards[s].inner().admit_write();
        }

        // Attribution for the cross-shard path lands on the first
        // touched shard, matching the counter bump below (the merged
        // snapshot sums it all back together anyway).
        let wp = per_shard
            .keys()
            .next()
            .and_then(|&s| self.shards[s].inner().write_path());
        let mut wal_ns = 0u64;
        let mut mem_ns = 0u64;

        // Ascending exclusive locks on every touched shard, then one
        // stamp for the whole batch. Everything under the locks is
        // non-blocking (see the module docs' deadlock argument).
        let guards: Vec<_> = per_shard
            .keys()
            .map(|&s| self.shards[s].inner().lock.lock_exclusive())
            .collect();
        let stamp_start = if wp.is_some() { now_ns() } else { 0 };
        let stamp = self.oracle.get_ts();
        if let Some(wp) = wp {
            wp.rec_stamp(now_ns().saturating_sub(stamp_start));
        }
        let mut result = Ok(());
        let total_entries: u64 = per_shard.values().map(|v| v.len() as u64).sum();
        'apply: for (&s, entries) in &per_shard {
            let inner = self.shards[s].inner();
            if !opts.disable_wal {
                let mut records: Vec<WriteRecord> = entries
                    .iter()
                    .map(|&(key, value)| match value {
                        Some(v) => WriteRecord::put(stamp.ts, key, v.clone()),
                        None => WriteRecord::delete(stamp.ts, key),
                    })
                    .collect();
                // Batch-commit marker: rides in the same (per-shard
                // atomic) WAL payload as the entries, carrying the
                // batch's total entry count. Recovery counts entries
                // at this timestamp across all shards and drops the
                // batch when the count falls short — a shard's WAL
                // tail was lost mid-batch (see
                // [`audit_cross_shard_batches`]).
                records.push(WriteRecord::batch_marker(stamp.ts, total_entries));
                let wal_start = if wp.is_some() { now_ns() } else { 0 };
                let logged = inner.store.log(&records, SyncMode::Async);
                if wp.is_some() {
                    wal_ns += now_ns().saturating_sub(wal_start);
                }
                if let Err(e) = logged {
                    result = Err(e);
                    break 'apply;
                }
            }
            let mem_start = if wp.is_some() { now_ns() } else { 0 };
            let pm = inner.pm.load();
            for &(key, value) in entries {
                pm.insert(key, stamp.ts, value.as_deref());
            }
            if wp.is_some() {
                mem_ns += now_ns().saturating_sub(mem_start);
            }
        }
        if let Some(wp) = wp {
            if !opts.disable_wal {
                wp.rec_wal_enqueue(wal_ns);
            }
            wp.rec_memtable(mem_ns);
        }
        // Publish even on a failed log append — an unpublished stamp
        // would wedge every future snapshot. The failed shard's WAL is
        // poisoned and will surface the error on its own.
        let publish_start = if wp.is_some() { now_ns() } else { 0 };
        self.oracle.publish(stamp);
        if let Some(wp) = wp {
            wp.rec_publish(now_ns().saturating_sub(publish_start));
        }
        drop(guards);
        result?;

        // Two-phase durability: start every touched shard's fsync
        // before waiting on any, so the cross-shard sync costs one
        // (slowest) fsync instead of their sum. Each shard's WAL is a
        // separate logger thread (and possibly several stripes), so the
        // disk work genuinely overlaps.
        let sync_start = if wp.is_some() { now_ns() } else { 0 };
        let mut tickets = Vec::new();
        for &s in per_shard.keys() {
            let inner = self.shards[s].inner();
            if opts.sync || (inner.opts.sync_writes && !opts.disable_wal) {
                tickets.push(inner.store.sync_wal_begin()?);
            }
            inner.maybe_schedule_flush();
        }
        let synced = !tickets.is_empty();
        for ticket in tickets {
            ticket.wait()?;
        }
        if synced {
            if let Some(wp) = wp {
                wp.rec_durable(now_ns().saturating_sub(sync_start));
            }
        }
        // One bump on the first touched shard, matching `Db`'s
        // one-per-batch counter semantics after aggregation.
        if let Some(&s) = per_shard.keys().next() {
            let m = &self.shards[s].inner().metrics;
            m.puts.inc();
            m.write_batch_latency.record_duration(began.elapsed());
            if let Some(wp) = wp {
                wp.rec_total(u64::try_from(began.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }
        Ok(())
    }

    /// Atomically applies a batch that may span shards.
    #[deprecated(
        since = "0.6.0",
        note = "build a `WriteBatch` and call `write(batch, &WriteOptions::new())` instead"
    )]
    pub fn write_batch(&self, batch: &[(Vec<u8>, Option<Vec<u8>>)]) -> Result<()> {
        self.write(WriteBatch::from(batch), &WriteOptions::new())
    }

    /// Creates one serializable snapshot spanning every shard
    /// (Algorithm 2's `getSnap` against the shared oracle).
    pub fn snapshot(&self) -> Result<ShardedSnapshot> {
        let began = Instant::now();
        let ts = {
            // All shard locks in shared mode close the same race the
            // single-store `getSnap` closes with its one lock: no
            // shard's `beforeMerge` can read the GC watermark between
            // our choosing `ts` and registering it. Only non-blocking
            // oracle work happens under the locks.
            let _guards: Vec<_> = self
                .shards
                .iter()
                .map(|s| s.inner().lock.lock_shared())
                .collect();
            let ts = self.oracle.get_snap_publish();
            self.snapshots.register(ts);
            ts
        };
        // Wait out in-flight writes at or below `ts` with no locks
        // held; `ts` is already registered, so GC cannot outrun us.
        self.oracle.wait_snap_visible(ts);
        let views = self
            .shards
            .iter()
            .map(|s| Snapshot::new_view(Arc::clone(s.inner()), ts))
            .collect();
        let m = &self.shards[0].inner().metrics;
        m.snapshots.inc();
        m.snapshot_latency.record_duration(began.elapsed());
        Ok(ShardedSnapshot {
            views,
            boundaries: self.boundaries.clone(),
            registration: Arc::new(SnapRegistration {
                snapshots: Arc::clone(&self.snapshots),
                ts,
            }),
        })
    }

    /// Scans all live pairs from an implicit fresh snapshot, in key
    /// order across all shards.
    pub fn iter(&self) -> Result<ShardedIter> {
        self.range(..)
    }

    /// Range query over an implicit fresh snapshot, spanning shards.
    pub fn range<R>(&self, range: R) -> Result<ShardedIter>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let began = Instant::now();
        let snap = self.snapshot()?;
        let it = snap.into_range_owned(range)?;
        self.shards[0]
            .inner()
            .metrics
            .scan_latency
            .record_duration(began.elapsed());
        Ok(it)
    }

    /// Blocks until every shard is flushed and compacted to
    /// quiescence.
    pub fn compact_to_quiescence(&self) -> Result<()> {
        for shard in &self.shards {
            shard.compact_to_quiescence()?;
        }
        Ok(())
    }

    /// Combined metrics across all shards: counters and gauges summed,
    /// latency histograms merged at bucket level (percentiles are
    /// computed over the union of samples, not averaged summaries).
    /// The `oracle.*` gauges appear exactly once — only the primary
    /// shard registers them.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsRegistry::merged_snapshot(
            self.shards
                .iter()
                .map(|s| s.inner().metrics.registry.as_ref()),
        )
    }

    /// Write-path latency attribution across all shards, extracted
    /// from the bucket-merged [`ShardedDb::metrics`] snapshot: stage
    /// histograms are merged at bucket level and commit-mode counters
    /// summed, so the report reads as one system-wide write path.
    pub fn write_path_report(&self) -> crate::WritePathReport {
        crate::WritePathReport::from_snapshot(&self.metrics())
    }

    /// Per-shard metric snapshots, labeled `shard-000`, `shard-001`, …
    /// in range order.
    pub fn shard_metrics(&self) -> Vec<(String, MetricsSnapshot)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("shard-{i:03}"), s.metrics()))
            .collect()
    }

    /// Operation counters summed across shards.
    pub fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot {
            puts: 0,
            gets: 0,
            deletes: 0,
            rmw_ops: 0,
            rmw_conflicts: 0,
            snapshots: 0,
            flushes: 0,
            compactions: 0,
            write_stalls: 0,
        };
        for s in &self.shards {
            let st = s.stats();
            total.puts += st.puts;
            total.gets += st.gets;
            total.deletes += st.deletes;
            total.rmw_ops += st.rmw_ops;
            total.rmw_conflicts += st.rmw_conflicts;
            total.snapshots += st.snapshots;
            total.flushes += st.flushes;
            total.compactions += st.compactions;
            total.write_stalls += st.write_stalls;
        }
        total
    }

    /// Write-amplification counters summed across shards.
    pub fn write_amp(&self) -> lsm_storage::store::WriteAmp {
        let mut total = lsm_storage::store::WriteAmp::default();
        for s in &self.shards {
            let wa = s.write_amp();
            total.flushed += wa.flushed;
            total.compacted += wa.compacted;
        }
        total
    }

    /// Force-releases snapshot handles older than `ttl` (the shared
    /// registry, so one call covers every shard).
    pub fn expire_snapshots(&self, ttl: std::time::Duration) -> usize {
        self.snapshots.expire_older_than(ttl)
    }

    /// Timestamps of cross-shard batches the recovery audit found torn
    /// (some shards' entries lost to a crash) and dropped to preserve
    /// batch atomicity. Empty after a clean shutdown.
    pub fn torn_batches(&self) -> &[u64] {
        &self.torn_batches
    }

    /// Per-shard recovery reports, in range order (see `clsm-doctor
    /// --crash-audit`).
    pub fn recovery_reports(&self) -> Vec<&RecoveryReport> {
        self.shards.iter().map(Db::recovery_report).collect()
    }

    /// Gathers per-shard [`DoctorReport`]s plus the shared-oracle view.
    pub fn doctor(&self) -> ShardedDoctorReport {
        ShardedDoctorReport {
            boundaries: self.boundaries.clone(),
            time_counter: self.oracle.current_time(),
            snap_time: self.oracle.snap_time(),
            active_writes: self.oracle.active().len(),
            live_snapshots: self.snapshots.len(),
            shards: self.shards.iter().map(Db::doctor).collect(),
        }
    }
}

impl std::fmt::Debug for ShardedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("shards", &self.shards.len())
            .field("time_counter", &self.oracle.current_time())
            .finish()
    }
}

/// Unregisters the shared snapshot timestamp exactly once, when the
/// last holder (the snapshot handle or any iterator derived from it)
/// goes away.
struct SnapRegistration {
    snapshots: Arc<SnapshotRegistry>,
    ts: u64,
}

impl Drop for SnapRegistration {
    fn drop(&mut self) {
        self.snapshots.unregister(self.ts);
    }
}

/// A serializable read-only view across every shard at one shared
/// timestamp — the capability plain partitioning gives up (§2.2).
pub struct ShardedSnapshot {
    /// Per-shard views at the shared timestamp; they do not own the
    /// registry entry (see [`SnapRegistration`]).
    views: Vec<Snapshot>,
    boundaries: Vec<Vec<u8>>,
    registration: Arc<SnapRegistration>,
}

impl ShardedSnapshot {
    /// The snapshot's shared timestamp.
    pub fn timestamp(&self) -> u64 {
        self.registration.ts
    }

    /// Reads `key` as of this snapshot (single shard).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.views[partition_of(&self.boundaries, key)].get(key)
    }

    /// Returns up to `limit` live pairs with keys in `range`, in key
    /// order across shards. Accepts any standard range expression or a
    /// [`clsm_kv::ScanRange`].
    pub fn scan<R>(&self, range: R, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let (start, end) = bounds_to_keys(&range);
        let start = start.unwrap_or_default();
        let mut out = Vec::with_capacity(limit.min(1024));
        for view in &self.views[partition_of(&self.boundaries, &start)..] {
            for item in view.range(&start, end.as_deref())? {
                // Check before pushing so `limit = 0` yields nothing.
                if out.len() >= limit {
                    return Ok(out);
                }
                out.push(item?);
            }
            // Shard ranges are disjoint and ascending, so continuing
            // from the same `start` on the next shard keeps order.
        }
        Ok(out)
    }

    /// Consumes the snapshot into a cross-shard range iterator that
    /// keeps the registration alive for its duration.
    pub fn into_range_owned<R>(self, range: R) -> Result<ShardedIter>
    where
        R: std::ops::RangeBounds<Vec<u8>>,
    {
        let (start, end) = bounds_to_keys(&range);
        // Shards own disjoint ascending ranges, so the k-way merge of
        // per-shard iterators degenerates to ordered concatenation:
        // every shard filters to its own keys and the shard order *is*
        // the key order.
        let mut iters = Vec::with_capacity(self.views.len());
        for view in &self.views {
            let it = match &start {
                Some(s) => view.range(s, end.as_deref())?,
                None => match &end {
                    Some(e) => view.range_bounds(..e.clone())?,
                    None => view.iter()?,
                },
            };
            it.status()?;
            iters.push(it);
        }
        Ok(ShardedIter {
            iters,
            idx: 0,
            _views: self.views,
            _registration: self.registration,
        })
    }
}

impl std::fmt::Debug for ShardedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSnapshot")
            .field("ts", &self.registration.ts)
            .field("shards", &self.views.len())
            .finish()
    }
}

/// Iterator over a [`ShardedSnapshot`]'s live pairs across all shards,
/// in ascending key order. Inherits [`SnapshotIter`]'s semantics per
/// shard; the concatenation is ordered because shard ranges are
/// disjoint and ascending.
pub struct ShardedIter {
    iters: Vec<SnapshotIter>,
    idx: usize,
    /// Keeps the per-shard components pinned alongside the iterators.
    _views: Vec<Snapshot>,
    /// Keeps the shared timestamp registered (GC-safe) while
    /// iterating.
    _registration: Arc<SnapRegistration>,
}

impl Iterator for ShardedIter {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.idx < self.iters.len() {
            match self.iters[self.idx].next() {
                Some(item) => return Some(item),
                None => self.idx += 1,
            }
        }
        None
    }
}

/// Health snapshot of a [`ShardedDb`]: the shared-oracle view plus one
/// [`DoctorReport`] per shard.
#[derive(Debug, Clone)]
pub struct ShardedDoctorReport {
    /// Exclusive upper boundaries of all shards but the last.
    pub boundaries: Vec<Vec<u8>>,
    /// The shared oracle's `timeCounter`.
    pub time_counter: u64,
    /// The shared oracle's `snapTime`.
    pub snap_time: u64,
    /// In-flight writes in the shared `Active` set.
    pub active_writes: usize,
    /// Live handles in the shared snapshot registry.
    pub live_snapshots: usize,
    /// Per-shard reports, in range order.
    pub shards: Vec<DoctorReport>,
}

impl ShardedDoctorReport {
    /// Renders the combined report: shared-oracle summary first, then
    /// each shard's full [`DoctorReport::render`] under a
    /// `-- shard N --` header.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== clsm-doctor (sharded) ==");
        let bounds: Vec<String> = self.boundaries.iter().map(|b| hex_encode(b)).collect();
        let _ = writeln!(
            out,
            "shards: {}, boundaries: [{}]",
            self.shards.len(),
            bounds.join(", ")
        );
        let _ = writeln!(
            out,
            "oracle (shared): timeCounter={} snapTime={} activeWrites={} liveSnapshots={}",
            self.time_counter, self.snap_time, self.active_writes, self.live_snapshots
        );
        for (i, report) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "-- shard {i} --");
            out.push_str(&report.render());
        }
        out
    }

    /// `true` when any shard's watchdog flagged anything.
    pub fn unhealthy(&self) -> bool {
        self.shards.iter().any(DoctorReport::unhealthy)
    }
}

/// Audits cross-shard batch-commit markers across every shard's
/// recovered WAL records, dropping the surviving entries of torn
/// batches. Returns the timestamps dropped, ascending.
///
/// A batch is *torn* when a marker promises `total` entries at its
/// timestamp but fewer were recovered across all shards — some shard's
/// WAL tail (entries + marker, one atomic payload) was lost to a
/// crash. Dropping the survivors restores all-or-nothing visibility.
///
/// A marked timestamp at or below the highest *flushed* timestamp of
/// any shard is never dropped: a flush can only contain the batch's
/// entries after the cross-shard `write` finished appending on every shard (the
/// flush's exclusive lock excludes the batch's shared locks), so the
/// count fell short because a participant's WAL was legitimately
/// retired, not because data was lost. The converse corner — one shard
/// flushed its part durably while another shard's un-synced tail
/// vanished — is undetectable from the surviving WALs alone and is the
/// documented residual risk of asynchronous logging (§4: "a handful of
/// writes may be lost"); synchronous mode closes it because acked
/// batches are fsynced on every participant before the write
/// returns.
fn audit_cross_shard_batches(opened: &mut [(Store, Recovered)]) -> Vec<u64> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, rec) in opened.iter() {
        for &(ts, total) in &rec.batch_markers {
            let slot = expected.entry(ts).or_insert(0);
            *slot = (*slot).max(total);
        }
    }
    if expected.is_empty() {
        return Vec::new();
    }
    let mut observed: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, rec) in opened.iter() {
        for r in &rec.records {
            if expected.contains_key(&r.ts) {
                *observed.entry(r.ts).or_insert(0) += 1;
            }
        }
    }
    let max_flushed = opened.iter().map(|(_, r)| r.flushed_ts).max().unwrap_or(0);
    let torn: BTreeSet<u64> = expected
        .iter()
        .filter(|&(&ts, &total)| {
            ts > max_flushed && observed.get(&ts).copied().unwrap_or(0) < total
        })
        .map(|(&ts, _)| ts)
        .collect();
    if !torn.is_empty() {
        for (_, rec) in opened.iter_mut() {
            rec.records.retain(|r| !torn.contains(&r.ts));
        }
    }
    torn.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clsm_util::env::RealEnv;

    #[test]
    fn partition_of_matches_reference() {
        let boundaries = vec![b"c".to_vec(), b"m".to_vec(), b"t".to_vec()];
        assert_eq!(partition_of(&boundaries, b""), 0);
        assert_eq!(partition_of(&boundaries, b"b"), 0);
        assert_eq!(partition_of(&boundaries, b"c"), 1);
        assert_eq!(partition_of(&boundaries, b"cc"), 1);
        assert_eq!(partition_of(&boundaries, b"m"), 2);
        assert_eq!(partition_of(&boundaries, b"t"), 3);
        assert_eq!(partition_of(&boundaries, b"zzz"), 3);
        assert_eq!(partition_of(&[], b"anything"), 0);
    }

    #[test]
    fn default_boundaries_are_even_and_ascending() {
        for shards in [1usize, 2, 3, 4, 8, 16, 256] {
            let b = default_boundaries(shards);
            assert_eq!(b.len(), shards - 1);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "shards={shards}");
        }
        assert_eq!(default_boundaries(2), vec![vec![128u8]]);
        assert_eq!(
            default_boundaries(4),
            vec![vec![64u8], vec![128], vec![192]]
        );
    }

    #[test]
    fn hex_roundtrip_and_rejects_garbage() {
        for key in [&b""[..], b"\x00", b"abc", b"\xff\x00\x7f"] {
            assert_eq!(hex_decode(&hex_encode(key)).unwrap(), key);
        }
        assert!(hex_decode("abc").is_err()); // odd length
        assert!(hex_decode("zz").is_err()); // not hex
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "clsm-manifest-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_manifest(&RealEnv, &dir).unwrap().is_none());
        let boundaries = vec![b"g".to_vec(), b"p".to_vec()];
        write_manifest(&RealEnv, &dir, &boundaries).unwrap();
        assert_eq!(read_manifest(&RealEnv, &dir).unwrap(), Some(boundaries));

        std::fs::write(dir.join(MANIFEST), "not a manifest\n").unwrap();
        assert!(read_manifest(&RealEnv, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
