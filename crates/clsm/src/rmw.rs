//! Atomic read-modify-write operations (Algorithm 3).
//!
//! cLSM provides "fully-general non-blocking atomic read-modify-write"
//! over the lock-free skip list: the caller's function sees the current
//! value and decides the new one; optimistic conflict detection in the
//! list retries the operation when a concurrent write to the same key
//! slips in between the read and the insert.

use std::sync::atomic::Ordering;
use std::time::Instant;

use clsm_util::error::{Error, Result};
use clsm_util::trace::TraceId;

use lsm_storage::format::WriteRecord;
use lsm_storage::wal::SyncMode;

use crate::db::Db;

/// Flight-recorder span over the whole RMW critical section (read →
/// decide → conditional insert, including conflict retries).
static T_RMW: TraceId = TraceId::new("clsm.rmw.critical");
/// Flight-recorder event: one optimistic-conflict retry (Algorithm 3
/// line 13). The argument carries the rolled-back timestamp.
static T_RMW_CONFLICT: TraceId = TraceId::new("clsm.rmw.conflict");

/// What a read-modify-write function wants done with the key.
///
/// Re-exported from [`clsm_kv`] — the type lives in the interface
/// crate so [`clsm_kv::KvStore::read_modify_write`] can be exercised
/// black-box against every evaluated system.
pub use clsm_kv::{RmwDecision, RmwResult};

impl Db {
    /// Atomically applies `f` to the current value of `key`
    /// (Algorithm 3).
    ///
    /// `f` may run several times (once per conflict retry); it must be
    /// a pure function of its input. Each retry re-reads the key, so
    /// the paper's lock-free progress guarantee holds: a retry implies
    /// some other writer made progress.
    ///
    /// # Examples
    ///
    /// ```
    /// use clsm::{Db, Options, RmwDecision};
    ///
    /// let dir = std::env::temp_dir().join(format!("clsm-rmw-doc-{}", std::process::id()));
    /// let db = Db::open(&dir, Options::small_for_tests()).unwrap();
    /// // An atomic counter increment:
    /// db.read_modify_write(b"ctr", |cur| {
    ///     let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
    ///     RmwDecision::Update((n + 1).to_le_bytes().to_vec())
    /// })
    /// .unwrap();
    /// assert_eq!(db.get(b"ctr").unwrap(), Some(1u64.to_le_bytes().to_vec()));
    /// drop(db);
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn read_modify_write<F>(&self, key: &[u8], mut f: F) -> Result<RmwResult>
    where
        F: FnMut(Option<&[u8]>) -> RmwDecision,
    {
        let inner = self.inner();
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::ShuttingDown);
        }
        if key.is_empty() {
            return Err(Error::invalid_argument("empty keys are not supported"));
        }
        let began = Instant::now();
        inner.admit_write();

        // Algorithm 3 line 2/16: the whole operation runs under the
        // shared lock, so the component pointers cannot swing between
        // the read (line 4) and the insert (line 12).
        let _span = T_RMW.span_with(key.len() as u64);
        let _shared = inner.lock.lock_shared();
        loop {
            let (latest, in_mutable) = inner.read_latest_versioned(key)?;
            let current = latest.as_ref().and_then(|(_, v)| v.as_deref());

            let decision = f(current);
            let value: Option<&[u8]> = match &decision {
                RmwDecision::Update(v) => Some(v.as_slice()),
                RmwDecision::Delete => None,
                RmwDecision::Abort => {
                    return Ok(RmwResult {
                        committed: false,
                        previous: current.map(<[u8]>::to_vec),
                    });
                }
            };

            // The conflict check compares against the latest version
            // *in the mutable memtable*: versions living in `P'm`/`Cd`
            // cannot change (those components are immutable), so for
            // them the expectation is "no version in `Pm` yet".
            let expected = if in_mutable {
                latest.as_ref().map(|(ts, _)| *ts)
            } else {
                None
            };

            // Algorithm 3 line 9: the timestamp is acquired after
            // locating the read point.
            let stamp = inner.oracle.get_ts();
            let pm = inner.pm.load();
            let attempt = match pm.insert_if_latest(key, stamp.ts, value, expected) {
                Some(r) => r,
                None => {
                    // §3.3: RMW requires the skip-list memory component.
                    inner.oracle.publish(stamp);
                    return Err(Error::invalid_argument(
                        "read-modify-write requires MemtableKind::LockFreeSkipList",
                    ));
                }
            };
            match attempt {
                Ok(()) => {
                    let record = match value {
                        Some(v) => WriteRecord::put(stamp.ts, key, v),
                        None => WriteRecord::delete(stamp.ts, key),
                    };
                    inner.store.log(&[record], SyncMode::Async)?;
                    inner.oracle.publish(stamp);
                    drop(_shared);
                    if inner.opts.sync_writes {
                        inner.store.sync_wal()?;
                    }
                    inner.metrics.rmw_ops.inc();
                    inner.metrics.rmw_latency.record_duration(began.elapsed());
                    inner.maybe_schedule_flush();
                    return Ok(RmwResult {
                        committed: true,
                        previous: current.map(<[u8]>::to_vec),
                    });
                }
                Err(_conflict) => {
                    // Algorithm 3 line 13: roll the timestamp back and
                    // retry with a fresh read.
                    let ts = stamp.ts;
                    inner.oracle.publish(stamp);
                    inner.metrics.rmw_conflicts.inc();
                    T_RMW_CONFLICT.instant(ts);
                }
            }
        }
    }

    /// Stores `value` only if `key` has no live value (the "put-if-
    /// absent flavor" benchmarked in §5.1). Returns `true` if stored.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        let r = self.read_modify_write(key, |current| match current {
            Some(_) => RmwDecision::Abort,
            None => RmwDecision::Update(value.to_vec()),
        })?;
        Ok(r.committed)
    }
}
