//! Integration tests for the observability layer: after a mixed
//! workload, `Db::metrics()` must return populated latency histograms
//! for every operation class plus flush/compaction/storage metrics,
//! and the renderers must emit them.

use std::sync::Arc;

use clsm::{Db, Options, OptionsBuilder, RmwDecision, WriteBatch, WriteOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "clsm-metrics-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs puts, gets, deletes, batches, RMWs, snapshots, and scans from
/// several threads, with enough volume to force flushes.
fn mixed_workload(db: &Arc<Db>) {
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let db = Arc::clone(db);
            scope.spawn(move || {
                for i in 0..800u32 {
                    let key = format!("k{t}-{i:05}");
                    db.put(key.as_bytes(), &[b'v'; 64]).unwrap();
                    if i % 3 == 0 {
                        let _ = db.get(key.as_bytes()).unwrap();
                    }
                    if i % 7 == 0 {
                        db.delete(key.as_bytes()).unwrap();
                    }
                    if i % 50 == 0 {
                        db.read_modify_write(b"counter", |cur| {
                            let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
                            RmwDecision::Update((n + 1).to_le_bytes().to_vec())
                        })
                        .unwrap();
                    }
                }
            });
        }
        let db2 = Arc::clone(db);
        scope.spawn(move || {
            // Let some writes land first, so the snapshots' `getSnap`
            // times are non-zero even when a loaded scheduler starts
            // this thread well before the writers (the `snap_time`
            // gauge assertion below needs at least one snapshot taken
            // after a write).
            while db2.stats().puts == 0 {
                std::thread::yield_now();
            }
            // Each `range` takes a snapshot internally, so this also
            // exercises the snapshot-latency instrument.
            for _ in 0..20 {
                let mut iter = db2.range(b"k".to_vec()..).unwrap();
                for _ in 0..10 {
                    if iter.next().is_none() {
                        break;
                    }
                }
            }
        });
    });
    db.write(
        WriteBatch::from(
            &[
                (b"wb-a".to_vec(), Some(b"1".to_vec())),
                (b"wb-b".to_vec(), None),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();
    db.compact_to_quiescence().unwrap();
}

#[test]
fn metrics_populated_after_mixed_workload() {
    let dir = TempDir::new("mixed");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    mixed_workload(&db);

    let snap = db.metrics();

    // Per-op latency histograms: non-zero count, plausible and
    // monotone percentiles (acceptance criterion).
    for op in ["put", "get", "delete", "rmw", "snapshot", "scan"] {
        let name = format!("op.{op}.latency_ns");
        let h = snap
            .histograms
            .get(&name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(h.count > 0, "{name} recorded nothing");
        assert!(h.p50 > 0, "{name} p50 is zero");
        assert!(h.p50 <= h.p99, "{name} percentiles not monotone");
        assert!(h.min <= h.p50 && h.p99 <= h.max.max(h.p99), "{name} bounds");
    }
    assert!(snap.histograms["op.write_batch.latency_ns"].count >= 1);

    // Counters line up with the workload shape (`write_batch` bumps
    // the put counter once per batch, the historical semantics).
    assert_eq!(snap.counters["db.puts"], 4 * 800 + 1);
    assert_eq!(snap.counters["db.gets"], 4 * 800u64.div_ceil(3));
    assert_eq!(snap.counters["db.deletes"], 4 * 800u64.div_ceil(7));
    assert_eq!(snap.counters["db.rmw_ops"], 4 * 16);
    assert_eq!(snap.counters["db.snapshots"], 20);

    // The put volume (4 × 800 × 64 B values ≫ the tiny test memtable)
    // must have forced flushes, recorded by both the db-level counter
    // and the storage layer's duration/bytes instruments.
    assert!(snap.counters["db.flushes"] > 0, "no flush recorded");
    assert!(snap.histograms["storage.flush_ns"].count > 0);
    assert!(snap.counters["storage.bytes_flushed"] > 0);
    // WAL sync latency is only exercised by synchronous logging (see
    // the dedicated test below); here just check registration.
    assert!(snap.histograms.contains_key("storage.wal_sync_ns"));

    // Oracle pressure gauges are registered and sane: nothing is
    // in flight after the workload joins.
    assert_eq!(snap.gauges["oracle.active_writes"], 0);
    assert_eq!(snap.gauges["oracle.live_snapshots"], 0);
    assert!(snap.gauges["oracle.snap_time"] > 0);
    assert!(snap.gauges.contains_key("db.memtable_bytes"));

    // The legacy stats view is derived from the same counters.
    let stats = db.stats();
    assert_eq!(stats.puts, snap.counters["db.puts"]);
    assert_eq!(stats.flushes, snap.counters["db.flushes"]);

    // Renderers carry the data.
    let text = snap.to_text();
    assert!(text.contains("op.put.latency_ns"));
    assert!(text.contains("db.puts"));
    let json = snap.to_json();
    assert!(json.contains("\"op.get.latency_ns\""));
    assert!(json.contains("\"storage.bytes_flushed\""));
}

#[test]
fn metrics_are_cheap_and_isolated_per_db() {
    // Two stores must not share instruments.
    let d1 = TempDir::new("iso1");
    let d2 = TempDir::new("iso2");
    let db1 = Db::open(&d1.0, Options::small_for_tests()).unwrap();
    let db2 = Db::open(&d2.0, Options::small_for_tests()).unwrap();
    db1.put(b"a", b"1").unwrap();
    db1.put(b"b", b"2").unwrap();
    assert_eq!(db1.metrics().counters["db.puts"], 2);
    assert_eq!(db2.metrics().counters["db.puts"], 0);
}

#[test]
fn wal_sync_latency_recorded_with_synchronous_logging() {
    let dir = TempDir::new("sync");
    let opts = OptionsBuilder::from_options(Options::small_for_tests())
        .sync_writes(true)
        .build()
        .unwrap();
    let db = Db::open(&dir.0, opts).unwrap();
    for i in 0..50u32 {
        db.put(format!("sync{i:04}").as_bytes(), b"v").unwrap();
    }
    let snap = db.metrics();
    let h = &snap.histograms["storage.wal_sync_ns"];
    assert!(
        h.count >= 50,
        "sync logging must fsync per write, saw {}",
        h.count
    );
    assert!(h.p50 > 0);
}

#[test]
fn write_stall_metrics_appear_under_pressure() {
    // A memtable budget far below the write volume forces stalls
    // (§5.3's back-pressure); the stall counter and duration must move.
    let dir = TempDir::new("stall");
    let mut opts = Options::small_for_tests();
    opts.memtable_bytes = 4 * 1024;
    let db = Db::open(&dir.0, opts).unwrap();
    for i in 0..3000u32 {
        db.put(format!("s{i:06}").as_bytes(), &[b'x'; 128]).unwrap();
    }
    db.compact_to_quiescence().unwrap();
    let snap = db.metrics();
    assert!(snap.counters["db.flushes"] > 0);
    // Stalls are timing-dependent; only check coherence, not presence.
    if snap.counters["db.write_stalls"] > 0 {
        assert!(snap.counters["db.write_stall_ns"] > 0);
    }
}
