//! Integration tests for the range-sharded store: cross-shard batch
//! atomicity under concurrency, shared-oracle gauge de-duplication,
//! recovery through the shard manifest, and the sharded doctor report.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use clsm::{Options, ShardedDb, WriteBatch, WriteOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "clsm-sharded-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Four letter-boundary shards: "a…" → 0, "e…" → 1, "p…" → 2, "z…" → 3.
fn open_four(dir: &std::path::Path) -> ShardedDb {
    ShardedDb::open_with_boundaries(
        dir,
        Options::small_for_tests(),
        vec![b"d".to_vec(), b"m".to_vec(), b"t".to_vec()],
    )
    .unwrap()
}

/// The headline serializability property: a batch spanning two shards
/// is stamped with ONE shared-oracle timestamp, so no snapshot — taken
/// from any thread, at any moment — may observe half of it.
///
/// Four writer threads each rewrite a pair of keys on opposite ends of
/// the key space (shard 0 and shard 3) in a single `write_batch`, both
/// carrying the same sequence number. Four scanner threads take
/// snapshots and assert the two halves always agree.
#[test]
fn cross_shard_batches_are_never_torn() {
    let dir = TempDir::new("torn");
    let db = Arc::new(open_four(&dir.0));
    assert_eq!(db.num_shards(), 4);

    const WRITERS: usize = 4;
    const SCANNERS: usize = 4;
    const BATCHES: u64 = 300;

    // Seed sequence 0 so scanners always find both keys.
    for t in 0..WRITERS {
        db.write(
            WriteBatch::from(
                &[
                    (
                        format!("a-pair-{t}").into_bytes(),
                        Some(0u64.to_be_bytes().to_vec()),
                    ),
                    (
                        format!("z-pair-{t}").into_bytes(),
                        Some(0u64.to_be_bytes().to_vec()),
                    ),
                ][..],
            ),
            &WriteOptions::new(),
        )
        .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for seq in 1..=BATCHES {
                    let v = seq.to_be_bytes().to_vec();
                    db.write(
                        WriteBatch::from(
                            &[
                                (format!("a-pair-{t}").into_bytes(), Some(v.clone())),
                                (format!("z-pair-{t}").into_bytes(), Some(v)),
                            ][..],
                        ),
                        &WriteOptions::new(),
                    )
                    .unwrap();
                }
            });
        }
        for _ in 0..SCANNERS {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot().unwrap();
                    for t in 0..WRITERS {
                        let a = snap.get(format!("a-pair-{t}").as_bytes()).unwrap();
                        let z = snap.get(format!("z-pair-{t}").as_bytes()).unwrap();
                        assert_eq!(
                            a, z,
                            "torn cross-shard batch observed for writer {t}: \
                             shard 0 and shard 3 halves differ within one snapshot"
                        );
                    }
                }
            });
        }
        // Scanners run for the writers' whole lifetime; the scope only
        // joins writers once every scanner has been told to stop after
        // the writers finish. Writers finish first because they are
        // bounded; flag them done from a watcher thread.
        let db_done = Arc::clone(&db);
        let stop_done = Arc::clone(&stop);
        scope.spawn(move || {
            // Wait until every writer has published its final batch.
            loop {
                let snap = db_done.snapshot().unwrap();
                let done = (0..WRITERS).all(|t| {
                    snap.get(format!("a-pair-{t}").as_bytes())
                        .unwrap()
                        .map(|v| v == BATCHES.to_be_bytes().to_vec())
                        .unwrap_or(false)
                });
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            stop_done.store(true, Ordering::Relaxed);
        });
    });

    // Final state: every pair agrees at the last sequence number.
    for t in 0..WRITERS {
        let a = db.get(format!("a-pair-{t}").as_bytes()).unwrap().unwrap();
        let z = db.get(format!("z-pair-{t}").as_bytes()).unwrap().unwrap();
        assert_eq!(a, BATCHES.to_be_bytes().to_vec());
        assert_eq!(a, z);
    }
}

/// A snapshot taken between two cross-shard batches sees all of the
/// first and none of the second, and a merged scan stitches the shards
/// in global key order.
#[test]
fn cross_shard_snapshot_is_frozen_and_ordered() {
    let dir = TempDir::new("frozen");
    let db = open_four(&dir.0);

    db.write(
        WriteBatch::from(
            &[
                (b"apple".to_vec(), Some(b"1".to_vec())),
                (b"zebra".to_vec(), Some(b"1".to_vec())),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();
    let snap = db.snapshot().unwrap();
    db.write(
        WriteBatch::from(
            &[
                (b"apple".to_vec(), Some(b"2".to_vec())),
                (b"grape".to_vec(), Some(b"2".to_vec())),
                (b"zebra".to_vec(), None),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();

    assert_eq!(snap.get(b"apple").unwrap(), Some(b"1".to_vec()));
    assert_eq!(snap.get(b"grape").unwrap(), None);
    assert_eq!(snap.get(b"zebra").unwrap(), Some(b"1".to_vec()));
    let keys: Vec<Vec<u8>> = snap
        .scan(.., 10)
        .unwrap()
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(keys, vec![b"apple".to_vec(), b"zebra".to_vec()]);

    // A fresh snapshot sees the moved-on state.
    let live: Vec<Vec<u8>> = db
        .snapshot()
        .unwrap()
        .scan(.., 10)
        .unwrap()
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(live, vec![b"apple".to_vec(), b"grape".to_vec()]);
}

/// N shards share one oracle, so the `oracle.*` gauges must be
/// registered exactly once (on shard 0) — a merged snapshot that
/// summed N copies would report N× the true active-writer count.
#[test]
fn shared_oracle_gauges_register_once() {
    let dir = TempDir::new("gauges");
    let db = open_four(&dir.0);
    db.put(b"apple", b"x").unwrap();
    db.put(b"zebra", b"y").unwrap();
    let _snap = db.snapshot().unwrap();

    let per_shard = db.shard_metrics();
    assert_eq!(per_shard.len(), 4);
    for (label, snap) in &per_shard {
        let has_oracle = snap.gauges.contains_key("oracle.snap_time")
            && snap.gauges.contains_key("oracle.live_snapshots");
        if label == "shard-000" {
            assert!(has_oracle, "primary shard must export the oracle gauges");
        } else {
            assert!(
                !has_oracle,
                "{label} duplicates the shared oracle gauges — they would \
                 be summed {}× in the merged snapshot",
                per_shard.len()
            );
        }
    }

    // The merged view therefore reports the oracle's true state, not a
    // multiple of it.
    let merged = db.metrics();
    assert_eq!(
        merged.gauges.get("oracle.live_snapshots"),
        Some(&1),
        "one live snapshot must be reported exactly once across shards"
    );
    assert_eq!(
        merged.gauges.get("oracle.snap_time"),
        per_shard[0].1.gauges.get("oracle.snap_time"),
        "merged snap_time must equal the primary shard's, not a sum"
    );
}

/// Reopening a sharded directory recovers the manifest (ignoring the
/// requested shard count), every shard's WAL, and advances the shared
/// oracle past every recovered timestamp so new writes supersede old.
#[test]
fn sharded_reopen_recovers_manifest_and_oracle() {
    let dir = TempDir::new("reopen");
    {
        let db = open_four(&dir.0);
        db.write(
            WriteBatch::from(
                &[
                    (b"apple".to_vec(), Some(b"old".to_vec())),
                    (b"zebra".to_vec(), Some(b"old".to_vec())),
                ][..],
            ),
            &WriteOptions::new(),
        )
        .unwrap();
    }
    // Ask for 2 shards: the on-disk manifest (4 shards) wins.
    let mut opts = Options::small_for_tests();
    opts.shards = 2;
    let db = ShardedDb::open(&dir.0, opts).unwrap();
    assert_eq!(db.num_shards(), 4);
    assert_eq!(db.get(b"apple").unwrap(), Some(b"old".to_vec()));
    assert_eq!(db.get(b"zebra").unwrap(), Some(b"old".to_vec()));

    // New writes get timestamps above the recovered ones.
    db.put(b"apple", b"new").unwrap();
    assert_eq!(db.get(b"apple").unwrap(), Some(b"new".to_vec()));
}

/// The sharded doctor report renders shared-oracle state once plus one
/// full per-shard section each.
#[test]
fn sharded_doctor_report_renders() {
    let dir = TempDir::new("doctor");
    let db = open_four(&dir.0);
    db.put(b"apple", b"x").unwrap();
    db.put(b"zebra", b"y").unwrap();
    let report = db.doctor();
    let text = report.render();
    assert!(text.contains("== clsm-doctor (sharded) =="), "{text}");
    assert!(text.contains("shards: 4"), "{text}");
    assert!(text.contains("oracle (shared): timeCounter="), "{text}");
    for i in 0..4 {
        assert!(text.contains(&format!("-- shard {i} --")), "{text}");
    }
    assert!(!report.unhealthy(), "fresh db must be healthy:\n{text}");
}
