//! Property: while a writer applies an arbitrary sequence of puts and
//! deletes to a `ShardedDb`, every concurrent snapshot scan equals the
//! state produced by *some prefix* of the applied-write log — scans
//! are serializable (§3.2), never torn across the write order.
//!
//! The admissible prefix window for one scan is bracketed by the
//! applied-op counter read around snapshot acquisition:
//!
//! - lower bound `lo`: ops completed before `snapshot()` was invoked
//!   have published their stamps, and with a single writer no earlier
//!   stamp is still pending, so the snapshot's timestamp covers them
//!   all — they must be visible;
//! - upper bound `hi + 1`: ops that start after `snapshot()` returns
//!   draw stamps above the snapshot's timestamp and must be invisible;
//!   the one op possibly in flight while the snapshot was stamped may
//!   land on either side.
//!
//! Visibility is a timestamp cut and the writer stamps in op order, so
//! the visible set is prefix-closed: the scan must equal exactly one
//! of those prefixes, byte for byte.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use clsm::{Options, ShardedDb};
use proptest::prelude::*;

/// Materializes the state after applying the first `p` ops. Put values
/// are the op's index, so distinct prefixes rarely collide.
fn apply_prefix(ops: &[(Vec<u8>, bool)], p: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut m = BTreeMap::new();
    for (i, (key, is_put)) in ops[..p].iter().enumerate() {
        if *is_put {
            m.insert(key.clone(), (i as u32).to_le_bytes().to_vec());
        } else {
            m.remove(key);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_scans_observe_a_prefix_of_the_write_log(
        // (key, is_put) over a tiny alphabet so keys collide often and
        // deletes actually kill live versions.
        ops in prop::collection::vec(
            (prop::collection::vec(0u8..4, 1..4), any::<bool>()),
            20..120,
        ),
    ) {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "clsm-prop-prefix-{}-{stamp}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // Boundaries inside the key alphabet, so the log straddles all
        // four shards and scans exercise the cross-shard merge.
        let db = Arc::new(ShardedDb::open_with_boundaries(
            &dir,
            Options::small_for_tests(),
            vec![vec![1], vec![2], vec![3]],
        ).unwrap());
        let applied = Arc::new(AtomicUsize::new(0));
        let total = ops.len();

        let writer = {
            let db = Arc::clone(&db);
            let applied = Arc::clone(&applied);
            let ops = ops.clone();
            std::thread::spawn(move || {
                for (i, (key, is_put)) in ops.iter().enumerate() {
                    if *is_put {
                        db.put(key, &(i as u32).to_le_bytes()).unwrap();
                    } else {
                        db.delete(key).unwrap();
                    }
                    applied.store(i + 1, Ordering::Release);
                }
            })
        };

        // Scan as fast as possible while the writer runs, then once
        // more after it finishes — that last round has lo == total, so
        // it demands the complete final state.
        let mut done = false;
        while !done {
            let lo = applied.load(Ordering::Acquire);
            done = lo == total;
            let snap = db.snapshot().unwrap();
            let hi = (applied.load(Ordering::Acquire) + 1).min(total);
            let scan = snap.scan(.., usize::MAX).unwrap();
            let matched = (lo..=hi).any(|p| {
                apply_prefix(&ops, p).into_iter().collect::<Vec<_>>() == scan
            });
            prop_assert!(
                matched,
                "scan of {} pairs matches no prefix in {lo}..={hi} of {total} ops",
                scan.len()
            );
        }
        writer.join().unwrap();

        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
