//! Crash-consistency sweep at the database layer.
//!
//! Each configuration of the matrix — {synchronous, asynchronous}
//! logging × {1 shard, 4 shards} — runs a deterministic workload of
//! puts, deletes, and cross-shard atomic batches against a seeded
//! [`FaultEnv`], crashing at every durability-relevant operation the
//! clean run performs. After each crash the env simulates power loss
//! and the database is reopened on the surviving bytes.
//!
//! Invariants checked at every failpoint:
//!
//! - recovery succeeds (no panic, no error, no garbage records);
//! - every write acknowledged under synchronous logging survives;
//! - cross-shard batches are all-or-nothing: either every entry of a
//!   batch is visible or none is (the recovery audit drops survivors
//!   of torn batches);
//! - every recovered value is one that was actually written.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use clsm::{Db, Options, ShardedDb, WriteBatch, WriteOptions};
use clsm_util::env::{Env, FaultEnv};

/// First key byte per slot, chosen to land in all four default shards
/// of a 4-way split (boundaries 0x40/0x80/0xc0).
fn lead(slot: usize) -> u8 {
    [0x30, 0x50, 0x90, 0xd0][slot % 4]
}

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Del(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
}

fn value(tag: &str, i: usize) -> Vec<u8> {
    let mut v = format!("{tag}{i:03}-").into_bytes();
    v.resize(96, (i * 7 + 13) as u8);
    v
}

/// The deterministic workload: unique-keyed puts across all shards, a
/// couple of deletes of earlier keys, and cross-shard batches whose
/// keys are touched by no other op (so atomicity is checkable from the
/// final state alone).
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..18 {
        ops.push(Op::Put(vec![lead(i), b'k', i as u8], value("v", i)));
    }
    ops.push(Op::Del(vec![lead(2), b'k', 2]));
    ops.push(Op::Del(vec![lead(5), b'k', 5]));
    for b in 0..3 {
        ops.push(Op::Batch(
            (0..4)
                .map(|j| {
                    (
                        vec![lead(j), b'B', b as u8, j as u8],
                        Some(value("b", b * 4 + j)),
                    )
                })
                .collect(),
        ));
    }
    for i in 18..22 {
        ops.push(Op::Put(vec![lead(i), b'k', i as u8], value("v", i)));
    }
    ops
}

enum Sys {
    Mono(Db),
    Sharded(ShardedDb),
}

impl Sys {
    fn open(
        path: &Path,
        env: Arc<dyn Env>,
        sync: bool,
        shards: usize,
        wal_stripes: usize,
    ) -> clsm_util::Result<Sys> {
        let mut opts = Options::small_for_tests();
        opts.sync_writes = sync;
        opts.watchdog.enabled = false;
        opts.store.env = env;
        opts.store.wal_stripes = wal_stripes;
        if shards == 1 {
            Ok(Sys::Mono(opts.open(path)?))
        } else {
            Ok(Sys::Sharded(opts.open_sharded(path, shards)?))
        }
    }

    fn apply(&self, op: &Op) -> clsm_util::Result<()> {
        match (self, op) {
            (Sys::Mono(db), Op::Put(k, v)) => db.put(k, v),
            (Sys::Mono(db), Op::Del(k)) => db.delete(k),
            (Sys::Mono(db), Op::Batch(b)) => {
                db.write(WriteBatch::from(b.as_slice()), &WriteOptions::new())
            }
            (Sys::Sharded(db), Op::Put(k, v)) => db.put(k, v),
            (Sys::Sharded(db), Op::Del(k)) => db.delete(k),
            (Sys::Sharded(db), Op::Batch(b)) => {
                db.write(WriteBatch::from(b.as_slice()), &WriteOptions::new())
            }
        }
    }

    fn get(&self, key: &[u8]) -> clsm_util::Result<Option<Vec<u8>>> {
        match self {
            Sys::Mono(db) => db.get(key),
            Sys::Sharded(db) => db.get(key),
        }
    }
}

/// Issues ops until one fails or the env dies (a crashed process stops
/// issuing I/O); returns `(completed, attempted)`. An op that returned
/// an error still counts as attempted: a crash mid-op can strike after
/// the WAL append but before the ack, and the appended bytes may
/// survive power loss — the op's effect is then legitimately visible
/// on recovery even though it was never acknowledged.
fn issue(sys: &Sys, ops: &[Op], fault: &FaultEnv) -> (usize, usize) {
    let mut done = 0;
    for op in ops {
        if fault.is_poisoned() {
            break;
        }
        if sys.apply(op).is_err() {
            return (done, done + 1);
        }
        done += 1;
    }
    (done, done)
}

/// Verifies the reopened state against the workload.
///
/// `acked` ops are guaranteed durable; ops in `acked..issued` raced the
/// crash and may or may not have survived. Per key, the recovered value
/// must be the effect of the last acked op on it, or of any later
/// issued op. Batch keys must be all-present or all-absent.
/// Per-key effect timeline: (op index, value or tombstone).
type Timeline = BTreeMap<Vec<u8>, Vec<(usize, Option<Vec<u8>>)>>;

fn verify(sys: &Sys, ops: &[Op], acked: usize, issued: usize, ctx: &str) {
    let mut timeline = Timeline::new();
    for (i, op) in ops.iter().enumerate().take(issued) {
        match op {
            Op::Put(k, v) => timeline
                .entry(k.clone())
                .or_default()
                .push((i, Some(v.clone()))),
            Op::Del(k) => timeline.entry(k.clone()).or_default().push((i, None)),
            Op::Batch(b) => {
                for (k, v) in b {
                    timeline.entry(k.clone()).or_default().push((i, v.clone()));
                }
            }
        }
    }

    for (key, effects) in &timeline {
        let got = sys
            .get(key)
            .unwrap_or_else(|e| panic!("{ctx}: get failed: {e}"));
        let base = effects
            .iter()
            .rev()
            .find(|(i, _)| *i < acked)
            .map(|(_, v)| v.clone());
        let mut allowed: Vec<Option<Vec<u8>>> = vec![base.clone().unwrap_or(None)];
        for (i, v) in effects {
            if *i >= acked {
                allowed.push(v.clone());
            }
        }
        // With nothing acked on this key, absence is always legal.
        if base.is_none() {
            allowed.push(None);
        }
        assert!(
            allowed.contains(&got),
            "{ctx}: key {key:02x?} recovered to {got:?}, allowed {allowed:?}"
        );
    }

    // Batch atomicity from the final state: batch keys are unique to
    // their batch, so partial visibility is a torn batch.
    for (i, op) in ops.iter().enumerate().take(issued) {
        if let Op::Batch(b) = op {
            let present: Vec<bool> = b
                .iter()
                .map(|(k, v)| sys.get(k).unwrap().as_ref() == v.as_ref())
                .collect();
            let count = present.iter().filter(|p| **p).count();
            assert!(
                count == 0 || count == b.len(),
                "{ctx}: batch at op {i} is torn: {present:?}"
            );
            if i < acked {
                assert_eq!(count, b.len(), "{ctx}: acked batch at op {i} lost");
            }
        }
    }
}

fn sweep(sync: bool, shards: usize, wal_stripes: usize) {
    let dir = Path::new("/db");
    let ops = workload();
    let seed = 0xBEEF ^ (shards as u64) << 8 ^ (wal_stripes as u64) << 16 ^ sync as u64;

    // Clean run: everything lands, and we learn the op budget.
    let clean = FaultEnv::new(seed);
    let sys = Sys::open(dir, Arc::new(clean.clone()), sync, shards, wal_stripes).unwrap();
    assert_eq!(issue(&sys, &ops, &clean), (ops.len(), ops.len()));
    drop(sys);
    let reopened = Sys::open(dir, Arc::new(clean.clone()), sync, shards, wal_stripes).unwrap();
    verify(&reopened, &ops, ops.len(), ops.len(), "clean");
    drop(reopened);
    let total_ops = clean.op_count();
    assert!(total_ops > 0);

    for crash_at in 1..=total_ops {
        let ctx = format!(
            "sync={sync} shards={shards} wal_stripes={wal_stripes} \
             failpoint={crash_at}/{total_ops}"
        );
        let fault = FaultEnv::new(seed);
        let sys = Sys::open(dir, Arc::new(fault.clone()), sync, shards, wal_stripes).unwrap();
        fault.crash_after(crash_at);
        let (completed, attempted) = issue(&sys, &ops, &fault);
        // Under synchronous logging every completed op was fsync-acked;
        // under asynchronous logging completion promises nothing. An
        // attempted-but-failed op is never acked, but its effect may
        // still surface (`issue` docs).
        let acked = if sync { completed } else { 0 };
        drop(sys);

        fault.power_loss();
        let reopened = Sys::open(dir, Arc::new(fault.clone()), sync, shards, wal_stripes)
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        verify(&reopened, &ops, acked, attempted, &ctx);
        drop(reopened);
    }
}

#[test]
fn crash_sweep_sync_1shard() {
    sweep(true, 1, 1);
}

#[test]
fn crash_sweep_sync_4shards() {
    sweep(true, 4, 1);
}

#[test]
fn crash_sweep_async_1shard() {
    sweep(false, 1, 1);
}

#[test]
fn crash_sweep_async_4shards() {
    sweep(false, 4, 1);
}

/// Striped WAL (4 files, appends spread by writing thread): every
/// failpoint in file creation, append, fsync, and rotation of *any*
/// stripe must recover to a consistent timestamp-merged history, and
/// synchronously acked ops must survive whichever stripe the crash hit.
#[test]
fn crash_sweep_sync_1shard_striped_wal() {
    sweep(true, 1, 4);
}

/// The full per-shard-WAL fan-out: 4 shards × 2 WAL stripes each. The
/// workload's cross-shard batches put their entries + batch marker into
/// one stripe per shard while other stripes churn, so the torn-batch
/// audit (count entries at the marked timestamp across all shards'
/// WALs) is exercised mid-batch at every failpoint.
#[test]
fn crash_sweep_sync_4shards_striped_wal() {
    sweep(true, 4, 2);
}

#[test]
fn crash_sweep_async_striped_wal() {
    sweep(false, 4, 2);
}

/// Failpoints across coalesced commit groups: several threads push
/// multi-op batches through the group-commit pipeline at once, so one
/// leader stamps, logs, and publishes many logical batches as a single
/// WAL append. A crash at any point must keep every *logical* batch
/// all-or-nothing (never torn at the coalescing boundary), and every
/// batch acked under synchronous logging must survive.
#[test]
fn crash_sweep_coalesced_groups() {
    let dir = Path::new("/gcdb");
    let seed = 0x6C5A;
    let threads = 3u8;
    let batches_per_thread = 8u8;
    let entries = 3u8;

    let key = |t: u8, b: u8, j: u8| vec![b'g', t, b, j];
    let open = |fault: &FaultEnv| -> clsm_util::Result<Db> {
        let mut opts = Options::small_for_tests();
        opts.sync_writes = true;
        opts.watchdog.enabled = false;
        opts.store.env = Arc::new(fault.clone());
        opts.open(dir)
    };
    // Runs the concurrent workload; returns the set of (thread, batch)
    // pairs whose write was acked before the crash.
    let run = |db: &Arc<Db>| -> Vec<(u8, u8)> {
        let acked = Arc::new(std::sync::Mutex::new(Vec::new()));
        let barrier = Arc::new(std::sync::Barrier::new(threads as usize));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(db);
                let acked = Arc::clone(&acked);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for b in 0..batches_per_thread {
                        if fault_poisoned(&db) {
                            break;
                        }
                        let batch: WriteBatch = (0..entries)
                            .map(|j| (key(t, b, j), Some(value("g", (t * 16 + b) as usize))))
                            .collect();
                        if db.write(batch, &WriteOptions::new()).is_err() {
                            break;
                        }
                        acked.lock().unwrap().push((t, b));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        Arc::try_unwrap(acked).unwrap().into_inner().unwrap()
    };

    let clean = FaultEnv::new(seed);
    let db = Arc::new(open(&clean).unwrap());
    assert_eq!(run(&db).len(), (threads * batches_per_thread) as usize);
    drop(db);
    let total_ops = clean.op_count();
    assert!(total_ops > 0);

    for crash_at in 1..=total_ops {
        let ctx = format!("coalesced failpoint={crash_at}/{total_ops}");
        let fault = FaultEnv::new(seed);
        let db = Arc::new(open(&fault).unwrap());
        fault.crash_after(crash_at);
        let acked = run(&db);
        drop(db);

        fault.power_loss();
        let db = open(&fault).unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        for t in 0..threads {
            for b in 0..batches_per_thread {
                let present = (0..entries)
                    .filter(|&j| db.get(&key(t, b, j)).unwrap().is_some())
                    .count();
                assert!(
                    present == 0 || present == entries as usize,
                    "{ctx}: logical batch ({t},{b}) torn: {present}/{entries} entries"
                );
                if acked.contains(&(t, b)) {
                    assert_eq!(
                        present, entries as usize,
                        "{ctx}: sync-acked batch ({t},{b}) lost"
                    );
                }
            }
        }
        drop(db);
    }
}

/// `run` helper above stops issuing once the store reports shutdown or
/// the env died; probing with a read keeps the loop honest without
/// threading the env into every closure.
fn fault_poisoned(db: &Db) -> bool {
    db.get(b"\xffprobe").is_err()
}

/// Failpoints inside the flush/manifest path: a small memtable forces
/// background flushes mid-workload, so the sweep crosses memtable
/// rotation, SSTable writes, manifest installs, and WAL retirement.
/// Every synchronously acked put must survive whichever of those ops
/// the crash lands on.
#[test]
fn crash_sweep_through_flushes() {
    let dir = Path::new("/db");
    let seed = 0xF1A5;
    let keys: Vec<Vec<u8>> = (0..40u8).map(|i| vec![lead(i as usize), b'f', i]).collect();

    let open = |fault: &FaultEnv| -> clsm_util::Result<Db> {
        let mut opts = Options::small_for_tests();
        opts.sync_writes = true;
        opts.watchdog.enabled = false;
        opts.memtable_bytes = 8 * 1024;
        opts.store.env = Arc::new(fault.clone());
        opts.open(dir)
    };
    let run = |db: &Db, fault: &FaultEnv| -> usize {
        let mut acked = 0;
        for (i, key) in keys.iter().enumerate() {
            if fault.is_poisoned() || db.put(key, &value("f", i)).is_err() {
                break;
            }
            acked += 1;
        }
        // Give an in-flight background flush a moment to cross the
        // failpoint (or finish) before the "machine" loses power.
        for _ in 0..40 {
            if fault.is_poisoned() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        acked
    };

    let clean = FaultEnv::new(seed);
    let db = open(&clean).unwrap();
    assert_eq!(run(&db, &clean), keys.len());
    db.compact_to_quiescence().unwrap();
    drop(db);
    let total_ops = clean.op_count();

    for crash_at in 1..=total_ops {
        let fault = FaultEnv::new(seed);
        let db = open(&fault).unwrap();
        fault.crash_after(crash_at);
        let acked = run(&db, &fault);
        drop(db);

        fault.power_loss();
        let db = open(&fault)
            .unwrap_or_else(|e| panic!("flush sweep: recovery failed at {crash_at}: {e}"));
        for (i, key) in keys.iter().enumerate().take(acked) {
            assert_eq!(
                db.get(key).unwrap(),
                Some(value("f", i)),
                "flush sweep failpoint {crash_at}: acked key {i} lost \
                 (report: {:?})",
                db.recovery_report()
            );
        }
        drop(db);
    }
}
