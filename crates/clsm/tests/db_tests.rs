//! Functional tests of the cLSM database: CRUD, flush, recovery,
//! snapshots, scans, and RMW.

use clsm::{Db, Options, RmwDecision, WriteBatch, WriteOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "clsm-db-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_small(dir: &TempDir) -> Db {
    Db::open(dir.path(), Options::small_for_tests()).unwrap()
}

#[test]
fn put_get_delete_roundtrip() {
    let dir = TempDir::new("crud");
    let db = open_small(&dir);
    assert_eq!(db.get(b"k").unwrap(), None);
    db.put(b"k", b"v1").unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(b"v1".to_vec()));
    db.put(b"k", b"v2").unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
    db.delete(b"k").unwrap();
    assert_eq!(db.get(b"k").unwrap(), None);
    // Re-put after delete works.
    db.put(b"k", b"v3").unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(b"v3".to_vec()));
}

#[test]
fn empty_key_rejected_empty_value_allowed() {
    let dir = TempDir::new("edge");
    let db = open_small(&dir);
    assert!(db.put(b"", b"x").is_err());
    db.put(b"k", b"").unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(Vec::new()));
}

#[test]
fn large_values_roundtrip() {
    let dir = TempDir::new("large");
    let db = open_small(&dir);
    let big = vec![0x5au8; 300_000]; // much larger than the memtable
    db.put(b"big", &big).unwrap();
    assert_eq!(db.get(b"big").unwrap(), Some(big.clone()));
    db.compact_to_quiescence().unwrap();
    assert_eq!(db.get(b"big").unwrap(), Some(big));
}

#[test]
fn data_survives_flush_and_compaction() {
    let dir = TempDir::new("flush");
    let db = open_small(&dir);
    let n = 2000u32;
    for i in 0..n {
        db.put(
            format!("key{i:06}").as_bytes(),
            format!("value-{i}").as_bytes(),
        )
        .unwrap();
    }
    db.compact_to_quiescence().unwrap();
    let counts = db.level_file_counts();
    assert!(
        counts.iter().sum::<usize>() > 0,
        "nothing flushed: {counts:?}"
    );
    for i in (0..n).step_by(97) {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap(),
            Some(format!("value-{i}").into_bytes()),
            "key {i}"
        );
    }
    assert!(db.stats().flushes > 0);
}

#[test]
fn deletes_survive_flush() {
    let dir = TempDir::new("del-flush");
    let db = open_small(&dir);
    db.put(b"gone", b"v").unwrap();
    db.compact_to_quiescence().unwrap(); // value now on disk
    db.delete(b"gone").unwrap();
    db.compact_to_quiescence().unwrap(); // tombstone now on disk
    assert_eq!(db.get(b"gone").unwrap(), None);
}

#[test]
fn recovery_replays_wal() {
    let dir = TempDir::new("recover");
    {
        let db = open_small(&dir);
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.delete(b"a").unwrap();
        // No explicit flush: data only in WAL + memtable.
    }
    let db = open_small(&dir);
    assert_eq!(db.get(b"a").unwrap(), None);
    assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
    // Writes continue with fresh timestamps.
    db.put(b"a", b"3").unwrap();
    assert_eq!(db.get(b"a").unwrap(), Some(b"3".to_vec()));
}

#[test]
fn recovery_after_flush_and_more_writes() {
    let dir = TempDir::new("recover2");
    {
        let db = open_small(&dir);
        for i in 0..1000u32 {
            db.put(format!("k{i:05}").as_bytes(), b"flushed").unwrap();
        }
        db.compact_to_quiescence().unwrap();
        for i in 0..100u32 {
            db.put(format!("fresh{i:05}").as_bytes(), b"walonly")
                .unwrap();
        }
    }
    let db = open_small(&dir);
    assert_eq!(db.get(b"k00500").unwrap(), Some(b"flushed".to_vec()));
    assert_eq!(db.get(b"fresh00050").unwrap(), Some(b"walonly".to_vec()));
}

#[test]
fn repeated_reopen_is_stable() {
    let dir = TempDir::new("reopen");
    for round in 0..5u32 {
        let db = open_small(&dir);
        for prior in 0..round {
            assert_eq!(
                db.get(format!("round{prior}").as_bytes()).unwrap(),
                Some(prior.to_string().into_bytes()),
                "round {round} reading {prior}"
            );
        }
        db.put(
            format!("round{round}").as_bytes(),
            round.to_string().as_bytes(),
        )
        .unwrap();
    }
}

#[test]
fn snapshot_is_frozen_in_time() {
    let dir = TempDir::new("snap");
    let db = open_small(&dir);
    db.put(b"x", b"before").unwrap();
    let snap = db.snapshot().unwrap();
    db.put(b"x", b"after").unwrap();
    db.put(b"y", b"new").unwrap();
    db.delete(b"x").unwrap();
    assert_eq!(snap.get(b"x").unwrap(), Some(b"before".to_vec()));
    assert_eq!(snap.get(b"y").unwrap(), None);
    assert_eq!(db.get(b"x").unwrap(), None);
    assert_eq!(db.get(b"y").unwrap(), Some(b"new".to_vec()));
}

#[test]
fn snapshot_survives_flush_and_compaction() {
    let dir = TempDir::new("snap-flush");
    let db = open_small(&dir);
    db.put(b"pinned", b"old").unwrap();
    let snap = db.snapshot().unwrap();
    // Overwrite many times, forcing flushes and compactions that would
    // GC the old version if the snapshot were not registered.
    for i in 0..2000u32 {
        db.put(b"pinned", format!("new-{i}").as_bytes()).unwrap();
        db.put(format!("filler{i:06}").as_bytes(), &[0u8; 64])
            .unwrap();
    }
    db.compact_to_quiescence().unwrap();
    assert_eq!(snap.get(b"pinned").unwrap(), Some(b"old".to_vec()));
    assert_eq!(db.get(b"pinned").unwrap(), Some(b"new-1999".to_vec()));
}

#[test]
fn full_scan_sees_consistent_state() {
    let dir = TempDir::new("scan");
    let db = open_small(&dir);
    for i in 0..100u32 {
        db.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.delete(b"k0050").unwrap();
    let snap = db.snapshot().unwrap();
    // Concurrent-ish mutation after the snapshot.
    db.put(b"k0000", b"mutated").unwrap();
    db.put(b"zzz", b"later").unwrap();

    let items: Vec<(Vec<u8>, Vec<u8>)> = snap.iter().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(items.len(), 99); // 100 keys minus the deleted one
    assert_eq!(items[0].0, b"k0000");
    assert_eq!(items[0].1, b"v0"); // pre-mutation value
                                   // Sorted.
    for w in items.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    // Deleted key absent.
    assert!(!items.iter().any(|(k, _)| k == b"k0050"));
}

#[test]
fn scan_spans_memtable_and_disk() {
    let dir = TempDir::new("scan-components");
    let db = open_small(&dir);
    for i in 0..500u32 {
        db.put(format!("disk{i:05}").as_bytes(), b"d").unwrap();
    }
    db.compact_to_quiescence().unwrap();
    for i in 0..50u32 {
        db.put(format!("mem{i:05}").as_bytes(), b"m").unwrap();
    }
    let snap = db.snapshot().unwrap();
    let items: Vec<(Vec<u8>, Vec<u8>)> = snap.iter().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(items.len(), 550);
    for w in items.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

#[test]
fn range_queries_respect_bounds() {
    let dir = TempDir::new("range");
    let db = open_small(&dir);
    for i in 0..100u32 {
        db.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
    }
    let snap = db.snapshot().unwrap();
    let items: Vec<Vec<u8>> = snap
        .range(b"k0010", Some(b"k0020"))
        .unwrap()
        .map(|r| r.unwrap().0)
        .collect();
    assert_eq!(items.len(), 10);
    assert_eq!(items.first().unwrap(), b"k0010");
    assert_eq!(items.last().unwrap(), b"k0019");
    // Unbounded end.
    let tail: Vec<Vec<u8>> = snap
        .range(b"k0095", None)
        .unwrap()
        .map(|r| r.unwrap().0)
        .collect();
    assert_eq!(tail.len(), 5);
    // Empty range.
    assert_eq!(snap.range(b"x", Some(b"y")).unwrap().count(), 0);
}

#[test]
fn serializable_snapshots_may_lag_linearizable_do_not() {
    let dir = TempDir::new("linearizable");
    let mut opts = Options::small_for_tests();
    opts.linearizable_snapshots = true;
    let db = Db::open(dir.path(), opts).unwrap();
    for i in 0..10u32 {
        db.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    // Linearizable: the snapshot must see every completed write,
    // including the thread's own.
    let snap = db.snapshot().unwrap();
    for i in 0..10u32 {
        assert_eq!(
            snap.get(format!("k{i}").as_bytes()).unwrap(),
            Some(b"v".to_vec())
        );
    }
}

#[test]
fn write_batch_is_atomic_with_respect_to_snapshots() {
    let dir = TempDir::new("batch");
    let db = open_small(&dir);
    db.put(b"a", b"0").unwrap();
    db.write(
        WriteBatch::from(
            &[
                (b"a".to_vec(), Some(b"1".to_vec())),
                (b"b".to_vec(), Some(b"1".to_vec())),
                (b"c".to_vec(), None),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();
    assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"b").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"c").unwrap(), None);
}

#[test]
fn rmw_counter_and_abort() {
    let dir = TempDir::new("rmw");
    let db = open_small(&dir);
    for _ in 0..10 {
        db.read_modify_write(b"ctr", |cur| {
            let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
            RmwDecision::Update((n + 1).to_le_bytes().to_vec())
        })
        .unwrap();
    }
    assert_eq!(db.get(b"ctr").unwrap(), Some(10u64.to_le_bytes().to_vec()));

    // Abort leaves everything untouched.
    let r = db
        .read_modify_write(b"ctr", |_| RmwDecision::Abort)
        .unwrap();
    assert!(!r.committed);
    assert_eq!(r.previous, Some(10u64.to_le_bytes().to_vec()));
    assert_eq!(db.get(b"ctr").unwrap(), Some(10u64.to_le_bytes().to_vec()));

    // RMW delete.
    let r = db
        .read_modify_write(b"ctr", |_| RmwDecision::Delete)
        .unwrap();
    assert!(r.committed);
    assert_eq!(db.get(b"ctr").unwrap(), None);
}

#[test]
fn put_if_absent_semantics() {
    let dir = TempDir::new("pia");
    let db = open_small(&dir);
    assert!(db.put_if_absent(b"k", b"first").unwrap());
    assert!(!db.put_if_absent(b"k", b"second").unwrap());
    assert_eq!(db.get(b"k").unwrap(), Some(b"first".to_vec()));
    db.delete(b"k").unwrap();
    // Deleted key counts as absent again.
    assert!(db.put_if_absent(b"k", b"third").unwrap());
    assert_eq!(db.get(b"k").unwrap(), Some(b"third".to_vec()));
}

#[test]
fn rmw_reads_through_disk_component() {
    let dir = TempDir::new("rmw-disk");
    let db = open_small(&dir);
    db.put(b"k", b"disk-value").unwrap();
    db.compact_to_quiescence().unwrap(); // push to disk
    let r = db
        .read_modify_write(b"k", |cur| {
            assert_eq!(cur, Some(&b"disk-value"[..]));
            RmwDecision::Update(b"updated".to_vec())
        })
        .unwrap();
    assert!(r.committed);
    assert_eq!(db.get(b"k").unwrap(), Some(b"updated".to_vec()));
}

#[test]
fn sync_writes_mode_works() {
    let dir = TempDir::new("sync");
    let mut opts = Options::small_for_tests();
    opts.sync_writes = true;
    {
        let db = Db::open(dir.path(), opts.clone()).unwrap();
        db.put(b"durable", b"yes").unwrap();
    }
    let db = Db::open(dir.path(), opts).unwrap();
    assert_eq!(db.get(b"durable").unwrap(), Some(b"yes".to_vec()));
}

#[test]
fn stats_track_operations() {
    let dir = TempDir::new("stats");
    let db = open_small(&dir);
    db.put(b"a", b"1").unwrap();
    db.get(b"a").unwrap();
    db.get(b"missing").unwrap();
    db.delete(b"a").unwrap();
    let _ = db.snapshot().unwrap();
    let s = db.stats();
    assert_eq!(s.puts, 1);
    assert_eq!(s.gets, 2);
    assert_eq!(s.deletes, 1);
    assert_eq!(s.snapshots, 1);
}

#[test]
fn many_overwrites_of_one_key() {
    let dir = TempDir::new("overwrite");
    let db = open_small(&dir);
    for i in 0..5000u32 {
        db.put(b"hot", format!("{i}").as_bytes()).unwrap();
    }
    assert_eq!(db.get(b"hot").unwrap(), Some(b"4999".to_vec()));
    db.compact_to_quiescence().unwrap();
    assert_eq!(db.get(b"hot").unwrap(), Some(b"4999".to_vec()));
}

#[test]
fn compact_range_pushes_data_to_bottom() {
    let dir = TempDir::new("compact-range");
    let db = open_small(&dir);
    for i in 0..3000u32 {
        db.put(format!("key{i:06}").as_bytes(), &[7u8; 64]).unwrap();
    }
    db.compact_range(b"key000000", b"key999999").unwrap();
    let counts = db.level_file_counts();
    // Everything in range compacted below the upper levels.
    assert_eq!(counts[0], 0, "L0 not drained: {counts:?}");
    let deepest_nonempty = counts.iter().rposition(|&c| c > 0);
    assert!(deepest_nonempty.is_some());
    // Data intact afterwards.
    for i in (0..3000u32).step_by(331) {
        assert!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().is_some(),
            "key {i}"
        );
    }
    // Integrity scan passes over the compacted layout.
    assert!(db.verify_integrity().unwrap() > 0);
}

#[test]
fn db_iter_and_range_sugar() {
    let dir = TempDir::new("iter-sugar");
    let db = open_small(&dir);
    for i in 0..50u32 {
        db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
    }
    let all: Vec<_> = db.iter().unwrap().map(|r| r.unwrap().0).collect();
    assert_eq!(all.len(), 50);
    let some: Vec<_> = db
        .range(b"k010".to_vec()..b"k020".to_vec())
        .unwrap()
        .map(|r| r.unwrap().0)
        .collect();
    assert_eq!(some.len(), 10);
    assert_eq!(some[0], b"k010");
}

#[test]
fn expired_snapshots_release_gc_watermark() {
    let dir = TempDir::new("snap-ttl");
    let db = open_small(&dir);
    db.put(b"k", b"v").unwrap();
    let snap = db.snapshot().unwrap();
    let ts = snap.timestamp();
    // Leak the handle conceptually: expire everything immediately.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let reclaimed = db.expire_snapshots(std::time::Duration::from_millis(1));
    assert_eq!(reclaimed, 1);
    // Dropping the expired handle is a no-op (no panic, no underflow).
    drop(snap);
    // New snapshots still work and carry later timestamps.
    let snap2 = db.snapshot().unwrap();
    assert!(snap2.timestamp() >= ts);
}

#[test]
fn corruption_is_detected_not_silently_returned() {
    let dir = TempDir::new("corruption");
    let db = open_small(&dir);
    for i in 0..2000u32 {
        db.put(format!("key{i:06}").as_bytes(), &[9u8; 64]).unwrap();
    }
    db.compact_to_quiescence().unwrap();
    drop(db);
    // Flip bytes in the middle of the first table file.
    let mut table_path = None;
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "sst") {
            table_path = Some(p);
            break;
        }
    }
    let p = table_path.expect("an sstable on disk");
    let mut bytes = std::fs::read(&p).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 32] {
        *b ^= 0xa5;
    }
    std::fs::write(&p, &bytes).unwrap();

    let db = open_small(&dir);
    // Either a targeted get or the integrity sweep must surface the
    // corruption as an error; neither may return wrong data or panic.
    let sweep = db.verify_integrity();
    assert!(sweep.is_err(), "corruption not detected: {sweep:?}");
}

#[test]
fn generic_memtable_locked_btreemap_works_for_everything_but_rmw() {
    // The paper's genericity claim (§3): puts, gets, snapshot scans and
    // range queries work over ANY thread-safe sorted map; only RMW
    // needs the skip list.
    let dir = TempDir::new("generic-mem");
    let mut opts = Options::small_for_tests();
    opts.memtable_kind = clsm::MemtableKind::LockedBTreeMap;
    let db = Db::open(dir.path(), opts.clone()).unwrap();

    for i in 0..2000u32 {
        db.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.delete(b"key00100").unwrap();
    db.compact_to_quiescence().unwrap(); // flush works through the trait
    assert_eq!(db.get(b"key00042").unwrap(), Some(b"v42".to_vec()));
    assert_eq!(db.get(b"key00100").unwrap(), None);

    // Snapshot scans stay consistent.
    let snap = db.snapshot().unwrap();
    db.put(b"key00042", b"mutated").unwrap();
    assert_eq!(snap.get(b"key00042").unwrap(), Some(b"v42".to_vec()));
    let n = snap.range(b"key00000", Some(b"key00200")).unwrap().count();
    assert_eq!(n, 199); // 200 keys minus the deleted one

    // RMW is rejected, exactly as §3.3 predicts for non-skip-list maps.
    let err = db
        .read_modify_write(b"ctr", |_| RmwDecision::Update(vec![1]))
        .unwrap_err();
    assert!(err.to_string().contains("LockFreeSkipList"), "{err}");

    // Recovery replays into the locked component too.
    drop(db);
    let db = Db::open(dir.path(), opts).unwrap();
    assert_eq!(db.get(b"key00042").unwrap(), Some(b"mutated".to_vec()));
}

#[test]
fn generic_memtable_concurrent_smoke() {
    let dir = TempDir::new("generic-conc");
    let mut opts = Options::small_for_tests();
    opts.memtable_kind = clsm::MemtableKind::LockedBTreeMap;
    let db = std::sync::Arc::new(Db::open(dir.path(), opts).unwrap());
    std::thread::scope(|scope| {
        for t in 0..3u32 {
            let db = std::sync::Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..800u32 {
                    let key = format!("t{t}-{i:05}");
                    db.put(key.as_bytes(), key.as_bytes()).unwrap();
                    assert_eq!(db.get(key.as_bytes()).unwrap(), Some(key.into_bytes()));
                }
            });
        }
    });
    db.compact_to_quiescence().unwrap();
    assert_eq!(db.iter().unwrap().count(), 2400);
}

#[test]
fn options_validation_rejects_nonsense() {
    let dir = TempDir::new("bad-opts");
    let mut opts = Options::small_for_tests();
    opts.memtable_bytes = 16;
    assert!(Db::open(dir.path(), opts).is_err());

    let mut opts = Options::small_for_tests();
    opts.compaction_threads = 0;
    assert!(Db::open(dir.path(), opts).is_err());

    let mut opts = Options::small_for_tests();
    opts.store.num_levels = 1;
    assert!(Db::open(dir.path(), opts).is_err());

    let mut opts = Options::small_for_tests();
    opts.store.level_multiplier = 1;
    assert!(Db::open(dir.path(), opts).is_err());

    // A good config still opens.
    assert!(Db::open(dir.path(), Options::small_for_tests()).is_ok());
}

#[test]
fn approximate_size_tracks_data_volume() {
    let dir = TempDir::new("approx");
    let db = open_small(&dir);
    let empty = db.approximate_size(b"a", b"z");
    for i in 0..3000u32 {
        db.put(format!("key{i:06}").as_bytes(), &[3u8; 100])
            .unwrap();
    }
    db.compact_to_quiescence().unwrap();
    let full = db.approximate_size(b"key000000", b"key999999");
    assert!(full > empty + 100_000, "full={full} empty={empty}");
    // A sub-range is charged less than the whole range.
    let sub = db.approximate_size(b"key000000", b"key000500");
    assert!(sub < full, "sub={sub} full={full}");
    // A disjoint range costs only the memtable charge.
    let none = db.approximate_size(b"zzz", b"zzzz");
    assert!(none < full / 2);
}
