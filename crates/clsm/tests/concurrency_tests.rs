//! Concurrency tests: the guarantees the paper's algorithms provide
//! under real multi-threaded execution — atomicity of RMW, snapshot
//! serializability, and safety of reads racing with merges.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use clsm::{Db, Options, RmwDecision, WriteBatch, WriteOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "clsm-conc-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn concurrent_writers_and_readers_with_flushes() {
    let dir = TempDir::new("rw");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    let writers = 4u32;
    let per_writer = 1500u32;

    let mut handles = Vec::new();
    for t in 0..writers {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_writer {
                let key = format!("w{t}-{i:06}");
                db.put(key.as_bytes(), key.as_bytes()).unwrap();
                // Read-your-writes: cLSM gets are linearizable with
                // respect to the writer's own completed puts.
                assert_eq!(db.get(key.as_bytes()).unwrap(), Some(key.into_bytes()));
            }
        }));
    }
    // A reader thread continuously checks that values, when present,
    // always equal their key (no torn or interleaved writes).
    let stop = Arc::new(AtomicBool::new(false));
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("w{}-{:06}", i % 4, i % 1500);
                if let Some(v) = db.get(key.as_bytes()).unwrap() {
                    assert_eq!(v, key.into_bytes());
                }
                i = i.wrapping_add(7);
            }
        }));
    }
    for h in handles.drain(..handles.len() - 1) {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Everything is present afterwards.
    db.compact_to_quiescence().unwrap();
    for t in 0..writers {
        for i in (0..per_writer).step_by(113) {
            let key = format!("w{t}-{i:06}");
            assert_eq!(
                db.get(key.as_bytes()).unwrap(),
                Some(key.clone().into_bytes()),
                "{key}"
            );
        }
    }
    assert!(db.stats().flushes > 0, "test should have exercised flushes");
}

#[test]
fn rmw_increments_are_never_lost() {
    let dir = TempDir::new("rmw-inc");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    let threads = 4u64;
    let increments = 800u64;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for _ in 0..increments {
                db.read_modify_write(b"counter", |cur| {
                    let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
                    RmwDecision::Update((n + 1).to_le_bytes().to_vec())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let v = db.get(b"counter").unwrap().unwrap();
    assert_eq!(
        u64::from_le_bytes(v.try_into().unwrap()),
        threads * increments
    );
}

/// N threads each increment every one of K counters M times through
/// `read_modify_write`; every counter must land on exactly `N * M`.
/// Runs through the `KvStore` trait so the identical workload hits
/// both store shapes.
fn rmw_contended_counters_are_exact(store: Arc<dyn clsm_kv::KvStore>) {
    let threads = 4usize;
    let per_key = 200u64;
    let key_count = 8usize;
    // First bytes spread evenly over 0x00..=0xFF so the keys straddle
    // every shard of a default-boundary ShardedDb.
    let keys: Vec<Vec<u8>> = (0..key_count)
        .map(|k| {
            let mut key = vec![(k * 256 / key_count) as u8];
            key.extend_from_slice(format!("ctr{k:02}").as_bytes());
            key
        })
        .collect();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(&store);
        let keys = keys.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per_key {
                // Rotate the visiting order per thread and per round so
                // different threads contend on different keys over time.
                for j in 0..keys.len() {
                    let key = &keys[(t + i as usize + j) % keys.len()];
                    store
                        .read_modify_write(key, &mut |cur| {
                            let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
                            RmwDecision::Update((n + 1).to_le_bytes().to_vec())
                        })
                        .unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for (k, key) in keys.iter().enumerate() {
        let v = store.get(key).unwrap().unwrap();
        assert_eq!(
            u64::from_le_bytes(v.try_into().unwrap()),
            threads as u64 * per_key,
            "counter {k} lost increments"
        );
    }
}

#[test]
fn rmw_contended_counters_are_exact_on_db() {
    let dir = TempDir::new("rmw-multi-db");
    let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();
    rmw_contended_counters_are_exact(Arc::new(db));
}

#[test]
fn rmw_contended_counters_are_exact_on_sharded_db() {
    let dir = TempDir::new("rmw-multi-sharded");
    let db = Options::small_for_tests().open_sharded(&dir.0, 4).unwrap();
    rmw_contended_counters_are_exact(Arc::new(db));
}

#[test]
fn put_if_absent_has_exactly_one_winner() {
    let dir = TempDir::new("pia-race");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    for round in 0..30u32 {
        let key = format!("race-{round}");
        let winners = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = Arc::clone(&db);
            let winners = Arc::clone(&winners);
            let barrier = Arc::clone(&barrier);
            let key = key.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                if db
                    .put_if_absent(key.as_bytes(), format!("t{t}").as_bytes())
                    .unwrap()
                {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::SeqCst), 1, "round {round}");
    }
}

#[test]
fn snapshots_see_atomic_batches() {
    // Writers keep the invariant value(a) == value(b) via atomic
    // batches; snapshot readers must never observe a violation
    // (serializability of scans, §3.2).
    let dir = TempDir::new("snap-atomic");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    db.write(
        WriteBatch::from(
            &[
                (b"a".to_vec(), Some(0u64.to_le_bytes().to_vec())),
                (b"b".to_vec(), Some(0u64.to_le_bytes().to_vec())),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                db.write(
                    WriteBatch::from(
                        &[
                            (b"a".to_vec(), Some(n.to_le_bytes().to_vec())),
                            (b"b".to_vec(), Some(n.to_le_bytes().to_vec())),
                        ][..],
                    ),
                    &WriteOptions::new(),
                )
                .unwrap();
            }
        }));
    }
    for _ in 0..2 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut last = 0u64;
            for _ in 0..300 {
                let snap = db.snapshot().unwrap();
                let a = snap.get(b"a").unwrap().unwrap();
                let b = snap.get(b"b").unwrap().unwrap();
                assert_eq!(a, b, "snapshot saw a torn batch");
                let val = u64::from_le_bytes(a.try_into().unwrap());
                // Snapshots are monotone per thread.
                assert!(val >= last, "snapshot went back in time");
                last = val;
            }
            stop.store(true, Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn scans_race_with_writes_and_merges() {
    let dir = TempDir::new("scan-race");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    for i in 0..200u32 {
        db.put(format!("base{i:05}").as_bytes(), b"v").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Churn writer: inserts and deletes, forcing flushes.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            // Keep churning until stopped AND enough volume has gone
            // through to guarantee at least one memtable flush.
            while !stop.load(Ordering::Relaxed) || i < 3000 {
                let key = format!("churn{:05}", i % 500);
                if i.is_multiple_of(3) {
                    db.delete(key.as_bytes()).unwrap();
                } else {
                    db.put(key.as_bytes(), &[0u8; 128]).unwrap();
                }
                i += 1;
            }
        }));
    }
    // Scanners: the 200 base keys must always all be present and
    // sorted in every snapshot.
    for _ in 0..2 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let snap = db.snapshot().unwrap();
                let items: Vec<Vec<u8>> = snap
                    .range(b"base", Some(b"base99999"))
                    .unwrap()
                    .map(|r| r.unwrap().0)
                    .collect();
                assert_eq!(items.len(), 200);
                for w in items.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
            stop.store(true, Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // The churn volume guarantees a flush was *scheduled*; give the
    // background worker bounded time to run it before asserting.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while db.stats().flushes == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(db.stats().flushes > 0);
}

#[test]
fn gets_never_block_during_heavy_writing() {
    // Smoke test for Algorithm 1's non-blocking get: reads interleaved
    // with a write storm (flushes, WAL rotations, compactions) must
    // all complete and observe correct values.
    let dir = TempDir::new("nonblock");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    db.put(b"stable", b"fixture").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let progress = Arc::clone(&progress);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.put(format!("noise{i:08}").as_bytes(), &vec![1u8; 256])
                    .unwrap();
                i += 1;
                progress.store(i, Ordering::Relaxed);
            }
            i
        })
    };
    // Wait for the storm to actually start: optimized gets can finish
    // all 20k iterations before the writer thread is even scheduled.
    while progress.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    for _ in 0..20_000 {
        assert_eq!(db.get(b"stable").unwrap(), Some(b"fixture".to_vec()));
    }
    stop.store(true, Ordering::Relaxed);
    let written = writer.join().unwrap();
    assert!(written > 0);
}

#[test]
fn linearizable_snapshots_always_see_own_writes_under_concurrency() {
    let dir = TempDir::new("linearizable-conc");
    let mut opts = Options::small_for_tests();
    opts.linearizable_snapshots = true;
    let db = Arc::new(Db::open(&dir.0, opts).unwrap());
    let mut handles = Vec::new();
    for t in 0..3u32 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..300u32 {
                let key = format!("lin-{t}-{i:04}");
                db.put(key.as_bytes(), b"v").unwrap();
                // §3.2.1: the linearizable variant never reads "in the
                // past" — the writer's own completed put must be
                // visible in a snapshot taken immediately after.
                let snap = db.snapshot().unwrap();
                assert_eq!(
                    snap.get(key.as_bytes()).unwrap(),
                    Some(b"v".to_vec()),
                    "linearizable snapshot missed its own write"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn write_amp_grows_only_through_compaction() {
    let dir = TempDir::new("write-amp");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    for i in 0..5000u32 {
        db.put(format!("key{:06}", i % 1000).as_bytes(), &[1u8; 64])
            .unwrap();
    }
    db.compact_to_quiescence().unwrap();
    let amp = db.write_amp();
    assert!(amp.flushed > 0, "no flush bytes recorded");
    assert!(amp.factor() >= 1.0);
    // Force a full manual compaction: compacted bytes must grow.
    let before = db.write_amp().compacted;
    db.compact_range(b"key000000", b"key999999").unwrap();
    let after = db.write_amp().compacted;
    assert!(after >= before, "compaction bytes went backwards");
}
