//! Group-commit pipeline tests: the guarantees `Db::write` provides
//! when concurrent writers coalesce behind an elected leader — no lost
//! updates under contention, batch atomicity against snapshots,
//! per-call durability options, and equivalence with the per-writer
//! (`group_commit = false`) ablation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use clsm::{Db, Options, RmwDecision, WriteBatch, WriteOptions};
use clsm_util::env::FaultEnv;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "clsm-gc-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open(dir: &std::path::Path, group_commit: bool) -> Db {
    let mut opts = Options::small_for_tests();
    opts.group_commit = group_commit;
    Db::open(dir, opts).unwrap()
}

/// Nine threads hammer the store at once: six RMW incrementers share
/// one contended counter key while three batch writers push group
/// commits through the pipeline. Every RMW increment must survive (the
/// pipeline's restamping of racing single-put groups must not step
/// over Algorithm 3's conflict check), and every batch write must be
/// readable afterwards.
#[test]
fn contended_key_hammer_loses_no_updates() {
    let dir = TempDir::new("hammer");
    let db = Arc::new(open(&dir.0, true));
    let rmw_threads = 6u64;
    let increments = 400u64;
    let writer_threads = 3u64;
    let writes = 300u64;

    let mut handles = Vec::new();
    for _ in 0..rmw_threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for _ in 0..increments {
                let r = db
                    .read_modify_write(b"ctr", |cur| {
                        let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
                        RmwDecision::Update((n + 1).to_le_bytes().to_vec())
                    })
                    .unwrap();
                assert!(r.committed);
            }
        }));
    }
    for t in 0..writer_threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..writes {
                // Alternate single puts (shared-mode groups) and
                // multi-op batches (exclusive-mode groups) so the
                // leader exercises both lock modes while RMW runs.
                let key = format!("w{t}-{i:05}");
                if i % 2 == 0 {
                    db.write(
                        WriteBatch::single_put(key.as_bytes(), key.as_bytes()),
                        &WriteOptions::new(),
                    )
                    .unwrap();
                } else {
                    let mut batch = WriteBatch::new();
                    batch.put(key.as_bytes(), key.as_bytes());
                    batch.put(format!("{key}-b").into_bytes(), key.as_bytes());
                    db.write(batch, &WriteOptions::new()).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let got = db.get(b"ctr").unwrap().unwrap();
    assert_eq!(
        u64::from_le_bytes(got.try_into().unwrap()),
        rmw_threads * increments,
        "lost RMW updates on the contended key"
    );
    for t in 0..writer_threads {
        for i in 0..writes {
            let key = format!("w{t}-{i:05}");
            assert_eq!(
                db.get(key.as_bytes()).unwrap(),
                Some(key.clone().into_bytes()),
                "pipeline write {key} lost"
            );
            if i % 2 == 1 {
                assert_eq!(
                    db.get(format!("{key}-b").as_bytes()).unwrap(),
                    Some(key.into_bytes())
                );
            }
        }
    }
}

/// Multi-op batches commit under the exclusive lock with one timestamp
/// block, so a snapshot taken at any moment sees either all of a
/// batch's entries or none of them — even while other writers keep the
/// pipeline busy coalescing.
#[test]
fn batches_are_atomic_under_concurrent_snapshots() {
    let dir = TempDir::new("atomic");
    let db = Arc::new(open(&dir.0, true));
    db.write(
        WriteBatch::from(
            &[
                (b"a".to_vec(), Some(0u64.to_le_bytes().to_vec())),
                (b"b".to_vec(), Some(0u64.to_le_bytes().to_vec())),
            ][..],
        ),
        &WriteOptions::new(),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Two snapshot readers assert the a == b invariant continuously.
    for _ in 0..2 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = db.snapshot().unwrap();
                let a = snap.get(b"a").unwrap().unwrap();
                let b = snap.get(b"b").unwrap().unwrap();
                assert_eq!(a, b, "snapshot observed a torn batch");
            }
        }));
    }
    // A noise writer keeps unrelated single puts flowing through the
    // same pipeline, so batches share leader groups with other work.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.put(format!("noise-{i}").as_bytes(), b"x").unwrap();
                i += 1;
            }
        }));
    }
    for i in 1..=500u64 {
        let v = i.to_le_bytes().to_vec();
        db.write(
            WriteBatch::from(&[(b"a".to_vec(), Some(v.clone())), (b"b".to_vec(), Some(v))][..]),
            &WriteOptions::new(),
        )
        .unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.get(b"a").unwrap(), Some(500u64.to_le_bytes().to_vec()));
}

/// `disable_wal` writes skip the log entirely: after power loss they
/// are gone, while a synchronously acked write from the same session
/// survives.
#[test]
fn disable_wal_skips_the_log_and_sync_survives() {
    let dir = std::path::Path::new("/gc-wal");
    let fault = FaultEnv::new(0x6C06);
    let mut opts = Options::small_for_tests();
    opts.watchdog.enabled = false;
    opts.store.env = Arc::new(fault.clone());
    let db = opts.clone().open(dir).unwrap();

    db.write(
        WriteBatch::single_put(b"ephemeral", b"1"),
        &WriteOptions {
            sync: false,
            disable_wal: true,
        },
    )
    .unwrap();
    db.write(
        WriteBatch::single_put(b"durable", b"2"),
        &WriteOptions::durable(),
    )
    .unwrap();
    // Both are readable while the process lives.
    assert_eq!(db.get(b"ephemeral").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"durable").unwrap(), Some(b"2".to_vec()));
    drop(db);

    fault.power_loss();
    let db = opts.open(dir).unwrap();
    assert_eq!(
        db.get(b"ephemeral").unwrap(),
        None,
        "disable_wal write must not be recovered from the log"
    );
    assert_eq!(
        db.get(b"durable").unwrap(),
        Some(b"2".to_vec()),
        "sync-acked write lost in recovery"
    );
}

/// The per-writer ablation (`group_commit = false`) produces exactly
/// the same observable state as the pipeline for a deterministic
/// workload, including multi-op batches and deletes.
#[test]
fn group_commit_off_is_observationally_equivalent() {
    let run = |group_commit: bool| -> Vec<(String, Option<Vec<u8>>)> {
        let dir = TempDir::new(if group_commit { "eq-on" } else { "eq-off" });
        let db = open(&dir.0, group_commit);
        for i in 0..200u32 {
            db.write(
                WriteBatch::single_put(format!("k{i:04}").as_bytes(), &i.to_le_bytes()),
                &WriteOptions::new(),
            )
            .unwrap();
        }
        let mut batch = WriteBatch::new();
        for i in 0..200u32 {
            if i % 3 == 0 {
                batch.delete(format!("k{i:04}").into_bytes());
            } else if i % 3 == 1 {
                batch.put(format!("k{i:04}").into_bytes(), b"rewritten".to_vec());
            }
        }
        db.write(batch, &WriteOptions::new()).unwrap();
        (0..200u32)
            .map(|i| {
                let key = format!("k{i:04}");
                let v = db.get(key.as_bytes()).unwrap();
                (key, v)
            })
            .collect()
    };
    assert_eq!(run(true), run(false));
}

/// The deprecated `write_batch` shims still apply their batch through
/// the new path.
#[test]
#[allow(deprecated)]
fn deprecated_write_batch_shim_still_works() {
    let dir = TempDir::new("shim");
    let db = open(&dir.0, true);
    db.write_batch(&[
        (b"s1".to_vec(), Some(b"v1".to_vec())),
        (b"s2".to_vec(), None),
    ])
    .unwrap();
    assert_eq!(db.get(b"s1").unwrap(), Some(b"v1".to_vec()));
    assert_eq!(db.get(b"s2").unwrap(), None);
}

/// Validation errors surface before any work: contradictory options
/// are rejected and the store is untouched.
#[test]
fn contradictory_write_options_are_rejected_by_write() {
    let dir = TempDir::new("opts");
    let db = open(&dir.0, true);
    let err = db
        .write(
            WriteBatch::single_put(b"k", b"v"),
            &WriteOptions {
                sync: true,
                disable_wal: true,
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("disable_wal"));
    assert_eq!(db.get(b"k").unwrap(), None);
    assert_eq!(db.stats().puts, 0);
}
