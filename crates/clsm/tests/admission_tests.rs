//! Graduated-admission integration tests: the delay ramp, the hard
//! stall's untimed wakeup, the watchdog's sustained-slowdown detector,
//! and the doctor lines that report all of it.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use clsm::{AdmissionOptions, Db, Options, StallKind, WatchdogOptions};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clsm-admission-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter(db: &Db, name: &str) -> u64 {
    db.metrics().counters.get(name).copied().unwrap_or(0)
}

/// The §5.3 hard stall with the ramp disabled (the ablation shim):
/// writers must stall — and every stalled writer must wake again off
/// the flush's notification, not a timer. The stall wait has no timed
/// backstop anymore, so a missed wakeup would turn this test into a
/// hang; the deadline below is what catches that.
#[test]
fn stalled_writer_wakes_on_flush_completion_not_a_timer() {
    let dir = scratch("hard-stall-wake");
    let mut opts = Options::small_for_tests();
    opts.admission = AdmissionOptions {
        enabled: false,
        ..AdmissionOptions::default()
    };
    let db = std::sync::Arc::new(Db::open(&dir, opts).unwrap());

    let writer = {
        let db = std::sync::Arc::clone(&db);
        std::thread::spawn(move || {
            let value = vec![0u8; 512];
            for i in 0..8192u32 {
                db.put(format!("wake.{i:08}").as_bytes(), &value).unwrap();
            }
        })
    };

    // A hung writer (missed wakeup) would block the join forever; give
    // the workload a generous-but-finite budget instead.
    let deadline = Instant::now() + Duration::from_secs(120);
    while !writer.is_finished() {
        assert!(
            Instant::now() < deadline,
            "writer hung in the untimed stall wait — wakeup was missed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    writer.join().unwrap();

    let stalls = db.stats().write_stalls;
    assert!(stalls > 0, "workload never hit the hard stall");
    assert_eq!(counter(&db, "admission.hard_stalls"), stalls);
    // Wakes ride the flush's notify: the average stall must be on the
    // order of one small flush, far below the removed 100 ms tick.
    let stall_ns = counter(&db, "db.write_stall_ns");
    assert!(
        stall_ns / stalls < Duration::from_secs(5).as_nanos() as u64,
        "average stall {}ns looks timer-paced, not flush-paced",
        stall_ns / stalls
    );
    // With the ramp disabled, no write may be charged a slowdown delay.
    assert_eq!(counter(&db, "admission.delayed_writes"), 0);

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With an aggressive ramp the controller charges delays once debt
/// crosses the low watermark, records them in the `admission.*`
/// counters and the `write_path.admission_ns` stage, and the watchdog
/// flags the episode as a sustained slowdown (not a stall).
#[test]
fn ramp_delays_are_counted_and_flagged_as_sustained_slowdown() {
    let dir = scratch("ramp");
    let mut opts = Options::small_for_tests();
    // Low watermarks so the ramp engages early and often.
    opts.admission = AdmissionOptions {
        enabled: true,
        low_watermark: 0.05,
        high_watermark: 0.5,
        max_delay: Duration::from_millis(2),
        l0_slowdown_files: 2,
    };
    opts.watchdog = WatchdogOptions {
        enabled: true,
        interval: Duration::from_millis(1),
        slowdown_windows: 2,
        ..WatchdogOptions::default()
    };
    let db = Db::open(&dir, opts).unwrap();

    let value = vec![0u8; 512];
    for i in 0..2048u32 {
        db.put(format!("ramp.{i:08}").as_bytes(), &value).unwrap();
    }

    let delayed = counter(&db, "admission.delayed_writes");
    let delay_ns = counter(&db, "admission.delay_ns");
    assert!(delayed > 0, "ramp never engaged");
    assert!(delay_ns > 0);
    let snap = db.metrics();
    let admission_stage = snap
        .histograms
        .get("write_path.admission_ns")
        .expect("admission stage histogram missing");
    assert!(admission_stage.count > 0);

    // The sampler saw consecutive delay growth and reported one (or
    // more) sustained-slowdown episodes.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let slowdowns = db
            .stall_events()
            .iter()
            .filter(|e| e.kind == StallKind::SustainedSlowdown)
            .count();
        if slowdowns > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never flagged the sustained slowdown"
        );
        // Keep the ramp charging so the detector sees growth.
        db.put(b"ramp.more", &value).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(counter(&db, "watchdog.sustained_slowdown_events") > 0);

    // The write-path report now leads with the admission stage.
    let report = db.write_path_report();
    assert!(report.stages.iter().any(|s| s.name == "admission"));

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The doctor report carries the policy, limiter, and admission-ladder
/// lines in greppable form.
#[test]
fn doctor_reports_policy_limiter_and_admission_ladder() {
    let dir = scratch("doctor");
    let opts = Options::builder()
        .memtable_bytes(64 * 1024)
        .compaction_policy(clsm::CompactionPolicyKind::HybridPartial)
        .io_rate_limit(64 << 20, 8 << 20)
        .build()
        .unwrap();
    let db = Db::open(&dir, opts).unwrap();
    let value = vec![0u8; 512];
    for i in 0..1024u32 {
        db.put(format!("doc.{i:08}").as_bytes(), &value).unwrap();
    }
    db.compact_to_quiescence().unwrap();

    let report = db.doctor();
    assert_eq!(report.compaction_policy, "hybrid-partial");
    let (bps, burst, stats) = report.io_rate_limit.as_ref().expect("limiter missing");
    assert_eq!(*bps, 64 << 20);
    assert_eq!(*burst, 8 << 20);
    // Flushes and WAL preallocation charge the high-priority lane.
    assert!(stats.consumed_high > 0, "limiter saw no flush traffic");

    let text = report.render();
    assert!(text.contains("compaction policy: hybrid-partial"), "{text}");
    assert!(text.contains("io rate limit:"), "{text}");
    assert!(text.contains("admission:"), "{text}");
    assert!(text.contains("hard stalls="), "{text}");

    // An unlimited database renders the unlimited line.
    let dir2 = scratch("doctor-unlimited");
    let db2 = Db::open(&dir2, Options::small_for_tests()).unwrap();
    let text2 = db2.doctor().render();
    assert!(text2.contains("compaction policy: leveled"), "{text2}");
    assert!(text2.contains("io rate limit: unlimited"), "{text2}");

    drop(db);
    drop(db2);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// The `--watch` dashboard exposes the admission rates as columns.
#[test]
fn watch_dashboard_has_admission_columns() {
    let header = clsm::watch_dashboard_header();
    assert!(header.contains("delayed/s"), "{header}");
    assert!(header.contains("hstalls/s"), "{header}");
}
