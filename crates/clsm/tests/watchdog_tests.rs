//! Stall-watchdog integration tests: fault-injected exclusive holds,
//! organically provoked write stalls, and the doctor report built on
//! top of both.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use clsm::{Db, Options, StallKind, WatchdogOptions};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clsm-watchdog-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Watchdog tuned for tests: sample fast, flag short holds.
fn fast_watchdog() -> WatchdogOptions {
    WatchdogOptions {
        enabled: true,
        interval: Duration::from_millis(1),
        exclusive_hold_threshold: Duration::from_millis(10),
        ..WatchdogOptions::default()
    }
}

#[test]
fn injected_exclusive_hold_is_flagged() {
    let dir = scratch("excl-hold");
    let mut opts = Options::small_for_tests();
    opts.watchdog = fast_watchdog();
    let db = Db::open(&dir, opts).unwrap();
    db.put(b"k", b"v").unwrap();

    // Healthy database: nothing flagged yet.
    assert_eq!(
        db.stall_events()
            .iter()
            .filter(|e| e.kind == StallKind::ExclusiveHold)
            .count(),
        0
    );

    // Inject a hold an order of magnitude over the threshold; the
    // sampler (1 ms cadence) must catch it while it is in progress.
    db.inject_exclusive_hold(Duration::from_millis(120));

    // The event is recorded by the sampler thread; give it a moment.
    let deadline = Instant::now() + Duration::from_secs(5);
    let event = loop {
        let holds: Vec<_> = db
            .stall_events()
            .into_iter()
            .filter(|e| e.kind == StallKind::ExclusiveHold)
            .collect();
        if let Some(e) = holds.into_iter().next() {
            break e;
        }
        assert!(Instant::now() < deadline, "watchdog never flagged the hold");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        event.magnitude >= Duration::from_millis(10).as_nanos() as u64,
        "magnitude below threshold: {} ns",
        event.magnitude
    );
    assert!(event.detail.contains("exclusive lock held"));

    // One episode, one event: the long hold must not be re-reported
    // on every sample.
    let holds = db
        .stall_events()
        .into_iter()
        .filter(|e| e.kind == StallKind::ExclusiveHold)
        .count();
    assert_eq!(holds, 1, "episode deduplication failed");

    // The counters saw it too.
    let metrics = db.metrics();
    let count = metrics
        .counters
        .get("watchdog.exclusive_hold_events")
        .copied()
        .unwrap_or(0);
    assert_eq!(count, 1);

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn write_pressure_is_flagged_and_reaches_the_doctor() {
    let dir = scratch("write-stall");
    let mut opts = Options::small_for_tests();
    opts.watchdog = fast_watchdog();
    let db = Db::open(&dir, opts).unwrap();

    // A tiny memtable (64 KiB in small_for_tests) and a few MiB of
    // writes force flush-behind stalls.
    let value = vec![0u8; 512];
    for i in 0..8192u32 {
        db.put(format!("stall.{i:08}").as_bytes(), &value).unwrap();
    }
    db.compact_to_quiescence().unwrap();

    let stalls = db
        .stall_events()
        .into_iter()
        .filter(|e| e.kind == StallKind::WriteStall)
        .count();
    assert!(stalls > 0, "no write stall flagged under heavy pressure");

    // The doctor report folds the verdicts in and renders greppable
    // level-geometry lines.
    let report = db.doctor();
    assert!(report.unhealthy());
    assert!(report.events_of(StallKind::WriteStall) > 0);
    let text = report.render();
    assert!(text.contains("== clsm-doctor =="));
    assert!(text.contains("L0:"), "missing level geometry: {text}");
    assert!(text.contains("files,"));
    assert!(text.contains("write-stall"));
    assert!(text.contains("oracle: timeCounter="));

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_watchdog_spawns_nothing_and_stays_silent() {
    let dir = scratch("disabled");
    let mut opts = Options::small_for_tests();
    opts.watchdog.enabled = false;
    let db = Db::open(&dir, opts).unwrap();
    let value = vec![0u8; 512];
    for i in 0..4096u32 {
        db.put(format!("quiet.{i:08}").as_bytes(), &value).unwrap();
    }
    db.inject_exclusive_hold(Duration::from_millis(30));
    assert!(db.stall_events().is_empty());
    let report = db.doctor();
    assert!(!report.unhealthy());
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
