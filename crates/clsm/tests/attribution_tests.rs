//! Write-path latency attribution invariants: stage sums stay inside
//! the measured end-to-end latency, commit-mode counters reconcile
//! under a multi-threaded hammer, merged snapshots bucket-merge the
//! stage histograms, and the disabled path records nothing.

use std::sync::Arc;

use clsm::{Db, Options, ShardedDb, WriteBatch, WriteOptions, WritePathReport, WRITE_PATH_STAGES};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "clsm-attr-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Sum of aggregate nanoseconds across every stage histogram.
fn stage_sum(report: &WritePathReport) -> u64 {
    report.stages.iter().map(|s| s.summary.sum).sum()
}

/// Single-writer Db: every stage fires where expected, and the time
/// attributed to stages never exceeds (and covers a meaningful share
/// of) the end-to-end `write_path.total_ns` it decomposes.
#[test]
fn stage_sums_bounded_by_end_to_end_latency() {
    let dir = TempDir::new("bounds");
    let db = Db::open(&dir.0, Options::small_for_tests()).unwrap();

    let writes = 400u32;
    for i in 0..writes {
        db.put(format!("k{i:06}").as_bytes(), b"value").unwrap();
    }
    // A few durable writes so the `durable` stage records.
    let sync_writes = 5u32;
    for i in 0..sync_writes {
        let mut batch = WriteBatch::new();
        batch.put(format!("sync{i}"), "v");
        db.write(batch, &WriteOptions::durable()).unwrap();
    }

    let report = db.write_path_report();
    assert!(report.has_samples());
    let total = report.total.as_ref().expect("total histogram registered");
    assert_eq!(total.count, u64::from(writes + sync_writes));

    let by_name = |name: &str| {
        report
            .stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("stage {name} missing"))
            .summary
            .clone()
    };
    // stamp and memtable are recorded at the same sites on every path.
    let stamp = by_name("stamp");
    let memtable = by_name("memtable");
    assert!(stamp.count > 0);
    assert_eq!(stamp.count, memtable.count);
    assert!(by_name("wal_enqueue").count > 0);
    assert!(by_name("publish").count > 0);
    assert!(by_name("durable").count >= u64::from(sync_writes));

    // Every stage interval lies inside some request's measured
    // end-to-end interval, so the aggregate can never exceed it; and
    // on this workload the stages should explain a non-trivial share.
    let stages = stage_sum(&report);
    assert!(
        stages <= total.sum,
        "stage sum {stages} exceeds end-to-end sum {}",
        total.sum
    );
    assert!(
        stages >= total.sum / 100,
        "stage sum {stages} explains <1% of end-to-end sum {}",
        total.sum
    );

    // The doctor report carries the same data.
    let rendered = db.doctor().render();
    assert!(rendered.contains("group commit: on"));
    assert!(rendered.contains("write path stages (ns):"));
    assert!(rendered.contains("commit modes: "));
}

/// 8-thread hammer with the group-commit pipeline on: every request
/// commits exactly once, and the per-mode counters reconcile with the
/// request and group counts.
#[test]
fn commit_mode_counters_reconcile_under_hammer() {
    let dir = TempDir::new("hammer");
    let db = Arc::new(Db::open(&dir.0, Options::small_for_tests()).unwrap());
    let threads = 8u64;
    let per_thread = 300u64;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    db.put(format!("t{t}-{i:06}").as_bytes(), b"v").unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = db.write_path_report();
    let committed =
        report.solo + report.leader_requests + report.follower_requests + report.withdrawn;
    assert_eq!(
        committed,
        threads * per_thread,
        "every request commits exactly once: solo={} leader={} follower={} withdrawn={}",
        report.solo,
        report.leader_requests,
        report.follower_requests,
        report.withdrawn
    );
    // Group membership is exactly the leader+follower population.
    assert_eq!(
        report.group_requests,
        report.leader_requests + report.follower_requests
    );
    assert!(report.groups <= report.group_requests);
    assert!(report.withdraw_rate() <= 1.0);

    let snap = db.metrics();
    // One group-size sample per committed group.
    assert_eq!(
        snap.histograms["write_path.group_size"].count,
        report.groups
    );
    // queue_wait and wake fire once per claimed (leader or follower)
    // request and never for solo or withdrawn ones.
    assert_eq!(
        snap.histograms["write_path.queue_wait_ns"].count,
        report.group_requests
    );
    assert_eq!(
        snap.histograms["write_path.wake_ns"].count,
        report.group_requests
    );
    // End-to-end latency is recorded for every request.
    assert_eq!(
        snap.histograms["write_path.total_ns"].count,
        threads * per_thread
    );
}

/// Cross-shard batches attribute their stages into the merged
/// snapshot, and the bound against end-to-end latency holds there too.
#[test]
fn sharded_cross_shard_writes_are_attributed() {
    let dir = TempDir::new("xshard");
    let db =
        ShardedDb::open_with_boundaries(&dir.0, Options::small_for_tests(), vec![b"m".to_vec()])
            .unwrap();

    let batches = 50u64;
    for i in 0..batches {
        let mut batch = WriteBatch::new();
        batch.put(format!("a{i:06}"), "left");
        batch.put(format!("z{i:06}"), "right");
        db.write(batch, &WriteOptions::new()).unwrap();
    }

    let report = db.write_path_report();
    assert!(report.has_samples());
    let total = report.total.as_ref().expect("total histogram");
    assert_eq!(total.count, batches);
    let stamp = report
        .stages
        .iter()
        .find(|s| s.name == "stamp")
        .expect("stamp stage");
    assert_eq!(stamp.summary.count, batches);
    let stages = stage_sum(&report);
    assert!(stages <= total.sum);
    assert!(stages > 0);
}

/// `ShardedDb::metrics` bucket-merges the new stage histograms: the
/// merged count equals the sum of the per-shard counts.
#[test]
fn merged_snapshot_merges_stage_histograms() {
    let dir = TempDir::new("merge");
    let db =
        ShardedDb::open_with_boundaries(&dir.0, Options::small_for_tests(), vec![b"m".to_vec()])
            .unwrap();

    // Single-shard writes delegate to each shard's own pipeline, so
    // both shard registries record independently.
    for i in 0..40 {
        db.put(format!("a{i:04}").as_bytes(), b"v").unwrap();
    }
    for i in 0..25 {
        db.put(format!("z{i:04}").as_bytes(), b"v").unwrap();
    }

    let per_shard: Vec<u64> = db
        .shard_metrics()
        .iter()
        .map(|(_, snap)| snap.histograms["write_path.total_ns"].count)
        .collect();
    assert_eq!(per_shard, vec![40, 25]);
    let merged = db.metrics();
    assert_eq!(merged.histograms["write_path.total_ns"].count, 40 + 25);
    // Aggregate time merges too (sums are exact, not averaged).
    let sum_of_sums: u64 = db
        .shard_metrics()
        .iter()
        .map(|(_, snap)| snap.histograms["write_path.total_ns"].sum)
        .sum();
    assert_eq!(merged.histograms["write_path.total_ns"].sum, sum_of_sums);
}

/// With `write_path_attribution` off, no stage histogram records a
/// single sample — while the always-on commit-mode counters still
/// work (they cost no clock reads).
#[test]
fn disabled_attribution_records_no_stage_samples() {
    let dir = TempDir::new("disabled");
    let opts = Options::builder()
        .write_path_attribution(false)
        .memtable_bytes(64 * 1024)
        .build()
        .unwrap();
    let db = Db::open(&dir.0, opts).unwrap();

    for i in 0..100 {
        db.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
    }
    let mut batch = WriteBatch::new();
    batch.put("sync", "v");
    db.write(batch, &WriteOptions::durable()).unwrap();

    let snap = db.metrics();
    for &(_, metric) in WRITE_PATH_STAGES {
        assert_eq!(
            snap.histograms[metric].count, 0,
            "{metric} recorded with attribution disabled"
        );
    }
    assert_eq!(snap.histograms["write_path.total_ns"].count, 0);

    let report = db.write_path_report();
    assert_eq!(
        report.solo + report.leader_requests + report.follower_requests + report.withdrawn,
        101,
        "commit-mode counters stay on when attribution is off"
    );
}
