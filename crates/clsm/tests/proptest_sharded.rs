//! Property tests for the shard router and the cross-shard merge.
//!
//! Two properties, each against an executable reference:
//!
//! - `partition_of` (a `partition_point` binary search) must agree
//!   with the obvious linear reference — "count the boundaries ≤ key"
//!   — for arbitrary boundary sets and keys, including empty keys,
//!   keys equal to boundaries, and boundary prefixes.
//! - A sharded store over arbitrary boundaries must be observationally
//!   equal to a single unsharded store fed the same operations: every
//!   get agrees and the merged snapshot scan equals the single-store
//!   scan byte for byte (order included).

use clsm::{partition_of, Db, Options, ShardedDb};
use proptest::prelude::*;

/// Reference router: linear scan.
fn partition_of_reference(boundaries: &[Vec<u8>], key: &[u8]) -> usize {
    boundaries.iter().filter(|b| b.as_slice() <= key).count()
}

/// Ascending, deduplicated, non-empty boundary lists (the invariant
/// `ShardedDb::open_with_boundaries` enforces), over a tiny alphabet
/// so collisions with keys are common.
fn boundaries_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..4, 1..4), 1..5).prop_map(|mut bs| {
        bs.sort();
        bs.dedup();
        bs
    })
}

fn keys_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..4, 0..5), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn router_agrees_with_linear_reference(
        boundaries in boundaries_strategy(),
        keys in keys_strategy(),
    ) {
        for key in &keys {
            prop_assert_eq!(
                partition_of(&boundaries, key),
                partition_of_reference(&boundaries, key),
                "key {:?} boundaries {:?}", key, boundaries
            );
        }
        // Boundary keys themselves route to the shard they open.
        for (i, b) in boundaries.iter().enumerate() {
            prop_assert_eq!(partition_of(&boundaries, b), i + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_store_equals_single_store(
        boundaries in boundaries_strategy(),
        // Value 256 encodes a delete; 0..=255 a put of that byte.
        // Keys are non-empty — the store rejects empty keys.
        ops in prop::collection::vec(
            (prop::collection::vec(0u8..4, 1..5), 0u16..257),
            1..50,
        ),
    ) {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let root = std::env::temp_dir().join(format!(
            "clsm-prop-shard-{}-{stamp}",
            std::process::id()
        ));
        let sharded_dir = root.join("sharded");
        let single_dir = root.join("single");
        std::fs::create_dir_all(&sharded_dir).unwrap();
        std::fs::create_dir_all(&single_dir).unwrap();

        let sharded = ShardedDb::open_with_boundaries(
            &sharded_dir,
            Options::small_for_tests(),
            boundaries.clone(),
        ).unwrap();
        let single = Db::open(&single_dir, Options::small_for_tests()).unwrap();

        for (key, value) in &ops {
            if *value < 256 {
                let v = [*value as u8];
                sharded.put(key, &v).unwrap();
                single.put(key, &v).unwrap();
            } else {
                sharded.delete(key).unwrap();
                single.delete(key).unwrap();
            }
        }

        // Point reads agree on every touched key.
        for (key, _) in &ops {
            prop_assert_eq!(
                sharded.get(key).unwrap(),
                single.get(key).unwrap(),
                "get({:?}) disagrees, boundaries {:?}", key, boundaries
            );
        }

        // The merged cross-shard scan equals the single-store scan —
        // same keys, same values, same global order.
        let merged = sharded.snapshot().unwrap().scan(.., usize::MAX).unwrap();
        let reference = single.snapshot().unwrap().scan(.., usize::MAX).unwrap();
        prop_assert_eq!(merged, reference, "boundaries {:?}", boundaries);

        drop(sharded);
        drop(single);
        let _ = std::fs::remove_dir_all(&root);
    }
}
