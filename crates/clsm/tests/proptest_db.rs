//! Model-based property tests: the database must agree with an
//! in-memory reference model under arbitrary operation sequences, with
//! flushes forced at arbitrary points and snapshots checked against
//! frozen copies of the model.

use std::collections::BTreeMap;

use clsm::{Db, Options, RmwDecision};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, value: Vec<u8> },
    Delete { key: u8 },
    PutIfAbsent { key: u8, value: Vec<u8> },
    RmwAppend { key: u8, suffix: u8 },
    TakeSnapshot,
    Flush,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u8..12, prop::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(key, value)| Op::Put { key, value }),
        2 => (0u8..12).prop_map(|key| Op::Delete { key }),
        2 => (0u8..12, prop::collection::vec(any::<u8>(), 1..8))
            .prop_map(|(key, value)| Op::PutIfAbsent { key, value }),
        2 => (0u8..12, any::<u8>()).prop_map(|(key, suffix)| Op::RmwAppend { key, suffix }),
        1 => Just(Op::TakeSnapshot),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key-{k:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn db_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dir = std::env::temp_dir().join(format!(
            "clsm-prop-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let mut db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Live snapshots paired with their frozen model copy.
        type FrozenSnap = (clsm::Snapshot, BTreeMap<Vec<u8>, Vec<u8>>);
        let mut snaps: Vec<FrozenSnap> = Vec::new();

        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    db.put(&key_bytes(*key), value).unwrap();
                    model.insert(key_bytes(*key), value.clone());
                }
                Op::Delete { key } => {
                    db.delete(&key_bytes(*key)).unwrap();
                    model.remove(&key_bytes(*key));
                }
                Op::PutIfAbsent { key, value } => {
                    let stored = db.put_if_absent(&key_bytes(*key), value).unwrap();
                    let expect = !model.contains_key(&key_bytes(*key));
                    prop_assert_eq!(stored, expect);
                    if expect {
                        model.insert(key_bytes(*key), value.clone());
                    }
                }
                Op::RmwAppend { key, suffix } => {
                    let s = *suffix;
                    db.read_modify_write(&key_bytes(*key), move |cur| {
                        let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
                        v.push(s);
                        RmwDecision::Update(v)
                    })
                    .unwrap();
                    model.entry(key_bytes(*key)).or_default().push(s);
                }
                Op::TakeSnapshot => {
                    snaps.push((db.snapshot().unwrap(), model.clone()));
                    if snaps.len() > 3 {
                        snaps.remove(0);
                    }
                }
                Op::Flush => {
                    db.compact_to_quiescence().unwrap();
                }
                Op::Reopen => {
                    // Snapshots cannot outlive the handle; drop them.
                    snaps.clear();
                    drop(db);
                    db = Db::open(&dir, Options::small_for_tests()).unwrap();
                }
            }

            // Point reads agree with the live model.
            for k in 0u8..12 {
                let got = db.get(&key_bytes(k)).unwrap();
                let want = model.get(&key_bytes(k)).cloned();
                prop_assert_eq!(got, want, "key {}", k);
            }
            // Every live snapshot agrees with its frozen model.
            for (snap, frozen) in &snaps {
                let scanned: Vec<(Vec<u8>, Vec<u8>)> =
                    snap.iter().unwrap().map(|r| r.unwrap()).collect();
                let expect: Vec<(Vec<u8>, Vec<u8>)> =
                    frozen.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                prop_assert_eq!(&scanned, &expect);
            }
        }

        drop(snaps);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
