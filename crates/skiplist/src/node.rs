//! Skip-list node layout over the arena.
//!
//! A node is a fixed header followed by a variable-height "tower" of
//! forward pointers, allocated in one arena block. Keys and values are
//! separate arena allocations referenced by pointer, so nodes stay
//! compact and the header layout is independent of key size.

use std::sync::atomic::AtomicPtr;

use clsm_util::arena::Arena;

use crate::EntryKind;

/// Maximum tower height. With branching factor 4 this comfortably
/// supports tens of millions of entries (LevelDB uses 12 as well).
pub const MAX_HEIGHT: usize = 12;

/// Node header; the tower of `height` forward pointers follows
/// immediately in memory.
#[repr(C)]
pub(crate) struct Node {
    /// Version timestamp.
    pub(crate) ts: u64,
    key_ptr: *const u8,
    value_ptr: *const u8,
    key_len: u32,
    value_len: u32,
    kind: u8,
    /// Tower height; `next(level)` is valid for `level < height`.
    pub(crate) height: u8,
    _pad: [u8; 6],
}

impl Node {
    /// Allocates and initializes a node in `arena`, copying `key` and
    /// `value` in. Returns a pointer valid for the arena's lifetime.
    pub(crate) fn alloc(
        arena: &Arena,
        key: &[u8],
        ts: u64,
        value: &[u8],
        kind: EntryKind,
        height: usize,
    ) -> *const Node {
        debug_assert!((1..=MAX_HEIGHT).contains(&height));
        let size = std::mem::size_of::<Node>() + height * std::mem::size_of::<AtomicPtr<Node>>();
        let mem = arena.alloc(size) as *mut Node;
        let key_copy = arena.alloc_bytes(key);
        let value_copy = arena.alloc_bytes(value);
        // SAFETY: `mem` is a fresh, 8-aligned allocation of at least
        // `size` bytes, exclusively owned by this thread until the node
        // is published by a CAS in the list.
        unsafe {
            mem.write(Node {
                ts,
                key_ptr: key_copy.as_ptr(),
                value_ptr: value_copy.as_ptr(),
                key_len: key.len() as u32,
                value_len: value.len() as u32,
                kind: kind as u8,
                height: height as u8,
                _pad: [0; 6],
            });
            // The arena zero-initializes memory, which is a valid null
            // AtomicPtr representation, but write the tower explicitly
            // for clarity and independence from the arena contract.
            let tower = mem.add(1) as *mut AtomicPtr<Node>;
            for level in 0..height {
                tower.add(level).write(AtomicPtr::new(std::ptr::null_mut()));
            }
        }
        mem
    }

    /// Allocates the sentinel head node (full height, empty key).
    pub(crate) fn alloc_head(arena: &Arena) -> *const Node {
        Node::alloc(arena, &[], 0, &[], EntryKind::Put, MAX_HEIGHT)
    }

    /// The forward pointer at `level`.
    pub(crate) fn next(&self, level: usize) -> &AtomicPtr<Node> {
        debug_assert!(level < self.height as usize);
        // SAFETY: `alloc` reserved `height` AtomicPtr slots directly
        // after the header, and `level < height` was asserted.
        unsafe {
            let tower = (self as *const Node).add(1) as *const AtomicPtr<Node>;
            &*tower.add(level)
        }
    }

    /// The node's key, borrowed for the lifetime of `&self`.
    pub(crate) fn key(&self) -> &[u8] {
        // SAFETY: `key_ptr`/`key_len` were produced by `alloc_bytes` on
        // the owning arena, which outlives every node reference.
        unsafe { std::slice::from_raw_parts(self.key_ptr, self.key_len as usize) }
    }

    /// The node's key with a caller-chosen lifetime.
    ///
    /// # Safety
    ///
    /// The caller must ensure the arena that owns the node outlives
    /// `'any` (e.g. via the `SkipList` borrow or an `Arc` to it).
    pub(crate) unsafe fn key_slice<'any>(&self) -> &'any [u8] {
        // SAFETY: contract delegated to the caller; the pointed-to data
        // is valid as long as the arena lives.
        unsafe { std::slice::from_raw_parts(self.key_ptr, self.key_len as usize) }
    }

    /// The node's value (`None` = tombstone) with a caller-chosen
    /// lifetime.
    ///
    /// # Safety
    ///
    /// Same contract as [`Node::key_slice`].
    pub(crate) unsafe fn value_slice<'any>(&self) -> Option<&'any [u8]> {
        if self.kind == EntryKind::Delete as u8 {
            return None;
        }
        // SAFETY: as in `key_slice`.
        Some(unsafe { std::slice::from_raw_parts(self.value_ptr, self.value_len as usize) })
    }

    /// The node's value bounded by `&self` (`None` = tombstone).
    #[cfg(test)]
    pub(crate) fn value(&self) -> Option<&[u8]> {
        // SAFETY: bounded by `&self`, which the arena outlives.
        unsafe { self.value_slice() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_compact_and_aligned() {
        assert_eq!(std::mem::size_of::<Node>() % 8, 0);
        assert!(std::mem::align_of::<Node>() <= 8);
    }

    #[test]
    fn alloc_roundtrips_fields() {
        let arena = Arena::new();
        let n = Node::alloc(&arena, b"key", 42, b"value", EntryKind::Put, 3);
        // SAFETY: freshly allocated node, arena alive.
        let n = unsafe { &*n };
        assert_eq!(n.key(), b"key");
        assert_eq!(n.ts, 42);
        assert_eq!(n.value(), Some(&b"value"[..]));
        assert_eq!(n.height, 3);
        for level in 0..3 {
            assert!(n
                .next(level)
                .load(std::sync::atomic::Ordering::Relaxed)
                .is_null());
        }
    }

    #[test]
    fn tombstone_has_no_value() {
        let arena = Arena::new();
        let n = Node::alloc(&arena, b"k", 7, &[], EntryKind::Delete, 1);
        // SAFETY: as above.
        let n = unsafe { &*n };
        assert_eq!(n.value(), None);
        assert_eq!(n.key(), b"k");
    }

    #[test]
    fn empty_key_and_value_are_fine() {
        let arena = Arena::new();
        let n = Node::alloc(&arena, &[], 1, &[], EntryKind::Put, MAX_HEIGHT);
        // SAFETY: as above.
        let n = unsafe { &*n };
        assert!(n.key().is_empty());
        assert_eq!(n.value(), Some(&[][..]));
    }
}
