//! Arena-backed lock-free multi-versioned skip list — the cLSM
//! in-memory component.
//!
//! Entries are `(key, timestamp, value)` triples ordered by key
//! ascending and timestamp *descending*, so the first entry for a key
//! is its newest version (§3.2: "the underlying map is sorted in
//! lexicographical order of the key-timestamp pair"). Values are either
//! user bytes or a deletion marker (the paper's ⊥).
//!
//! Concurrency properties required by the paper and provided here:
//!
//! - **Non-blocking, thread-safe insert and find** (§3.1): inserts link
//!   nodes bottom-up with CAS; finds are wait-free traversals.
//! - **Weakly consistent iterators** (§3.2): entries are never removed,
//!   so any entry present for the whole duration of a scan is returned
//!   by the scan.
//! - **RMW conflict detection** (§3.3, Algorithm 3):
//!   [`SkipList::insert_if_latest`] detects, at the linked-list level,
//!   whether a newer version of the key raced in between the caller's
//!   read and its insertion, using the predecessor/successor checks of
//!   Algorithm 3 lines 6, 8 and 12.
//!
//! Nodes and their keys/values live in a lock-free [`Arena`]; nothing
//! is freed until the whole list (i.e. the memory component) is
//! dropped after its merge into the disk component.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use clsm_util::arena::Arena;

mod node;
use node::Node;
pub use node::MAX_HEIGHT;

/// The kind of a stored entry: a user value or a deletion marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A live value.
    Put,
    /// A tombstone (the paper's ⊥ deletion marker).
    Delete,
}

/// A borrowed view of one `(key, ts, value)` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<'a> {
    /// User key.
    pub key: &'a [u8],
    /// Version timestamp (cLSM time, unique per write).
    pub ts: u64,
    /// `Some(bytes)` for a put, `None` for a deletion marker.
    pub value: Option<&'a [u8]>,
}

/// Error returned by [`SkipList::insert_if_latest`] when a conflicting
/// write to the same key was detected (Algorithm 3's "conflict").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict;

/// What [`SkipList::link_node`] verifies before each bottom-level CAS.
#[derive(Clone, Copy)]
enum LinkCheck {
    /// Unconditional (recovery replay, component merges): any timestamp
    /// order is legitimate.
    Plain,
    /// Fail if a newer version of the key is already linked
    /// ([`SkipList::insert_as_newest`]).
    Newest,
    /// Algorithm 3: fail unless the key's current latest version
    /// matches ([`SkipList::insert_if_latest`]).
    IfLatest(Option<u64>),
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read-modify-write conflict: a newer version of the key exists"
        )
    }
}

impl std::error::Error for Conflict {}

/// A concurrent, insert-only, multi-versioned skip list.
///
/// # Examples
///
/// ```
/// use clsm_skiplist::SkipList;
///
/// let list = SkipList::new();
/// list.insert(b"k", 1, Some(b"v1"));
/// list.insert(b"k", 2, Some(b"v2"));
/// // Newest version at or below ts=2:
/// let (ts, v) = list.get_latest(b"k", 2).unwrap();
/// assert_eq!((ts, v), (2, Some(&b"v2"[..])));
/// // Snapshot read at ts=1 sees the older version:
/// let (ts, v) = list.get_latest(b"k", 1).unwrap();
/// assert_eq!((ts, v), (1, Some(&b"v1"[..])));
/// ```
pub struct SkipList {
    arena: Arena,
    head: *const Node,
    max_height: AtomicUsize,
    len: AtomicUsize,
    rng_state: AtomicU64,
}

// SAFETY: the raw `head` pointer refers into `arena`, which `SkipList`
// owns; all shared-state mutation goes through atomics. Concurrent
// inserts and reads are synchronized by the CAS/Acquire protocol in
// `link_node` / `find`.
unsafe impl Send for SkipList {}
// SAFETY: as above; `&SkipList` only exposes atomically synchronized
// operations.
unsafe impl Sync for SkipList {}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// Creates an empty list with the default arena chunk size.
    pub fn new() -> Self {
        Self::with_arena(Arena::new())
    }

    /// Creates an empty list over the given arena.
    pub fn with_arena(arena: Arena) -> Self {
        let head = Node::alloc_head(&arena);
        SkipList {
            arena,
            head,
            max_height: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            rng_state: AtomicU64::new(0x853c_49e6_748f_ea9b),
        }
    }

    /// Number of entries (versions, not distinct keys).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` when no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes consumed by entries (arena accounting).
    pub fn memory_usage(&self) -> usize {
        self.arena.memory_usage()
    }

    /// Orders `node` relative to the search target `(key, ts)`:
    /// key ascending, timestamp descending.
    fn cmp_node(node: &Node, key: &[u8], ts: u64) -> std::cmp::Ordering {
        node.key().cmp(key).then(ts.cmp(&node.ts))
    }

    /// Finds, at every level, the rightmost node ordered before
    /// `(key, ts)` (`prev`) and its successor (`succ`). Returns the
    /// bottom-level successor: the first node `>= (key, ts)`.
    fn find(
        &self,
        key: &[u8],
        ts: u64,
        prev: &mut [*const Node; MAX_HEIGHT],
        succ: &mut [*const Node; MAX_HEIGHT],
    ) -> *const Node {
        let mut level = self.max_height.load(Ordering::Relaxed) - 1;
        // Levels above the current max trivially have head → null.
        for l in level + 1..MAX_HEIGHT {
            prev[l] = self.head;
            succ[l] = std::ptr::null();
        }
        let mut x = self.head;
        loop {
            // SAFETY: `x` is the head or a node reached via next
            // pointers; nodes are arena-allocated and never freed while
            // `&self` is alive.
            let next = unsafe { (*x).next(level) }.load(Ordering::Acquire);
            let advance = !next.is_null() && {
                // SAFETY: non-null next pointers reference live nodes.
                let n = unsafe { &*next };
                Self::cmp_node(n, key, ts) == std::cmp::Ordering::Less
            };
            if advance {
                x = next;
            } else {
                prev[level] = x;
                succ[level] = next;
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    /// Returns the first node `>= (key, ts)` without recording paths.
    fn find_ge(&self, key: &[u8], ts: u64) -> *const Node {
        let mut x = self.head;
        let mut level = self.max_height.load(Ordering::Relaxed) - 1;
        loop {
            // SAFETY: as in `find`.
            let next = unsafe { (*x).next(level) }.load(Ordering::Acquire);
            let advance = !next.is_null() && {
                // SAFETY: as in `find`.
                let n = unsafe { &*next };
                Self::cmp_node(n, key, ts) == std::cmp::Ordering::Less
            };
            if advance {
                x = next;
            } else if level == 0 {
                return next;
            } else {
                level -= 1;
            }
        }
    }

    /// Draws a random tower height with branching factor 4.
    fn random_height(&self) -> usize {
        // SplitMix64 over a wait-free fetch_add'd state: cheap,
        // contention-free, and well distributed.
        let mut z = self
            .rng_state
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let mut height = 1;
        while height < MAX_HEIGHT && z & 3 == 0 {
            height += 1;
            z >>= 2;
        }
        height
    }

    /// Inserts `(key, ts, value)`; `value = None` stores a tombstone.
    ///
    /// Timestamps must be unique per key (the cLSM oracle guarantees
    /// this globally); inserting a duplicate `(key, ts)` is a logic
    /// error and debug-asserts.
    pub fn insert(&self, key: &[u8], ts: u64, value: Option<&[u8]>) {
        let node = self.make_node(key, ts, value);
        self.link_node(node, key, ts, LinkCheck::Plain)
            .expect("plain insert cannot conflict");
    }

    /// Inserts `(key, ts, value)` **iff** no version of `key` newer
    /// than `ts` is already linked; otherwise inserts nothing and
    /// returns [`Conflict`].
    ///
    /// Writers that acquire their timestamp before inserting (put,
    /// delete) need this rather than [`SkipList::insert`]: a racing
    /// conditional writer may read the current latest version, obtain a
    /// *later* timestamp, and link before we do — a plain insert would
    /// then slide into the past below it, silently shadowed, and the
    /// conditional writer's observed "latest" would be wrong. On
    /// [`Conflict`] the caller re-stamps and retries; the conflicting
    /// writer has already made progress, so the retry is non-blocking
    /// in the lock-free sense.
    pub fn insert_as_newest(
        &self,
        key: &[u8],
        ts: u64,
        value: Option<&[u8]>,
    ) -> Result<(), Conflict> {
        let node = self.make_node(key, ts, value);
        // On Err the node is abandoned in the arena, as in
        // `insert_if_latest`.
        self.link_node(node, key, ts, LinkCheck::Newest)
    }

    /// Algorithm 3's conditional insert: installs `(key, ts, value)` as
    /// the new latest version of `key` **iff** the latest version
    /// currently in this list still matches `expected_latest`
    /// (`None` = the key has no version in this list).
    ///
    /// The caller must pass a `ts` greater than every timestamp it has
    /// observed for `key`. Benign CAS failures caused by unrelated keys
    /// are retried internally; a genuine conflicting write to `key`
    /// returns [`Conflict`] and inserts nothing.
    pub fn insert_if_latest(
        &self,
        key: &[u8],
        ts: u64,
        value: Option<&[u8]>,
        expected_latest: Option<u64>,
    ) -> Result<(), Conflict> {
        let node = self.make_node(key, ts, value);
        // On Err the node is abandoned in the arena: the paper's
        // algorithm similarly discards the speculative node; arena
        // memory is reclaimed when the component is merged.
        self.link_node(node, key, ts, LinkCheck::IfLatest(expected_latest))
    }

    /// Copies key and value into the arena and builds an unlinked node.
    fn make_node(&self, key: &[u8], ts: u64, value: Option<&[u8]>) -> *const Node {
        let height = self.random_height();
        let kind = if value.is_some() {
            EntryKind::Put
        } else {
            EntryKind::Delete
        };
        Node::alloc(&self.arena, key, ts, value.unwrap_or(&[]), kind, height)
    }

    /// Links `node` into the list, applying `check` before every
    /// bottom-level CAS attempt.
    fn link_node(
        &self,
        node: *const Node,
        key: &[u8],
        ts: u64,
        check: LinkCheck,
    ) -> Result<(), Conflict> {
        // SAFETY: `node` was just allocated by `make_node` and is not
        // yet visible to other threads.
        let height = unsafe { (*node).height as usize };

        // Keep the list's search height in sync (CAS-raise).
        let mut cur_max = self.max_height.load(Ordering::Relaxed);
        while height > cur_max {
            match self.max_height.compare_exchange_weak(
                cur_max,
                height,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(v) => cur_max = v,
            }
        }

        let mut prev = [std::ptr::null::<Node>(); MAX_HEIGHT];
        let mut succ = [std::ptr::null::<Node>(); MAX_HEIGHT];

        // Bottom-level link: only this CAS makes the node reachable, so
        // only it needs conflict detection (Algorithm 3 line 12).
        loop {
            self.find(key, ts, &mut prev, &mut succ);

            match check {
                LinkCheck::Plain => {
                    debug_assert!(
                        {
                            let s = succ[0];
                            // SAFETY: `succ[0]` is null or a live node.
                            s.is_null()
                                || unsafe { Self::cmp_node(&*s, key, ts) }
                                    != std::cmp::Ordering::Equal
                        },
                        "duplicate (key, ts) insertion"
                    );
                }
                LinkCheck::Newest => {
                    // Same-key versions sort newest-first, so a newer
                    // version exists iff the node just before our
                    // insertion point holds `key`. A newer version
                    // linked concurrently after this check shares our
                    // `prev[0]`, fails our bottom-level CAS, and is
                    // seen on the retry — the same argument that makes
                    // `check_conflict` sound.
                    if prev[0] != self.head {
                        // SAFETY: `prev[0]` is a live node (head
                        // excluded above).
                        let p = unsafe { &*prev[0] };
                        if p.key() == key {
                            debug_assert!(p.ts > ts);
                            return Err(Conflict);
                        }
                    }
                }
                LinkCheck::IfLatest(expected) => {
                    self.check_conflict(key, ts, prev[0], succ[0], expected)?;
                }
            }

            for (level, &s) in succ.iter().enumerate().take(height) {
                // SAFETY: `node` is still private to this thread.
                unsafe { (*node).next(level) }.store(s as *mut Node, Ordering::Relaxed);
            }
            // SAFETY: `prev[0]` is the head or a live node.
            let link = unsafe { (*prev[0]).next(0) };
            // Release publishes the node's contents and its tower.
            if link
                .compare_exchange(
                    succ[0] as *mut Node,
                    node as *mut Node,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                break;
            }
        }

        // Upper-level links: pure performance, no conflict checks
        // needed (§3.3: "with no need for a new timestamp or conflict
        // detection").
        for level in 1..height {
            loop {
                // SAFETY: `prev[level]` is the head or a live node.
                let link = unsafe { (*prev[level]).next(level) };
                if link
                    .compare_exchange(
                        succ[level] as *mut Node,
                        node as *mut Node,
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    break;
                }
                // Path changed beneath us: recompute and refresh the
                // node's forward pointer at this level. Storing is safe
                // because the node is unreachable at `level` until the
                // CAS above succeeds.
                self.find(key, ts, &mut prev, &mut succ);
                // SAFETY: node is live; see the visibility argument
                // above.
                unsafe { (*node).next(level) }.store(succ[level] as *mut Node, Ordering::Relaxed);
            }
        }

        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Algorithm 3 lines 6 and 8: detect a conflicting newer version.
    fn check_conflict(
        &self,
        key: &[u8],
        ts: u64,
        prev: *const Node,
        succ: *const Node,
        expected: Option<u64>,
    ) -> Result<(), Conflict> {
        // Line 6 analogue: a node for `key` ordered *before* our
        // insertion point means a version with timestamp > ts raced in.
        if prev != self.head {
            // SAFETY: `prev` is a live node (head was excluded above).
            let p = unsafe { &*prev };
            if p.key() == key {
                debug_assert!(p.ts > ts);
                return Err(Conflict);
            }
        }
        // Line 8 analogue: the first node at-or-after our insertion
        // point holds `key`'s current latest version; it must match
        // what the caller read.
        let current_latest = if succ.is_null() {
            None
        } else {
            // SAFETY: non-null successor is a live node.
            let s = unsafe { &*succ };
            (s.key() == key).then_some(s.ts)
        };
        if current_latest != expected {
            return Err(Conflict);
        }
        Ok(())
    }

    /// Returns the newest version of `key` with timestamp `<= max_ts`,
    /// as `(ts, value)` where `value = None` marks a tombstone.
    pub fn get_latest(&self, key: &[u8], max_ts: u64) -> Option<(u64, Option<&[u8]>)> {
        let node = self.find_ge(key, max_ts);
        if node.is_null() {
            return None;
        }
        // SAFETY: `find_ge` returns null or a live node; the returned
        // slices are bounded by `&self`, which owns the arena.
        let n = unsafe { &*node };
        (n.key() == key).then(|| (n.ts, unsafe { n.value_slice() }))
    }

    /// Creates a cursor positioned before the first entry.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor {
            list: self,
            node: std::ptr::null(),
        }
    }

    /// Creates an iterator over all entries in order.
    pub fn iter(&self) -> Iter<'_> {
        let mut c = self.cursor();
        c.seek_to_first();
        Iter {
            cursor: c,
            first: true,
        }
    }

    /// Creates an owning cursor that keeps the list alive via `Arc`
    /// (used by cross-component merging iterators; the `Arc` refcount
    /// plays the role of the paper's per-component reference counter).
    pub fn owned_cursor(self: &Arc<Self>) -> OwnedCursor {
        OwnedCursor {
            list: Arc::clone(self),
            node: std::ptr::null(),
        }
    }

    fn first_node(&self) -> *const Node {
        // SAFETY: head is always valid.
        unsafe { (*self.head).next(0) }.load(Ordering::Acquire)
    }

    fn next_node(&self, node: *const Node) -> *const Node {
        // SAFETY: caller passes a live node obtained from this list.
        unsafe { (*node).next(0) }.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipList")
            .field("len", &self.len())
            .field("memory_usage", &self.memory_usage())
            .finish()
    }
}

/// A movable position within a [`SkipList`].
///
/// Iteration is weakly consistent: entries inserted during the scan may
/// or may not be observed, but entries present for the whole scan are
/// always observed, and order is always respected.
pub struct Cursor<'a> {
    list: &'a SkipList,
    node: *const Node,
}

impl<'a> Cursor<'a> {
    /// Returns `true` when positioned on an entry.
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// Positions on the first entry (or invalidates if empty).
    pub fn seek_to_first(&mut self) {
        self.node = self.list.first_node();
    }

    /// Positions on the first entry `>= (key, ts)` in list order.
    ///
    /// Use `ts = u64::MAX` to land on the newest version of `key`.
    pub fn seek(&mut self, key: &[u8], ts: u64) {
        self.node = self.list.find_ge(key, ts);
    }

    /// Advances to the next entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the cursor is invalid.
    pub fn advance(&mut self) {
        debug_assert!(self.valid());
        self.node = self.list.next_node(self.node);
    }

    /// The current entry's key.
    pub fn key(&self) -> &'a [u8] {
        debug_assert!(self.valid());
        // SAFETY: `valid()` implies `node` is a live node whose data
        // lives in the arena for at least `'a`.
        unsafe { (*self.node).key_slice() }
    }

    /// The current entry's timestamp.
    pub fn ts(&self) -> u64 {
        debug_assert!(self.valid());
        // SAFETY: as in `key`.
        unsafe { (*self.node).ts }
    }

    /// The current entry's value (`None` = tombstone).
    pub fn value(&self) -> Option<&'a [u8]> {
        debug_assert!(self.valid());
        // SAFETY: as in `key`.
        unsafe { (*self.node).value_slice() }
    }

    /// The current entry as an [`Entry`].
    pub fn entry(&self) -> Entry<'a> {
        Entry {
            key: self.key(),
            ts: self.ts(),
            value: self.value(),
        }
    }
}

/// Iterator adapter over a [`Cursor`].
pub struct Iter<'a> {
    cursor: Cursor<'a>,
    first: bool,
}

impl<'a> Iterator for Iter<'a> {
    type Item = Entry<'a>;

    fn next(&mut self) -> Option<Entry<'a>> {
        if self.first {
            self.first = false;
        } else if self.cursor.valid() {
            self.cursor.advance();
        }
        self.cursor.valid().then(|| self.cursor.entry())
    }
}

/// A cursor that owns a reference to its list, so it can outlive the
/// borrow scope (needed by the DB-level merging iterators, which hold
/// components via `Arc` — the paper's per-component reference counts).
pub struct OwnedCursor {
    list: Arc<SkipList>,
    node: *const Node,
}

// SAFETY: `node` points into the arena owned by `list`, which the Arc
// keeps alive; all list accesses are the same synchronized operations
// as through `Cursor`.
unsafe impl Send for OwnedCursor {}

impl OwnedCursor {
    /// Returns `true` when positioned on an entry.
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// Positions on the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = self.list.first_node();
    }

    /// Positions on the first entry `>= (key, ts)`.
    pub fn seek(&mut self, key: &[u8], ts: u64) {
        self.node = self.list.find_ge(key, ts);
    }

    /// Advances to the next entry.
    pub fn advance(&mut self) {
        debug_assert!(self.valid());
        self.node = self.list.next_node(self.node);
    }

    /// The current entry's key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        // SAFETY: `valid()` implies a live node; data outlives `self`
        // because `self.list` keeps the arena alive.
        unsafe { (*self.node).key_slice() }
    }

    /// The current entry's timestamp.
    pub fn ts(&self) -> u64 {
        debug_assert!(self.valid());
        // SAFETY: as in `key`.
        unsafe { (*self.node).ts }
    }

    /// The current entry's value (`None` = tombstone).
    pub fn value(&self) -> Option<&[u8]> {
        debug_assert!(self.valid());
        // SAFETY: as in `key`.
        unsafe { (*self.node).value_slice() }
    }
}

#[cfg(test)]
mod tests;
