//! Unit and concurrency tests for the skip list.

use super::*;

fn collect(list: &SkipList) -> Vec<(Vec<u8>, u64, Option<Vec<u8>>)> {
    list.iter()
        .map(|e| (e.key.to_vec(), e.ts, e.value.map(|v| v.to_vec())))
        .collect()
}

#[test]
fn empty_list() {
    let list = SkipList::new();
    assert!(list.is_empty());
    assert_eq!(list.len(), 0);
    assert!(list.get_latest(b"x", u64::MAX).is_none());
    assert!(list.iter().next().is_none());
    let mut c = list.cursor();
    c.seek_to_first();
    assert!(!c.valid());
}

#[test]
fn single_insert_get() {
    let list = SkipList::new();
    list.insert(b"hello", 1, Some(b"world"));
    assert_eq!(list.len(), 1);
    assert_eq!(
        list.get_latest(b"hello", u64::MAX),
        Some((1, Some(&b"world"[..])))
    );
    assert_eq!(list.get_latest(b"hello", 1), Some((1, Some(&b"world"[..]))));
    // A snapshot below the write's time must not see it.
    assert_eq!(list.get_latest(b"hello", 0), None);
    assert!(list.get_latest(b"hell", u64::MAX).is_none());
    assert!(list.get_latest(b"hello!", u64::MAX).is_none());
}

#[test]
fn versions_sorted_newest_first() {
    let list = SkipList::new();
    list.insert(b"k", 2, Some(b"v2"));
    list.insert(b"k", 1, Some(b"v1"));
    list.insert(b"k", 3, Some(b"v3"));
    let entries = collect(&list);
    assert_eq!(
        entries,
        vec![
            (b"k".to_vec(), 3, Some(b"v3".to_vec())),
            (b"k".to_vec(), 2, Some(b"v2".to_vec())),
            (b"k".to_vec(), 1, Some(b"v1".to_vec())),
        ]
    );
    assert_eq!(list.get_latest(b"k", u64::MAX), Some((3, Some(&b"v3"[..]))));
    assert_eq!(list.get_latest(b"k", 2), Some((2, Some(&b"v2"[..]))));
    assert_eq!(list.get_latest(b"k", 1), Some((1, Some(&b"v1"[..]))));
}

#[test]
fn keys_sorted_ascending() {
    let list = SkipList::new();
    let keys: Vec<&[u8]> = vec![b"pear", b"apple", b"zebra", b"mango", b"fig"];
    for (i, k) in keys.iter().enumerate() {
        list.insert(k, i as u64 + 1, Some(b"v"));
    }
    let got: Vec<Vec<u8>> = list.iter().map(|e| e.key.to_vec()).collect();
    let mut want: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn tombstones_are_versions() {
    let list = SkipList::new();
    list.insert(b"k", 1, Some(b"v"));
    list.insert(b"k", 2, None);
    assert_eq!(list.get_latest(b"k", u64::MAX), Some((2, None)));
    assert_eq!(list.get_latest(b"k", 1), Some((1, Some(&b"v"[..]))));
}

#[test]
fn seek_semantics() {
    let list = SkipList::new();
    list.insert(b"b", 5, Some(b"b5"));
    list.insert(b"b", 3, Some(b"b3"));
    list.insert(b"d", 4, Some(b"d4"));

    let mut c = list.cursor();
    // Seek to newest version of "b".
    c.seek(b"b", u64::MAX);
    assert!(c.valid());
    assert_eq!((c.key(), c.ts()), (&b"b"[..], 5));
    // Seek to version <= 4 of "b".
    c.seek(b"b", 4);
    assert_eq!((c.key(), c.ts()), (&b"b"[..], 3));
    // Seek past all versions of "b" lands on "d".
    c.seek(b"b", 2);
    assert_eq!((c.key(), c.ts()), (&b"d"[..], 4));
    // Seek to a key between existing keys.
    c.seek(b"c", u64::MAX);
    assert_eq!((c.key(), c.ts()), (&b"d"[..], 4));
    // Seek past the end.
    c.seek(b"e", u64::MAX);
    assert!(!c.valid());
}

#[test]
fn owned_cursor_outlives_borrow_scope() {
    let list = Arc::new(SkipList::new());
    list.insert(b"a", 1, Some(b"1"));
    list.insert(b"b", 2, Some(b"2"));
    let mut cur = list.owned_cursor();
    drop(list); // the cursor's Arc keeps the list alive
    cur.seek_to_first();
    assert!(cur.valid());
    assert_eq!(cur.key(), b"a");
    cur.advance();
    assert_eq!(cur.key(), b"b");
    assert_eq!(cur.value(), Some(&b"2"[..]));
    cur.advance();
    assert!(!cur.valid());
}

#[test]
fn insert_if_latest_success_and_conflict() {
    let list = SkipList::new();
    // Key absent: expected None succeeds.
    list.insert_if_latest(b"k", 1, Some(b"v1"), None).unwrap();
    // Expected None now fails (a version exists).
    assert_eq!(
        list.insert_if_latest(b"k", 2, Some(b"x"), None),
        Err(Conflict)
    );
    // Correct expectation succeeds.
    list.insert_if_latest(b"k", 2, Some(b"v2"), Some(1))
        .unwrap();
    // Stale expectation fails.
    assert_eq!(
        list.insert_if_latest(b"k", 3, Some(b"x"), Some(1)),
        Err(Conflict)
    );
    assert_eq!(list.get_latest(b"k", u64::MAX), Some((2, Some(&b"v2"[..]))));
    // Conflicting attempts must not have inserted anything.
    assert_eq!(list.len(), 2);
}

#[test]
fn insert_if_latest_other_keys_do_not_conflict() {
    let list = SkipList::new();
    list.insert(b"a", 1, Some(b"va"));
    list.insert(b"c", 2, Some(b"vc"));
    // "b" sits between two occupied slots; neighbors are not conflicts.
    list.insert_if_latest(b"b", 3, Some(b"vb"), None).unwrap();
    assert_eq!(list.get_latest(b"b", u64::MAX), Some((3, Some(&b"vb"[..]))));
}

#[test]
fn insert_as_newest_rejects_into_the_past() {
    let list = SkipList::new();
    list.insert_as_newest(b"k", 5, Some(b"v5")).unwrap();
    // A lower timestamp would be shadowed the moment it lands.
    assert_eq!(list.insert_as_newest(b"k", 3, Some(b"x")), Err(Conflict));
    // Newer succeeds; other keys never conflict regardless of ts.
    list.insert_as_newest(b"k", 7, Some(b"v7")).unwrap();
    list.insert_as_newest(b"a", 1, Some(b"va")).unwrap();
    list.insert_as_newest(b"z", 2, None).unwrap();
    assert_eq!(list.get_latest(b"k", u64::MAX), Some((7, Some(&b"v7"[..]))));
    assert_eq!(list.get_latest(b"k", 6), Some((5, Some(&b"v5"[..]))));
    assert_eq!(list.get_latest(b"z", u64::MAX), Some((2, None)));
    assert_eq!(list.len(), 4);
}

#[test]
fn large_volume_ordering_and_lookups() {
    let list = SkipList::new();
    let n = 10_000u64;
    // Insert in pseudo-random order.
    let mut order: Vec<u64> = (0..n).collect();
    let mut state = 7u64;
    for i in (1..n as usize).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    for &i in &order {
        let key = format!("key{:08}", i);
        list.insert(key.as_bytes(), i + 1, Some(format!("val{i}").as_bytes()));
    }
    assert_eq!(list.len(), n as usize);
    // Full scan is sorted and complete.
    let mut count = 0u64;
    let mut last: Option<Vec<u8>> = None;
    for e in list.iter() {
        if let Some(l) = &last {
            assert!(e.key > l.as_slice());
        }
        last = Some(e.key.to_vec());
        count += 1;
    }
    assert_eq!(count, n);
    // Point lookups.
    for i in (0..n).step_by(997) {
        let key = format!("key{:08}", i);
        let (ts, v) = list.get_latest(key.as_bytes(), u64::MAX).unwrap();
        assert_eq!(ts, i + 1);
        assert_eq!(v.unwrap(), format!("val{i}").as_bytes());
    }
}

#[test]
fn concurrent_inserts_disjoint_keys() {
    let list = Arc::new(SkipList::new());
    let threads = 8;
    let per_thread = 2_000u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let list = Arc::clone(&list);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let key = format!("t{t:02}-{i:06}");
                let ts = t as u64 * per_thread + i + 1;
                list.insert(key.as_bytes(), ts, Some(key.as_bytes()));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(list.len(), threads * per_thread as usize);
    // Every key is present with its own value, and the scan is sorted.
    let mut last: Option<Vec<u8>> = None;
    let mut seen = 0;
    for e in list.iter() {
        assert_eq!(e.key, e.value.unwrap());
        if let Some(l) = &last {
            assert!(e.key > l.as_slice());
        }
        last = Some(e.key.to_vec());
        seen += 1;
    }
    assert_eq!(seen, threads * per_thread as usize);
}

#[test]
fn concurrent_inserts_same_keys_different_versions() {
    let list = Arc::new(SkipList::new());
    let threads = 8u64;
    let versions = 500u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let list = Arc::clone(&list);
        handles.push(std::thread::spawn(move || {
            for i in 0..versions {
                // All threads hammer the same 10 keys with globally
                // unique timestamps.
                let key = format!("shared{}", i % 10);
                let ts = i * threads + t + 1;
                list.insert(key.as_bytes(), ts, Some(ts.to_string().as_bytes()));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(list.len(), (threads * versions) as usize);
    // Versions of each key are strictly descending in scan order.
    let mut last: Option<(Vec<u8>, u64)> = None;
    for e in list.iter() {
        if let Some((lk, lts)) = &last {
            if lk.as_slice() == e.key {
                assert!(e.ts < *lts, "versions out of order for {:?}", e.key);
            } else {
                assert!(e.key > lk.as_slice());
            }
        }
        // Value encodes its own timestamp.
        assert_eq!(e.value.unwrap(), e.ts.to_string().as_bytes());
        last = Some((e.key.to_vec(), e.ts));
    }
    // The latest version of each key is the maximum ts written to it:
    // key j is written at i ∈ {j, j+10, ...}; the largest is
    // versions-10+j, by the last thread (t = threads-1).
    for j in 0..10u64 {
        let key = format!("shared{j}");
        let expect_max = (versions - 10 + j) * threads + threads;
        let (ts, _) = list.get_latest(key.as_bytes(), u64::MAX).unwrap();
        assert_eq!(ts, expect_max, "key {key}");
    }
}

#[test]
fn concurrent_readers_during_inserts() {
    let list = Arc::new(SkipList::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // Writers.
    for t in 0..4u64 {
        let list = Arc::clone(&list);
        handles.push(std::thread::spawn(move || {
            for i in 0..3_000u64 {
                let key = format!("k{:06}", (i * 37 + t) % 5_000);
                list.insert(key.as_bytes(), i * 4 + t + 1, Some(b"v"));
            }
        }));
    }
    // Readers continuously validate sortedness (weak consistency allows
    // missing in-flight inserts but never misordering).
    for _ in 0..2 {
        let list = Arc::clone(&list);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut last: Option<(Vec<u8>, u64)> = None;
                for e in list.iter() {
                    if let Some((lk, lts)) = &last {
                        let ord = lk.as_slice().cmp(e.key);
                        assert!(
                            ord == std::cmp::Ordering::Less
                                || (ord == std::cmp::Ordering::Equal && e.ts < *lts)
                        );
                    }
                    last = Some((e.key.to_vec(), e.ts));
                }
            }
        }));
    }
    // Join writers, then stop readers.
    for h in handles.drain(..4) {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_rmw_put_if_absent_exactly_one_winner() {
    // The Algorithm 3 guarantee: with N racing put-if-absent writers on
    // the same key, exactly one wins.
    for _round in 0..20 {
        let list = Arc::new(SkipList::new());
        let winners = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let list = Arc::clone(&list);
            let winners = Arc::clone(&winners);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                if list
                    .insert_if_latest(b"key", t + 1, Some(b"w"), None)
                    .is_ok()
                {
                    winners.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(list.len(), 1);
    }
}

#[test]
fn concurrent_rmw_counter_loses_no_increment() {
    // Emulates the DB-level RMW retry loop: read latest, try conditional
    // insert, retry on conflict. The final counter must equal the total
    // number of increments.
    let list = Arc::new(SkipList::new());
    let next_ts = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let threads = 4;
    let increments = 1_000u64;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let list = Arc::clone(&list);
        let next_ts = Arc::clone(&next_ts);
        handles.push(std::thread::spawn(move || {
            for _ in 0..increments {
                loop {
                    let latest = list.get_latest(b"ctr", u64::MAX);
                    let (expected, cur) = match latest {
                        Some((ts, Some(v))) => {
                            let mut buf = [0u8; 8];
                            buf.copy_from_slice(v);
                            (Some(ts), u64::from_le_bytes(buf))
                        }
                        Some((ts, None)) => (Some(ts), 0),
                        None => (None, 0),
                    };
                    let ts = next_ts.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                    let new = (cur + 1).to_le_bytes();
                    if list
                        .insert_if_latest(b"ctr", ts, Some(&new), expected)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (_, v) = list.get_latest(b"ctr", u64::MAX).unwrap();
    let mut buf = [0u8; 8];
    buf.copy_from_slice(v.unwrap());
    assert_eq!(u64::from_le_bytes(buf), threads as u64 * increments);
}

#[test]
fn memory_usage_grows() {
    let list = SkipList::new();
    let before = list.memory_usage();
    list.insert(b"some key", 1, Some(&[0u8; 1000]));
    assert!(list.memory_usage() >= before + 1000);
}
