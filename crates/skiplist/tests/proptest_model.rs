//! Model-based property tests: the skip list must agree with a
//! reference `BTreeMap<(key, Reverse(ts)), value>` on every lookup,
//! snapshot read, and full scan.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use clsm_skiplist::SkipList;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: Vec<u8>, value: Vec<u8> },
    Delete { key: Vec<u8> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key space to force version chains.
    let key = prop::sample::select(vec![
        b"a".to_vec(),
        b"ab".to_vec(),
        b"b".to_vec(),
        b"ba".to_vec(),
        b"c".to_vec(),
        b"".to_vec(),
        b"zzzz".to_vec(),
    ]);
    prop_oneof![
        (key.clone(), prop::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(key, value)| Op::Insert { key, value }),
        key.prop_map(|key| Op::Delete { key }),
    ]
}

type Model = BTreeMap<(Vec<u8>, Reverse<u64>), Option<Vec<u8>>>;

fn model_get_latest(model: &Model, key: &[u8], max_ts: u64) -> Option<(u64, Option<Vec<u8>>)> {
    model
        .range((key.to_vec(), Reverse(max_ts))..)
        .next()
        .filter(|((k, _), _)| k == key)
        .map(|((_, Reverse(ts)), v)| (*ts, v.clone()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn agrees_with_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let list = SkipList::new();
        let mut model: Model = BTreeMap::new();
        let mut ts = 0u64;

        for op in &ops {
            ts += 1;
            match op {
                Op::Insert { key, value } => {
                    list.insert(key, ts, Some(value));
                    model.insert((key.clone(), Reverse(ts)), Some(value.clone()));
                }
                Op::Delete { key } => {
                    list.insert(key, ts, None);
                    model.insert((key.clone(), Reverse(ts)), None);
                }
            }
        }

        // Latest reads agree for every key ever touched (and one never
        // touched).
        let mut keys: Vec<Vec<u8>> = model.keys().map(|(k, _)| k.clone()).collect();
        keys.push(b"never-written".to_vec());
        keys.dedup();
        for key in &keys {
            let got = list.get_latest(key, u64::MAX).map(|(t, v)| (t, v.map(<[u8]>::to_vec)));
            let want = model_get_latest(&model, key, u64::MAX);
            prop_assert_eq!(got, want);
        }

        // Snapshot reads agree at several historical timestamps.
        for snap in [0, 1, ts / 3, ts / 2, ts] {
            for key in &keys {
                let got = list.get_latest(key, snap).map(|(t, v)| (t, v.map(<[u8]>::to_vec)));
                let want = model_get_latest(&model, key, snap);
                prop_assert_eq!(got, want, "snap={}", snap);
            }
        }

        // Full scans agree entry-for-entry.
        let got: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = list
            .iter()
            .map(|e| (e.key.to_vec(), e.ts, e.value.map(<[u8]>::to_vec)))
            .collect();
        let want: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = model
            .iter()
            .map(|((k, Reverse(t)), v)| (k.clone(), *t, v.clone()))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn seek_matches_model_range(
        ops in prop::collection::vec(op_strategy(), 1..100),
        seek_key in prop::collection::vec(any::<u8>(), 0..4),
        seek_ts in 0u64..120,
    ) {
        let list = SkipList::new();
        let mut model: Model = BTreeMap::new();
        let mut ts = 0u64;
        for op in &ops {
            ts += 1;
            match op {
                Op::Insert { key, value } => {
                    list.insert(key, ts, Some(value));
                    model.insert((key.clone(), Reverse(ts)), Some(value.clone()));
                }
                Op::Delete { key } => {
                    list.insert(key, ts, None);
                    model.insert((key.clone(), Reverse(ts)), None);
                }
            }
        }

        let mut cursor = list.cursor();
        cursor.seek(&seek_key, seek_ts);
        let got = cursor.valid().then(|| (cursor.key().to_vec(), cursor.ts()));
        let want = model
            .range((seek_key.clone(), Reverse(seek_ts))..)
            .next()
            .map(|((k, Reverse(t)), _)| (k.clone(), *t));
        prop_assert_eq!(got, want);
    }
}
