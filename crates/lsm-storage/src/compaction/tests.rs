//! Tests for compaction picking and the version-GC drop rules.

use super::*;
use crate::iter::VecIterator;
use crate::store::StoreOptions;
use crate::version::VersionSet;
use crate::ValueKind;
use clsm_util::env::RealEnv;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "compaction-{}-{}-{}",
        std::process::id(),
        name,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

use std::path::PathBuf;

fn small_opts() -> StoreOptions {
    StoreOptions {
        table_file_size: 1024,
        base_level_bytes: 4096,
        level_multiplier: 4,
        l0_compaction_trigger: 2,
        ..Default::default()
    }
}

#[test]
fn level_budgets_grow_multiplicatively() {
    let opts = small_opts();
    assert_eq!(max_bytes_for_level(&opts, 1), 4096);
    assert_eq!(max_bytes_for_level(&opts, 2), 16384);
    assert_eq!(max_bytes_for_level(&opts, 3), 65536);
}

fn run_drop(
    entries: Vec<(&str, u64, ValueKind, &str)>,
    watermark: u64,
    drop_tombstones: bool,
) -> Vec<(String, u64)> {
    let dir = tmpdir("droprule");
    let opts = StoreOptions::default();
    let mut it = VecIterator::new(
        entries
            .into_iter()
            .map(|(k, ts, kind, v)| (k.as_bytes().to_vec(), ts, kind, v.as_bytes().to_vec()))
            .collect(),
    );
    it.seek_to_first();
    let mut n = 100u64;
    let mut alloc = || {
        n += 1;
        n
    };
    let files = write_merged_tables(
        &mut it,
        &dir,
        &opts,
        1,
        watermark,
        drop_tombstones,
        &mut alloc,
    )
    .unwrap();
    // Read everything back.
    let cache = Arc::new(TableCache::new(
        Arc::new(RealEnv),
        dir.clone(),
        10,
        None,
        16,
    ));
    let mut out = Vec::new();
    for f in &files {
        let table = cache.table(f.number).unwrap();
        let mut ti = table.iter();
        ti.seek_to_first();
        while ti.valid() {
            out.push((String::from_utf8(ti.user_key().to_vec()).unwrap(), ti.ts()));
            ti.next();
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    out
}

#[test]
fn shadowed_versions_below_watermark_are_dropped() {
    // Versions 9 and 5 are both ≤ watermark 10: only the newest (9)
    // survives; 5 and 2 are shadowed.
    let out = run_drop(
        vec![
            ("k", 9, ValueKind::Put, "v9"),
            ("k", 5, ValueKind::Put, "v5"),
            ("k", 2, ValueKind::Put, "v2"),
        ],
        10,
        false,
    );
    assert_eq!(out, vec![("k".to_string(), 9)]);
}

#[test]
fn versions_above_watermark_are_kept() {
    // Watermark 4: versions 9 and 5 exceed it (kept); 2 is the newest
    // ≤ 4 (kept, some snapshot may need it); nothing older exists.
    let out = run_drop(
        vec![
            ("k", 9, ValueKind::Put, "v9"),
            ("k", 5, ValueKind::Put, "v5"),
            ("k", 2, ValueKind::Put, "v2"),
            ("k", 1, ValueKind::Put, "v1"),
        ],
        4,
        false,
    );
    assert_eq!(
        out,
        vec![
            ("k".to_string(), 9),
            ("k".to_string(), 5),
            ("k".to_string(), 2)
        ]
    );
}

#[test]
fn tombstones_dropped_only_at_bottom() {
    let entries = vec![
        ("a", 7, ValueKind::Delete, ""),
        ("a", 3, ValueKind::Put, "va"),
        ("b", 5, ValueKind::Put, "vb"),
    ];
    // Not bottom: tombstone kept, shadowed put dropped.
    let out = run_drop(entries.clone(), 10, false);
    assert_eq!(out, vec![("a".to_string(), 7), ("b".to_string(), 5)]);
    // Bottom: tombstone elided entirely.
    let out = run_drop(entries, 10, true);
    assert_eq!(out, vec![("b".to_string(), 5)]);
}

#[test]
fn fresh_tombstone_survives_bottom_drop() {
    // Tombstone above the watermark: a live snapshot may need it.
    let out = run_drop(
        vec![
            ("a", 7, ValueKind::Delete, ""),
            ("a", 3, ValueKind::Put, "v"),
        ],
        5,
        true,
    );
    assert_eq!(out, vec![("a".to_string(), 7), ("a".to_string(), 3)]);
}

#[test]
fn exact_duplicates_are_deduplicated() {
    // A WAL-replay overlap shows up as the same (key, ts) entry in two
    // components; merge them and verify only one copy survives.
    let dir = tmpdir("dedup");
    let opts = StoreOptions::default();
    let a = VecIterator::new(vec![(b"k".to_vec(), 5, ValueKind::Put, b"v".to_vec())]);
    let b = VecIterator::new(vec![(b"k".to_vec(), 5, ValueKind::Put, b"v".to_vec())]);
    let mut merged = crate::iter::MergingIterator::new(vec![Box::new(a), Box::new(b)]);
    merged.seek_to_first();
    let mut n = 0u64;
    let mut alloc = || {
        n += 1;
        n
    };
    let files = write_merged_tables(&mut merged, &dir, &opts, 1, 0, false, &mut alloc).unwrap();
    let cache = Arc::new(TableCache::new(
        Arc::new(RealEnv),
        dir.clone(),
        10,
        None,
        16,
    ));
    let mut count = 0;
    for f in &files {
        let table = cache.table(f.number).unwrap();
        let mut ti = table.iter();
        ti.seek_to_first();
        while ti.valid() {
            count += 1;
            ti.next();
        }
    }
    assert_eq!(count, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn outputs_roll_without_splitting_keys() {
    // Values big enough to exceed the 1 KiB target repeatedly, with
    // multiple versions per key: every key must land in exactly one
    // output file.
    let dir = tmpdir("roll");
    let opts = small_opts();
    let mut entries = Vec::new();
    let mut ts = 1000u64;
    for i in 0..30u32 {
        for _v in 0..3 {
            entries.push((
                format!("key{i:04}").into_bytes(),
                ts,
                ValueKind::Put,
                vec![b'x'; 200],
            ));
            ts -= 1;
        }
    }
    // Internal order: ts descending per key.
    let mut it = VecIterator::new(entries);
    it.seek_to_first();
    let mut n = 0u64;
    let mut alloc = || {
        n += 1;
        n
    };
    let files = write_merged_tables(&mut it, &dir, &opts, 1, 0, false, &mut alloc).unwrap();
    assert!(
        files.len() > 1,
        "expected multiple outputs, got {}",
        files.len()
    );
    // Disjoint user-key ranges.
    for w in files.windows(2) {
        let a_last = &w[0].largest[..w[0].largest.len() - 8];
        let b_first = &w[1].smallest[..w[1].smallest.len() - 8];
        assert!(a_last < b_first, "outputs share a user key");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pick_respects_claims_and_trigger() {
    let dir = tmpdir("pick");
    let opts = small_opts();
    // Build two overlapping L0 tables (trigger = 2).
    let mk = |num: u64, k: &str, ts: u64| {
        let path = crate::filenames::table_path(&dir, num);
        let mut b = crate::sstable::TableBuilder::new(
            Box::new(std::fs::File::create(&path).unwrap()),
            4096,
            10,
        );
        b.add(
            crate::format::InternalKey::new(k.as_bytes(), ts, ValueKind::Put).encoded(),
            b"v",
        )
        .unwrap();
        let s = b.finish().unwrap();
        crate::version::NewFile {
            level: 0,
            number: num,
            file_size: s.file_size,
            smallest: s.smallest,
            largest: s.largest,
        }
    };
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    let f1 = mk(10, "a", 1);
    let f2 = mk(11, "a", 2);
    set.log_and_apply(crate::version::VersionEdit {
        new_files: vec![f1, f2],
        ..Default::default()
    })
    .unwrap();
    let v = set.current();
    let task = pick(&v, &opts).expect("two L0 files at trigger 2");
    assert_eq!(task.level, 0);
    assert_eq!(task.base.len(), 2);
    // While claimed, picking again yields nothing.
    assert!(pick(&v, &opts).is_none());
    drop(task);
    assert!(pick(&v, &opts).is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------- policies

/// Synthetic file metadata for pick-only tests (no table bytes needed:
/// policies read sizes and key ranges, never file contents).
fn synth_file(
    level: u32,
    number: u64,
    file_size: u64,
    lo: &str,
    hi: &str,
) -> crate::version::NewFile {
    crate::version::NewFile {
        level,
        number,
        file_size,
        smallest: crate::format::InternalKey::new(lo.as_bytes(), 1_000, ValueKind::Put)
            .encoded()
            .to_vec(),
        largest: crate::format::InternalKey::new(hi.as_bytes(), 1, ValueKind::Put)
            .encoded()
            .to_vec(),
    }
}

fn synth_version(dir: &Path, files: Vec<crate::version::NewFile>) -> Arc<Version> {
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), dir).unwrap();
    set.log_and_apply(crate::version::VersionEdit {
        new_files: files,
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn tiered_triggers_on_file_count_and_merges_whole_level() {
    use super::policy::{CompactionPolicy, Tiered};
    let dir = tmpdir("tiered");
    let opts = small_opts(); // trigger = 2
                             // L1 holds three small files — far under its byte budget (so the
                             // leveled policy would not touch it) but past the count trigger.
    let v = synth_version(
        &dir,
        vec![
            synth_file(1, 10, 100, "a", "c"),
            synth_file(1, 11, 100, "d", "f"),
            synth_file(1, 12, 100, "g", "i"),
            synth_file(2, 20, 100, "b", "e"),
        ],
    );
    assert!(
        super::level_score(&v, &opts, 1) < 1.0,
        "leveled would skip L1"
    );
    let policy = Tiered;
    assert!(policy.level_score(&v, &opts, 1) >= 1.0);
    let task = policy.pick(&v, &opts).expect("tiered compacts L1");
    assert_eq!(task.level, 1);
    assert_eq!(task.base.len(), 3, "whole level merges down");
    assert_eq!(task.parent.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hybrid_partial_rotates_a_bounded_cursor_through_the_level() {
    use super::policy::{CompactionPolicy, HybridPartial};
    let dir = tmpdir("hybrid");
    let mut opts = small_opts();
    opts.table_file_size = 1024; // partial budget = 2 tables = 2048 bytes
                                 // L1 is 4x over its 4096-byte budget, spread over six files.
    let v = synth_version(
        &dir,
        (0..6u64)
            .map(|i| {
                synth_file(
                    1,
                    10 + i,
                    3000,
                    &format!("k{}", 2 * i),
                    &format!("k{}", 2 * i + 1),
                )
            })
            .collect(),
    );
    let policy = HybridPartial::new();
    assert!(policy.level_score(&v, &opts, 1) >= 1.0);
    // Each pick takes a bounded slice (one 3000-byte file exceeds the
    // 2048 budget alone, so exactly one file per task) and the cursor
    // advances: consecutive picks claim *different* files.
    let t1 = policy.pick(&v, &opts).expect("first partial pick");
    assert_eq!(t1.base.len(), 1);
    let first = t1.base[0].number;
    let t2 = policy.pick(&v, &opts).expect("second partial pick");
    assert_eq!(t2.base.len(), 1);
    assert_ne!(t2.base[0].number, first, "cursor did not advance");
    drop(t1);
    drop(t2);
    // The cursor wraps: six more picks cycle through the whole level.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..6 {
        let t = policy.pick(&v, &opts).expect("pick");
        seen.insert(t.base[0].number);
    }
    assert_eq!(seen.len(), 6, "cursor failed to cover the level");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn claim_release_notifies_signal_on_drop() {
    use crate::version::ClaimSignal;
    let dir = tmpdir("claimsignal");
    let opts = small_opts();
    let v = synth_version(
        &dir,
        vec![
            synth_file(0, 10, 100, "a", "c"),
            synth_file(0, 11, 100, "a", "c"),
        ],
    );
    let signal = Arc::new(ClaimSignal::default());
    let mut task = pick(&v, &opts).expect("claims L0");
    task.attach_release_signal(Arc::clone(&signal));
    // A waiter parked on the signal must wake when the task drops —
    // with a plain untimed wait.
    let waiter = {
        let signal = Arc::clone(&signal);
        std::thread::spawn(move || {
            let mut guard = signal.lock();
            signal.wait(&mut guard);
        })
    };
    // Give the waiter time to park (the notify-under-lock protocol
    // means even a pre-park drop cannot be missed once `lock` is
    // acquired after the waiter's, but here we want the wait path).
    std::thread::sleep(std::time::Duration::from_millis(50));
    drop(task);
    waiter.join().expect("waiter woke without a timeout");
    std::fs::remove_dir_all(&dir).unwrap();
}
