//! Tests for compaction picking and the version-GC drop rules.

use super::*;
use crate::iter::VecIterator;
use crate::store::StoreOptions;
use crate::version::VersionSet;
use crate::ValueKind;
use clsm_util::env::RealEnv;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "compaction-{}-{}-{}",
        std::process::id(),
        name,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

use std::path::PathBuf;

fn small_opts() -> StoreOptions {
    StoreOptions {
        table_file_size: 1024,
        base_level_bytes: 4096,
        level_multiplier: 4,
        l0_compaction_trigger: 2,
        ..Default::default()
    }
}

#[test]
fn level_budgets_grow_multiplicatively() {
    let opts = small_opts();
    assert_eq!(max_bytes_for_level(&opts, 1), 4096);
    assert_eq!(max_bytes_for_level(&opts, 2), 16384);
    assert_eq!(max_bytes_for_level(&opts, 3), 65536);
}

fn run_drop(
    entries: Vec<(&str, u64, ValueKind, &str)>,
    watermark: u64,
    drop_tombstones: bool,
) -> Vec<(String, u64)> {
    let dir = tmpdir("droprule");
    let opts = StoreOptions::default();
    let mut it = VecIterator::new(
        entries
            .into_iter()
            .map(|(k, ts, kind, v)| (k.as_bytes().to_vec(), ts, kind, v.as_bytes().to_vec()))
            .collect(),
    );
    it.seek_to_first();
    let mut n = 100u64;
    let mut alloc = || {
        n += 1;
        n
    };
    let files = write_merged_tables(
        &mut it,
        &dir,
        &opts,
        1,
        watermark,
        drop_tombstones,
        &mut alloc,
    )
    .unwrap();
    // Read everything back.
    let cache = Arc::new(TableCache::new(
        Arc::new(RealEnv),
        dir.clone(),
        10,
        None,
        16,
    ));
    let mut out = Vec::new();
    for f in &files {
        let table = cache.table(f.number).unwrap();
        let mut ti = table.iter();
        ti.seek_to_first();
        while ti.valid() {
            out.push((String::from_utf8(ti.user_key().to_vec()).unwrap(), ti.ts()));
            ti.next();
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    out
}

#[test]
fn shadowed_versions_below_watermark_are_dropped() {
    // Versions 9 and 5 are both ≤ watermark 10: only the newest (9)
    // survives; 5 and 2 are shadowed.
    let out = run_drop(
        vec![
            ("k", 9, ValueKind::Put, "v9"),
            ("k", 5, ValueKind::Put, "v5"),
            ("k", 2, ValueKind::Put, "v2"),
        ],
        10,
        false,
    );
    assert_eq!(out, vec![("k".to_string(), 9)]);
}

#[test]
fn versions_above_watermark_are_kept() {
    // Watermark 4: versions 9 and 5 exceed it (kept); 2 is the newest
    // ≤ 4 (kept, some snapshot may need it); nothing older exists.
    let out = run_drop(
        vec![
            ("k", 9, ValueKind::Put, "v9"),
            ("k", 5, ValueKind::Put, "v5"),
            ("k", 2, ValueKind::Put, "v2"),
            ("k", 1, ValueKind::Put, "v1"),
        ],
        4,
        false,
    );
    assert_eq!(
        out,
        vec![
            ("k".to_string(), 9),
            ("k".to_string(), 5),
            ("k".to_string(), 2)
        ]
    );
}

#[test]
fn tombstones_dropped_only_at_bottom() {
    let entries = vec![
        ("a", 7, ValueKind::Delete, ""),
        ("a", 3, ValueKind::Put, "va"),
        ("b", 5, ValueKind::Put, "vb"),
    ];
    // Not bottom: tombstone kept, shadowed put dropped.
    let out = run_drop(entries.clone(), 10, false);
    assert_eq!(out, vec![("a".to_string(), 7), ("b".to_string(), 5)]);
    // Bottom: tombstone elided entirely.
    let out = run_drop(entries, 10, true);
    assert_eq!(out, vec![("b".to_string(), 5)]);
}

#[test]
fn fresh_tombstone_survives_bottom_drop() {
    // Tombstone above the watermark: a live snapshot may need it.
    let out = run_drop(
        vec![
            ("a", 7, ValueKind::Delete, ""),
            ("a", 3, ValueKind::Put, "v"),
        ],
        5,
        true,
    );
    assert_eq!(out, vec![("a".to_string(), 7), ("a".to_string(), 3)]);
}

#[test]
fn exact_duplicates_are_deduplicated() {
    // A WAL-replay overlap shows up as the same (key, ts) entry in two
    // components; merge them and verify only one copy survives.
    let dir = tmpdir("dedup");
    let opts = StoreOptions::default();
    let a = VecIterator::new(vec![(b"k".to_vec(), 5, ValueKind::Put, b"v".to_vec())]);
    let b = VecIterator::new(vec![(b"k".to_vec(), 5, ValueKind::Put, b"v".to_vec())]);
    let mut merged = crate::iter::MergingIterator::new(vec![Box::new(a), Box::new(b)]);
    merged.seek_to_first();
    let mut n = 0u64;
    let mut alloc = || {
        n += 1;
        n
    };
    let files = write_merged_tables(&mut merged, &dir, &opts, 1, 0, false, &mut alloc).unwrap();
    let cache = Arc::new(TableCache::new(
        Arc::new(RealEnv),
        dir.clone(),
        10,
        None,
        16,
    ));
    let mut count = 0;
    for f in &files {
        let table = cache.table(f.number).unwrap();
        let mut ti = table.iter();
        ti.seek_to_first();
        while ti.valid() {
            count += 1;
            ti.next();
        }
    }
    assert_eq!(count, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn outputs_roll_without_splitting_keys() {
    // Values big enough to exceed the 1 KiB target repeatedly, with
    // multiple versions per key: every key must land in exactly one
    // output file.
    let dir = tmpdir("roll");
    let opts = small_opts();
    let mut entries = Vec::new();
    let mut ts = 1000u64;
    for i in 0..30u32 {
        for _v in 0..3 {
            entries.push((
                format!("key{i:04}").into_bytes(),
                ts,
                ValueKind::Put,
                vec![b'x'; 200],
            ));
            ts -= 1;
        }
    }
    // Internal order: ts descending per key.
    let mut it = VecIterator::new(entries);
    it.seek_to_first();
    let mut n = 0u64;
    let mut alloc = || {
        n += 1;
        n
    };
    let files = write_merged_tables(&mut it, &dir, &opts, 1, 0, false, &mut alloc).unwrap();
    assert!(
        files.len() > 1,
        "expected multiple outputs, got {}",
        files.len()
    );
    // Disjoint user-key ranges.
    for w in files.windows(2) {
        let a_last = &w[0].largest[..w[0].largest.len() - 8];
        let b_first = &w[1].smallest[..w[1].smallest.len() - 8];
        assert!(a_last < b_first, "outputs share a user key");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pick_respects_claims_and_trigger() {
    let dir = tmpdir("pick");
    let opts = small_opts();
    // Build two overlapping L0 tables (trigger = 2).
    let mk = |num: u64, k: &str, ts: u64| {
        let path = crate::filenames::table_path(&dir, num);
        let mut b = crate::sstable::TableBuilder::new(
            Box::new(std::fs::File::create(&path).unwrap()),
            4096,
            10,
        );
        b.add(
            crate::format::InternalKey::new(k.as_bytes(), ts, ValueKind::Put).encoded(),
            b"v",
        )
        .unwrap();
        let s = b.finish().unwrap();
        crate::version::NewFile {
            level: 0,
            number: num,
            file_size: s.file_size,
            smallest: s.smallest,
            largest: s.largest,
        }
    };
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    let f1 = mk(10, "a", 1);
    let f2 = mk(11, "a", 2);
    set.log_and_apply(crate::version::VersionEdit {
        new_files: vec![f1, f2],
        ..Default::default()
    })
    .unwrap();
    let v = set.current();
    let task = pick(&v, &opts).expect("two L0 files at trigger 2");
    assert_eq!(task.level, 0);
    assert_eq!(task.base.len(), 2);
    // While claimed, picking again yields nothing.
    assert!(pick(&v, &opts).is_none());
    drop(task);
    assert!(pick(&v, &opts).is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}
