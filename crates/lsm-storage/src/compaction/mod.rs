//! Compaction: merging components into the next level.
//!
//! This is the paper's "merge procedure (sometimes called compaction)"
//! (§2.3) for the on-disk levels: when a level outgrows its budget, its
//! files are merged with the overlapping files one level down.
//! Obsolete versions are garbage-collected against the snapshot
//! watermark exactly as §3.2.1 prescribes: "for every key and every
//! snapshot, the latest version of the key that does not exceed the
//! snapshot's timestamp is kept" (we use the conservative
//! oldest-snapshot rule, as LevelDB does).

pub mod policy;

pub use policy::{CompactionPolicy, CompactionPolicyKind, HybridPartial, Leveled, Tiered};

use std::path::Path;
use std::sync::Arc;

use clsm_util::env::WritableFile;
use clsm_util::error::Result;
use clsm_util::ratelimit::{IoPriority, RateLimitedFile};

use crate::cache::TableCache;
use crate::filenames;
use crate::format::InternalKey;
use crate::iter::{InternalIterator, MergingIterator};
use crate::sstable::TableBuilder;
use crate::store::StoreOptions;
use crate::version::{
    ClaimSignal, CompactionClaim, FileMeta, LevelIter, NewFile, Version, VersionEdit,
};

/// A picked compaction: inputs at `level` and overlapping files at
/// `level + 1`, exclusively claimed.
pub struct CompactionTask {
    /// Source level.
    pub level: usize,
    /// Input files at `level`.
    pub base: Vec<Arc<FileMeta>>,
    /// Overlapping input files at `level + 1`.
    pub parent: Vec<Arc<FileMeta>>,
    /// RAII claim marking every input `being_compacted`.
    _claim: CompactionClaim,
}

impl CompactionTask {
    /// Makes this task's claim notify `signal` when released —
    /// success or error unwind alike, via the claim's `Drop`.
    pub fn attach_release_signal(&mut self, signal: Arc<ClaimSignal>) {
        self._claim.attach_release_signal(signal);
    }
}

impl std::fmt::Debug for CompactionTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactionTask")
            .field("level", &self.level)
            .field("base", &self.base.len())
            .field("parent", &self.parent.len())
            .finish()
    }
}

/// Byte budget of `level` (L1 gets `base_level_bytes`, each deeper
/// level `level_multiplier`× more).
pub fn max_bytes_for_level(opts: &StoreOptions, level: usize) -> u64 {
    debug_assert!(level >= 1);
    let mut budget = opts.base_level_bytes;
    for _ in 1..level {
        budget = budget.saturating_mul(opts.level_multiplier);
    }
    budget
}

/// Compaction pressure of `level` in `version` (≥ 1.0 ⇒ should run).
pub fn level_score(version: &Version, opts: &StoreOptions, level: usize) -> f64 {
    if level == 0 {
        version.num_files(0) as f64 / opts.l0_compaction_trigger as f64
    } else if level + 1 >= opts.num_levels {
        0.0 // the last level never compacts further down
    } else {
        version.level_bytes(level) as f64 / max_bytes_for_level(opts, level) as f64
    }
}

/// Picks the most pressured level and claims a compaction, or `None`
/// when nothing needs compaction or all candidates are already claimed.
pub fn pick(version: &Version, opts: &StoreOptions) -> Option<CompactionTask> {
    let mut best: Option<(usize, f64)> = None;
    for level in 0..opts.num_levels - 1 {
        let score = level_score(version, opts, level);
        if score >= 1.0 && best.is_none_or(|(_, s)| score > s) {
            best = Some((level, score));
        }
    }
    let (level, _) = best?;

    // Choose base files.
    let base: Vec<Arc<FileMeta>> = if level == 0 {
        // All L0 files: they may overlap each other, so a partial pick
        // could break the "newer level ⇒ newer versions" invariant.
        version.levels[0].clone()
    } else {
        // One file at a time, largest first, keeps work bounded.
        let mut candidates = version.levels[level].clone();
        candidates.sort_by_key(|f| std::cmp::Reverse(f.file_size));
        vec![Arc::clone(candidates.first()?)]
    };
    if base.is_empty() {
        return None;
    }

    // Key range of the base inputs.
    let mut smallest = base[0].smallest_user_key().to_vec();
    let mut largest = base[0].largest_user_key().to_vec();
    for f in &base[1..] {
        if f.smallest_user_key() < smallest.as_slice() {
            smallest = f.smallest_user_key().to_vec();
        }
        if f.largest_user_key() > largest.as_slice() {
            largest = f.largest_user_key().to_vec();
        }
    }
    let parent = version.overlapping_files(level + 1, &smallest, &largest);

    let mut all = base.clone();
    all.extend(parent.iter().cloned());
    let claim = CompactionClaim::try_claim(all)?;
    Some(CompactionTask {
        level,
        base,
        parent,
        _claim: claim,
    })
}

/// Picks a *manual* compaction of every file in `level` overlapping
/// `[smallest, largest]` (user keys), claiming it exclusively. Returns
/// `None` when the level has no overlapping files (nothing to do) or
/// when a background compaction currently claims one of them (retry).
pub fn pick_level_range(
    version: &Version,
    opts: &StoreOptions,
    level: usize,
    smallest: &[u8],
    largest: &[u8],
) -> Option<CompactionTask> {
    if level + 1 >= opts.num_levels {
        return None;
    }
    let base: Vec<Arc<FileMeta>> = if level == 0 {
        // L0 files overlap each other: a partial pick would break the
        // newer-files-hold-newer-versions invariant, so take all of L0
        // whenever any L0 file intersects the range.
        if version.overlapping_files(0, smallest, largest).is_empty() {
            return None;
        }
        version.levels[0].clone()
    } else {
        version.overlapping_files(level, smallest, largest)
    };
    if base.is_empty() {
        return None;
    }
    let mut lo = base[0].smallest_user_key().to_vec();
    let mut hi = base[0].largest_user_key().to_vec();
    for f in &base[1..] {
        if f.smallest_user_key() < lo.as_slice() {
            lo = f.smallest_user_key().to_vec();
        }
        if f.largest_user_key() > hi.as_slice() {
            hi = f.largest_user_key().to_vec();
        }
    }
    let parent = version.overlapping_files(level + 1, &lo, &hi);
    let mut all = base.clone();
    all.extend(parent.iter().cloned());
    let claim = CompactionClaim::try_claim(all)?;
    Some(CompactionTask {
        level,
        base,
        parent,
        _claim: claim,
    })
}

/// Runs a compaction: merges the inputs, GC's obsolete versions, and
/// returns the version edit to apply (files written, inputs deleted).
///
/// `watermark` is the oldest live snapshot (or the current time when no
/// snapshot exists): versions shadowed by a newer version at-or-below
/// the watermark are invisible to every present and future reader and
/// are dropped. Tombstones are additionally dropped when the output is
/// the bottom level.
pub fn run(
    task: &CompactionTask,
    dir: &Path,
    cache: &Arc<TableCache>,
    opts: &StoreOptions,
    watermark: u64,
    mut alloc_file_number: impl FnMut() -> u64,
) -> Result<VersionEdit> {
    let output_level = task.level + 1;
    let bottom = output_level == opts.num_levels - 1;

    // Trivial move: a single base file with no parent overlap can be
    // reassigned to the next level without rewriting any bytes.
    if task.base.len() == 1 && task.parent.is_empty() && !bottom {
        let f = &task.base[0];
        return Ok(VersionEdit {
            deleted_files: vec![(task.level as u32, f.number)],
            new_files: vec![NewFile {
                level: output_level as u32,
                number: f.number,
                file_size: f.file_size,
                smallest: f.smallest.clone(),
                largest: f.largest.clone(),
            }],
            ..Default::default()
        });
    }

    // Build the merged input stream (newest component first: L0 files
    // are already newest-first in the version).
    let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
    if task.level == 0 {
        for f in &task.base {
            children.push(Box::new(cache.table(f.number)?.iter()));
        }
    } else {
        children.push(Box::new(LevelIter::new(
            Arc::clone(cache),
            task.base.clone(),
        )));
    }
    if !task.parent.is_empty() {
        children.push(Box::new(LevelIter::new(
            Arc::clone(cache),
            task.parent.clone(),
        )));
    }
    let mut merged = MergingIterator::new(children);
    merged.seek_to_first();

    let new_files = write_merged_tables(
        &mut merged,
        dir,
        opts,
        output_level,
        watermark,
        bottom,
        &mut alloc_file_number,
    )?;

    let mut edit = VersionEdit {
        new_files,
        ..Default::default()
    };
    for f in &task.base {
        edit.deleted_files.push((task.level as u32, f.number));
    }
    for f in &task.parent {
        edit.deleted_files.push((output_level as u32, f.number));
    }
    Ok(edit)
}

/// Streams a sorted internal iterator into one or more tables at
/// `output_level`, applying the version-GC drop rules.
///
/// Also used by the memtable flush path (`output_level = 0`,
/// `drop_tombstones = false`).
pub fn write_merged_tables(
    it: &mut dyn InternalIterator,
    dir: &Path,
    opts: &StoreOptions,
    output_level: usize,
    watermark: u64,
    drop_tombstones: bool,
    alloc_file_number: &mut dyn FnMut() -> u64,
) -> Result<Vec<NewFile>> {
    let mut outputs: Vec<NewFile> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;

    let mut prev_key: Vec<u8> = Vec::new();
    let mut have_prev = false;
    let mut prev_ts = 0u64;
    let mut prev_shadowed = false;

    while it.valid() {
        let key = it.user_key();
        let ts = it.ts();
        let kind = it.kind();
        let same_key = have_prev && prev_key == key;

        let drop = if same_key && prev_shadowed {
            // A newer version at-or-below the watermark shadows this one
            // for every live and future snapshot.
            true
        } else if same_key && ts == prev_ts {
            // Exact duplicate (WAL replay overlap): keep the first copy.
            true
        } else {
            // A tombstone that is visible (not shadowed) can still be
            // elided at the bottom level once no snapshot needs it:
            // nothing deeper could resurrect the key.
            drop_tombstones && kind == crate::format::ValueKind::Delete && ts <= watermark
        };

        if same_key {
            prev_shadowed = prev_shadowed || ts <= watermark;
            prev_ts = ts;
        } else {
            prev_key.clear();
            prev_key.extend_from_slice(key);
            have_prev = true;
            prev_ts = ts;
            prev_shadowed = ts <= watermark;
        }

        if !drop {
            // Roll the output file at size, but never split one user
            // key across files: level ≥ 1 lookups assume each user key
            // lives in exactly one file per level.
            let should_roll = builder
                .as_ref()
                .is_some_and(|(_, b)| b.current_size() >= opts.table_file_size)
                && !same_key;
            if should_roll {
                let (number, b) = builder.take().expect("checked above");
                finish_output(number, b, output_level, &mut outputs)?;
            }
            if builder.is_none() {
                let number = alloc_file_number();
                let path = filenames::table_path(dir, number);
                let mut file: Box<dyn WritableFile> = opts.env.open_write(&path)?;
                // Charge background bytes at the Env write seam: a
                // flush (output level 0) unblocks foreground writers,
                // so it outranks compaction rewrites in the bucket.
                if let Some(limiter) = &opts.io_rate_limiter {
                    if !limiter.is_unlimited() {
                        let prio = if output_level == 0 {
                            IoPriority::High
                        } else {
                            IoPriority::Low
                        };
                        file = Box::new(RateLimitedFile::new(file, Arc::clone(limiter), prio));
                    }
                }
                builder = Some((
                    number,
                    TableBuilder::new(file, opts.block_size, opts.bloom_bits_per_key),
                ));
            }
            let ikey = InternalKey::new(key, ts, kind);
            builder
                .as_mut()
                .expect("just created")
                .1
                .add(ikey.encoded(), it.value())?;
        }
        it.next();
    }
    it.status()?;

    if let Some((number, b)) = builder.take() {
        finish_output(number, b, output_level, &mut outputs)?;
    }
    Ok(outputs)
}

fn finish_output(
    number: u64,
    builder: TableBuilder,
    level: usize,
    outputs: &mut Vec<NewFile>,
) -> Result<()> {
    if builder.num_entries() == 0 {
        return Ok(());
    }
    let summary = builder.finish()?;
    outputs.push(NewFile {
        level: level as u32,
        number,
        file_size: summary.file_size,
        smallest: summary.smallest,
        largest: summary.largest,
    });
    Ok(())
}

#[cfg(test)]
mod tests;
