//! Pluggable compaction scheduling policies.
//!
//! *Who decides when background work runs* used to be hardwired: the
//! store called the leveled `pick()` and nothing else. This module
//! extracts that decision behind [`CompactionPolicy`], with three
//! shipped implementations selected by [`CompactionPolicyKind`] in
//! `StoreOptions`:
//!
//! - [`Leveled`] — the previous (and default) behavior: score levels
//!   against byte budgets, compact the single largest file of the most
//!   pressured level (all of L0 at once, since L0 files overlap).
//! - [`Tiered`] — size-tiered scheduling: a level compacts when it
//!   accumulates `l0_compaction_trigger` files, and then the *whole*
//!   level merges down in one task. Each file is rewritten fewer times
//!   (lower write amplification) at the cost of levels that run wider
//!   before merging (higher read amplification). Levels ≥ 1 must stay
//!   non-overlapping sorted runs — the merge keeps that invariant, so
//!   this is tiering's scheduling shape (count triggers, whole-run
//!   merges), not a literal overlapping-run layout.
//! - [`HybridPartial`] — leveled scores, but each L1+ task takes a
//!   *bounded key subrange* of the level starting at a rotating
//!   per-level cursor (LevelDB's `compact_pointer` idiom). No single
//!   compaction claims more than a few files, so claims are held for
//!   bounded time and manual/foreground compactions are never blocked
//!   behind a level-wide rewrite.
//!
//! Policies only *pick* (and claim) inputs; running the merge is the
//! same [`super::run`] for all of them, so the GC drop rules and the
//! trivial-move optimization apply uniformly.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::store::StoreOptions;
use crate::version::{CompactionClaim, FileMeta, Version};

use super::CompactionTask;

/// Which [`CompactionPolicy`] a store schedules background merges
/// with. Carried by `StoreOptions` (the policy object itself may hold
/// state, e.g. [`HybridPartial`]'s cursors, so options carry the kind
/// and the store builds the instance at open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicyKind {
    /// Byte-budget scores, largest-file picks (the default).
    #[default]
    Leveled,
    /// File-count triggers, whole-level merges.
    Tiered,
    /// Byte-budget scores, bounded cursor-rotating partial picks.
    HybridPartial,
}

impl CompactionPolicyKind {
    /// Stable lower-case name (doctor output, bench labels, SUT ids).
    pub fn name(&self) -> &'static str {
        match self {
            CompactionPolicyKind::Leveled => "leveled",
            CompactionPolicyKind::Tiered => "tiered",
            CompactionPolicyKind::HybridPartial => "hybrid-partial",
        }
    }

    /// Parses [`Self::name`] back; `None` for unknown names.
    pub fn parse(name: &str) -> Option<CompactionPolicyKind> {
        match name {
            "leveled" => Some(CompactionPolicyKind::Leveled),
            "tiered" => Some(CompactionPolicyKind::Tiered),
            "hybrid-partial" | "hybrid" => Some(CompactionPolicyKind::HybridPartial),
            _ => None,
        }
    }

    /// Builds the policy instance this kind names.
    pub fn build(self) -> Box<dyn CompactionPolicy> {
        match self {
            CompactionPolicyKind::Leveled => Box::new(Leveled),
            CompactionPolicyKind::Tiered => Box::new(Tiered),
            CompactionPolicyKind::HybridPartial => Box::new(HybridPartial::new()),
        }
    }
}

impl std::fmt::Display for CompactionPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Decides which compaction (if any) to run next.
///
/// Implementations must be safe to call from several compaction
/// threads at once: picks are serialized per-file by the claim flags,
/// not by the policy, so any policy state needs interior mutability.
pub trait CompactionPolicy: Send + Sync + std::fmt::Debug {
    /// The kind this policy implements.
    fn kind(&self) -> CompactionPolicyKind;

    /// Compaction pressure of `level` (≥ 1.0 ⇒ should run).
    fn level_score(&self, version: &Version, opts: &StoreOptions, level: usize) -> f64;

    /// Picks the next compaction and claims its inputs, or `None` when
    /// nothing needs compaction or all candidates are already claimed.
    fn pick(&self, version: &Version, opts: &StoreOptions) -> Option<CompactionTask>;

    /// `true` if any level's score is at or past its trigger.
    fn needs_compaction(&self, version: &Version, opts: &StoreOptions) -> bool {
        (0..opts.num_levels.saturating_sub(1)).any(|l| self.level_score(version, opts, l) >= 1.0)
    }
}

/// The level with the highest score ≥ 1.0 under `score`.
fn most_pressured(opts: &StoreOptions, score: impl Fn(usize) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for level in 0..opts.num_levels - 1 {
        let s = score(level);
        if s >= 1.0 && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((level, s));
        }
    }
    best.map(|(level, _)| level)
}

/// User-key range spanned by `files` (assumed non-empty).
fn key_range(files: &[Arc<FileMeta>]) -> (Vec<u8>, Vec<u8>) {
    let mut smallest = files[0].smallest_user_key().to_vec();
    let mut largest = files[0].largest_user_key().to_vec();
    for f in &files[1..] {
        if f.smallest_user_key() < smallest.as_slice() {
            smallest = f.smallest_user_key().to_vec();
        }
        if f.largest_user_key() > largest.as_slice() {
            largest = f.largest_user_key().to_vec();
        }
    }
    (smallest, largest)
}

/// Claims `base` + its parent overlap at `level + 1` into a task.
fn claim_task(version: &Version, level: usize, base: Vec<Arc<FileMeta>>) -> Option<CompactionTask> {
    let (smallest, largest) = key_range(&base);
    let parent = version.overlapping_files(level + 1, &smallest, &largest);
    let mut all = base.clone();
    all.extend(parent.iter().cloned());
    let claim = CompactionClaim::try_claim(all)?;
    Some(CompactionTask {
        level,
        base,
        parent,
        _claim: claim,
    })
}

/// The default policy: the store's original byte-budget leveled
/// scheduling (see [`super::level_score`] / [`super::pick`], which it
/// delegates to).
#[derive(Debug, Clone, Copy, Default)]
pub struct Leveled;

impl CompactionPolicy for Leveled {
    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::Leveled
    }

    fn level_score(&self, version: &Version, opts: &StoreOptions, level: usize) -> f64 {
        super::level_score(version, opts, level)
    }

    fn pick(&self, version: &Version, opts: &StoreOptions) -> Option<CompactionTask> {
        super::pick(version, opts)
    }
}

/// Size-tiered scheduling: every level triggers on *file count*
/// (`l0_compaction_trigger` files), and a triggered level merges down
/// whole. Fewer rewrites per file, wider levels before each merge.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tiered;

impl CompactionPolicy for Tiered {
    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::Tiered
    }

    fn level_score(&self, version: &Version, opts: &StoreOptions, level: usize) -> f64 {
        if level + 1 >= opts.num_levels {
            0.0 // the last level never compacts further down
        } else {
            version.num_files(level) as f64 / opts.l0_compaction_trigger as f64
        }
    }

    fn pick(&self, version: &Version, opts: &StoreOptions) -> Option<CompactionTask> {
        let level = most_pressured(opts, |l| self.level_score(version, opts, l))?;
        let base = version.levels[level].clone();
        if base.is_empty() {
            return None;
        }
        claim_task(version, level, base)
    }
}

/// Upper bound on base-input bytes of one [`HybridPartial`] task, in
/// units of `table_file_size`. Keeps every claim's hold time bounded.
const PARTIAL_INPUT_TABLES: u64 = 2;

/// Leveled scoring with bounded, cursor-rotating partial picks.
///
/// For L1+ the policy remembers, per level, the user key its last pick
/// ended at, and the next pick starts at the first file past that key
/// (wrapping at the end of the level) — LevelDB's `compact_pointer`.
/// A pick takes consecutive files until their byte sum would exceed
/// `PARTIAL_INPUT_TABLES` table sizes, so no task claims more than a
/// sliver of the level and claims are released in bounded time. L0 is
/// still compacted whole (its files overlap; a partial pick would
/// break the newer-level-newer-versions invariant).
#[derive(Debug, Default)]
pub struct HybridPartial {
    /// Per-level resume key (empty = start of level).
    cursors: Mutex<Vec<Vec<u8>>>,
}

impl HybridPartial {
    /// A fresh policy with all cursors at the start of each level.
    pub fn new() -> HybridPartial {
        HybridPartial::default()
    }
}

impl CompactionPolicy for HybridPartial {
    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::HybridPartial
    }

    fn level_score(&self, version: &Version, opts: &StoreOptions, level: usize) -> f64 {
        super::level_score(version, opts, level)
    }

    fn pick(&self, version: &Version, opts: &StoreOptions) -> Option<CompactionTask> {
        let level = most_pressured(opts, |l| self.level_score(version, opts, l))?;
        if level == 0 {
            let base = version.levels[0].clone();
            if base.is_empty() {
                return None;
            }
            return claim_task(version, 0, base);
        }

        // L1+ files are sorted by smallest key and disjoint. Start at
        // the first file strictly past the cursor, wrapping to the
        // level start when the cursor is at (or past) the end.
        let files = &version.levels[level];
        if files.is_empty() {
            return None;
        }
        let mut cursors = self.cursors.lock();
        if cursors.len() < opts.num_levels {
            cursors.resize(opts.num_levels, Vec::new());
        }
        let cursor = &cursors[level];
        let start = files
            .iter()
            .position(|f| f.largest_user_key() > cursor.as_slice())
            .unwrap_or(0);
        let budget = PARTIAL_INPUT_TABLES * opts.table_file_size;
        let mut base: Vec<Arc<FileMeta>> = Vec::new();
        let mut bytes = 0u64;
        for f in &files[start..] {
            if !base.is_empty() && bytes + f.file_size > budget {
                break;
            }
            bytes += f.file_size;
            base.push(Arc::clone(f));
        }
        // Advance the cursor past what we *tried* to claim, even if
        // the claim fails below: the next pick probes a different
        // subrange instead of contending on the same one.
        cursors[level] = base
            .last()
            .map(|f| f.largest_user_key().to_vec())
            .unwrap_or_default();
        drop(cursors);
        claim_task(version, level, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            CompactionPolicyKind::Leveled,
            CompactionPolicyKind::Tiered,
            CompactionPolicyKind::HybridPartial,
        ] {
            assert_eq!(CompactionPolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(CompactionPolicyKind::parse("nope"), None);
        assert_eq!(
            CompactionPolicyKind::parse("hybrid"),
            Some(CompactionPolicyKind::HybridPartial)
        );
    }
}
