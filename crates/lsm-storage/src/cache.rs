//! Block cache and table cache.
//!
//! The disk component "utilizes a large RAM cache" (§2.3): most reads
//! that reach the disk component in a workload with locality are served
//! from this cache. The block cache is a sharded strict-LRU keyed by
//! `(table number, block offset)`; the table cache keeps open table
//! readers (file descriptors + parsed index/filter).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use clsm_util::env::Env;
use clsm_util::error::Result;

use crate::filenames;
use crate::sstable::{Block, Table};

/// Number of independent LRU shards (reduces lock contention).
const SHARDS: usize = 16;

type CacheKey = (u64, u64);

/// A sharded LRU cache of parsed blocks, bounded in bytes.
pub struct BlockCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Creates a cache with a total `capacity_bytes` budget.
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard = (capacity_bytes / SHARDS).max(1);
        BlockCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<LruShard> {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1.rotate_left(17);
        &self.shards[(h as usize) % SHARDS]
    }

    /// Looks up a block, refreshing its recency.
    pub fn get(&self, table: u64, offset: u64) -> Option<Arc<Block>> {
        let key = (table, offset);
        let found = self.shard(&key).lock().get(&key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a block, evicting LRU entries past the byte budget.
    pub fn insert(&self, table: u64, offset: u64, block: Arc<Block>) {
        let key = (table, offset);
        let charge = block.size() + 64;
        self.shard(&key).lock().insert(key, block, charge);
    }

    /// Drops every cached block belonging to `table` (called when the
    /// file is deleted after a compaction).
    pub fn evict_table(&self, table: u64) {
        for shard in &self.shards {
            shard.lock().retain(|k| k.0 != table);
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total bytes currently charged.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, m) = self.stats();
        f.debug_struct("BlockCache")
            .field("hits", &h)
            .field("misses", &m)
            .finish()
    }
}

/// One strict-LRU shard: hash map into a slab of doubly-linked slots.
struct LruShard {
    capacity: usize,
    used: usize,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used.
    head: Option<usize>,
    /// Least recently used.
    tail: Option<usize>,
}

struct Slot {
    key: CacheKey,
    value: Arc<Block>,
    charge: usize,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            capacity,
            used: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None => self.tail = prev,
        }
        self.slots[i].prev = None;
        self.slots[i].next = None;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = None;
        self.slots[i].next = self.head;
        if let Some(h) = self.head {
            self.slots[h].prev = Some(i);
        }
        self.head = Some(i);
        if self.tail.is_none() {
            self.tail = Some(i);
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<Block>> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.slots[i].value))
    }

    fn insert(&mut self, key: CacheKey, value: Arc<Block>, charge: usize) {
        if let Some(&i) = self.map.get(&key) {
            // Replace in place and refresh.
            self.used = self.used - self.slots[i].charge + charge;
            self.slots[i].value = value;
            self.slots[i].charge = charge;
            self.unlink(i);
            self.push_front(i);
        } else {
            let slot = Slot {
                key,
                value,
                charge,
                prev: None,
                next: None,
            };
            let i = match self.free.pop() {
                Some(i) => {
                    self.slots[i] = slot;
                    i
                }
                None => {
                    self.slots.push(slot);
                    self.slots.len() - 1
                }
            };
            self.map.insert(key, i);
            self.push_front(i);
            self.used += charge;
        }
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        while self.used > self.capacity {
            let Some(t) = self.tail else { break };
            // Never evict the entry just inserted if it alone exceeds
            // the budget and is the only entry — drop it instead.
            self.remove_slot(t);
        }
    }

    fn remove_slot(&mut self, i: usize) {
        self.unlink(i);
        let key = self.slots[i].key;
        self.map.remove(&key);
        self.used -= self.slots[i].charge;
        // Drop the Arc now; keep the slot for reuse.
        self.slots[i].value = dangling_block();
        self.free.push(i);
    }

    fn retain(&mut self, keep: impl Fn(&CacheKey) -> bool) {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        for i in doomed {
            self.remove_slot(i);
        }
    }
}

/// A shared empty block used to release evicted payloads eagerly.
fn dangling_block() -> Arc<Block> {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<Arc<Block>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| {
        // An empty block: zero restarts, count = 0.
        Arc::new(Block::parse(vec![0, 0, 0, 0]).expect("static empty block"))
    }))
}

/// Cache of open table readers keyed by file number.
pub struct TableCache {
    env: Arc<dyn Env>,
    dir: PathBuf,
    bloom_bits_per_key: usize,
    block_cache: Option<Arc<BlockCache>>,
    tables: Mutex<HashMap<u64, (Arc<Table>, u64)>>,
    tick: AtomicU64,
    max_open: usize,
}

impl TableCache {
    /// Creates a table cache for `dir` holding at most `max_open`
    /// readers.
    pub fn new(
        env: Arc<dyn Env>,
        dir: PathBuf,
        bloom_bits_per_key: usize,
        block_cache: Option<Arc<BlockCache>>,
        max_open: usize,
    ) -> Self {
        TableCache {
            env,
            dir,
            bloom_bits_per_key,
            block_cache,
            tables: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            max_open: max_open.max(8),
        }
    }

    /// Returns the open table for `number`, opening it if needed.
    pub fn table(&self, number: u64) -> Result<Arc<Table>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut tables = self.tables.lock();
            if let Some((t, last)) = tables.get_mut(&number) {
                *last = tick;
                return Ok(Arc::clone(t));
            }
        }
        // Open outside the lock; racing opens are harmless (one wins).
        let path = filenames::table_path(&self.dir, number);
        let table = Arc::new(Table::open(
            self.env.as_ref(),
            &path,
            number,
            self.bloom_bits_per_key,
            self.block_cache.clone(),
        )?);
        let mut tables = self.tables.lock();
        if tables.len() >= self.max_open {
            // Evict the coldest quarter (amortized, keeps the common
            // path O(1)).
            let mut by_age: Vec<(u64, u64)> =
                tables.iter().map(|(&n, &(_, last))| (last, n)).collect();
            by_age.sort_unstable();
            for &(_, n) in by_age.iter().take(self.max_open / 4 + 1) {
                tables.remove(&n);
            }
        }
        let entry = tables.entry(number).or_insert((table, tick));
        Ok(Arc::clone(&entry.0))
    }

    /// Forgets a deleted table and purges its cached blocks.
    pub fn evict(&self, number: u64) {
        self.tables.lock().remove(&number);
        if let Some(cache) = &self.block_cache {
            cache.evict_table(number);
        }
    }

    /// The shared block cache, if configured.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// The directory this cache serves.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl std::fmt::Debug for TableCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCache")
            .field("open_tables", &self.tables.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of_size(n: usize) -> Arc<Block> {
        // Payload followed by a minimal trailer (0 restarts).
        let mut data = vec![0u8; n.saturating_sub(4)];
        data.extend_from_slice(&0u32.to_le_bytes());
        Arc::new(Block::parse(data).unwrap())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BlockCache::new(1 << 20);
        assert!(cache.get(1, 0).is_none());
        cache.insert(1, 0, block_of_size(100));
        assert!(cache.get(1, 0).is_some());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Single-shard-sized budget: force all keys into one shard by
        // using the same table number... different offsets may still
        // spread across shards, so check the aggregate property: total
        // usage stays within budget and recently used entries survive.
        let cache = BlockCache::new(SHARDS * 1000);
        for i in 0..100u64 {
            cache.insert(7, i, block_of_size(500));
        }
        assert!(cache.used_bytes() <= SHARDS * 1000);
        // Freshly inserted block is present.
        cache.insert(7, 1000, block_of_size(500));
        assert!(cache.get(7, 1000).is_some());
    }

    #[test]
    fn reinsert_updates_charge() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(1, 0, block_of_size(100));
        let used_small = cache.used_bytes();
        cache.insert(1, 0, block_of_size(10_000));
        let used_big = cache.used_bytes();
        assert!(used_big > used_small);
        cache.insert(1, 0, block_of_size(100));
        assert_eq!(cache.used_bytes(), used_small);
    }

    #[test]
    fn evict_table_removes_all_blocks() {
        let cache = BlockCache::new(1 << 20);
        for i in 0..10u64 {
            cache.insert(3, i, block_of_size(100));
            cache.insert(4, i, block_of_size(100));
        }
        cache.evict_table(3);
        for i in 0..10u64 {
            assert!(cache.get(3, i).is_none());
            assert!(cache.get(4, i).is_some());
        }
    }

    #[test]
    fn recency_protects_hot_entries() {
        // Budget fits ~4 entries per shard; hammer one key and verify
        // it survives a stream of cold inserts mapping to all shards.
        let cache = BlockCache::new(SHARDS * 2048);
        cache.insert(9, 42, block_of_size(400));
        for i in 0..200u64 {
            cache.insert(1, i, block_of_size(400));
            assert!(cache.get(9, 42).is_some(), "hot entry evicted at i={i}");
        }
    }
}
