//! Iterator abstraction shared by memory and disk components.
//!
//! The cLSM scan algorithm (§3.2) iterates over "all live components
//! (one or two memory components and the disk component)" through a
//! merging iterator and filters versions per snapshot. This module
//! defines the common iterator contract and the merging combinator;
//! the memtable, SSTables, and levels each implement
//! [`InternalIterator`].

use clsm_util::error::Result;

use crate::format::ValueKind;

/// A cursor over `(user_key, ts, kind, value)` entries in internal
/// order (user key ascending, timestamp descending).
///
/// Iterators start out invalid; position them with `seek_to_first` or
/// `seek`. Accessors must only be called while `valid()`.
pub trait InternalIterator: Send {
    /// Returns `true` when positioned on an entry.
    fn valid(&self) -> bool;

    /// Positions on the first entry.
    fn seek_to_first(&mut self);

    /// Positions on the first entry `>= (user_key, ts)` in internal
    /// order — i.e. on the newest version of `user_key` that is visible
    /// at time `ts`, or on a later key.
    fn seek(&mut self, user_key: &[u8], ts: u64);

    /// Advances to the next entry.
    fn next(&mut self);

    /// The current entry's user key.
    fn user_key(&self) -> &[u8];

    /// The current entry's timestamp.
    fn ts(&self) -> u64;

    /// The current entry's kind (put or deletion marker).
    fn kind(&self) -> ValueKind;

    /// The current entry's value bytes (empty for deletions).
    fn value(&self) -> &[u8];

    /// First error encountered, if any. An iterator that hits an error
    /// becomes invalid; callers distinguish exhaustion from failure by
    /// checking this.
    fn status(&self) -> Result<()> {
        Ok(())
    }
}

/// A heap-allocated, dynamically typed internal iterator.
pub type BoxedIterator = Box<dyn InternalIterator>;

impl<T: InternalIterator + ?Sized> InternalIterator for Box<T> {
    fn valid(&self) -> bool {
        (**self).valid()
    }

    fn seek_to_first(&mut self) {
        (**self).seek_to_first()
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        (**self).seek(user_key, ts)
    }

    fn next(&mut self) {
        (**self).next()
    }

    fn user_key(&self) -> &[u8] {
        (**self).user_key()
    }

    fn ts(&self) -> u64 {
        (**self).ts()
    }

    fn kind(&self) -> ValueKind {
        (**self).kind()
    }

    fn value(&self) -> &[u8] {
        (**self).value()
    }

    fn status(&self) -> Result<()> {
        (**self).status()
    }
}

/// Merges several [`InternalIterator`]s into one ordered stream.
///
/// Ties on `(user_key, ts)` — possible when a WAL replay duplicated an
/// entry across components — are broken by child index, so children
/// should be supplied newest-component-first.
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    /// Index of the child currently holding the smallest entry.
    current: Option<usize>,
}

impl MergingIterator {
    /// Builds a merging iterator over `children` (newest first).
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> Self {
        MergingIterator {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut best: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let bc = &self.children[b];
                    let ord = child
                        .user_key()
                        .cmp(bc.user_key())
                        .then(bc.ts().cmp(&child.ts()));
                    // Strictly-less wins; ties keep the earlier child.
                    if ord == std::cmp::Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        self.current = best;
    }

    fn current_child(&self) -> &dyn InternalIterator {
        let i = self.current.expect("iterator must be valid");
        self.children[i].as_ref()
    }
}

impl InternalIterator for MergingIterator {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for child in &mut self.children {
            child.seek_to_first();
        }
        self.find_smallest();
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        for child in &mut self.children {
            child.seek(user_key, ts);
        }
        self.find_smallest();
    }

    fn next(&mut self) {
        let i = self.current.expect("next on invalid iterator");
        self.children[i].next();
        self.find_smallest();
    }

    fn user_key(&self) -> &[u8] {
        self.current_child().user_key()
    }

    fn ts(&self) -> u64 {
        self.current_child().ts()
    }

    fn kind(&self) -> ValueKind {
        self.current_child().kind()
    }

    fn value(&self) -> &[u8] {
        self.current_child().value()
    }

    fn status(&self) -> Result<()> {
        for child in &self.children {
            child.status()?;
        }
        Ok(())
    }
}

/// An iterator over an in-memory list of owned entries. Used in tests
/// and by the flush path to adapt collected entries.
#[derive(Debug, Default)]
pub struct VecIterator {
    /// `(user_key, ts, kind, value)` in internal order.
    entries: Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)>,
    pos: usize,
    started: bool,
}

impl VecIterator {
    /// Builds an iterator; `entries` must already be internally sorted.
    pub fn new(entries: Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| { w[0].0.cmp(&w[1].0).then(w[1].1.cmp(&w[0].1)).is_lt() }));
        VecIterator {
            entries,
            pos: 0,
            started: false,
        }
    }
}

impl InternalIterator for VecIterator {
    fn valid(&self) -> bool {
        self.started && self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.started = true;
        self.pos = 0;
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        self.started = true;
        self.pos = self.entries.partition_point(|(k, t, _, _)| {
            k.as_slice().cmp(user_key).then(ts.cmp(t)) == std::cmp::Ordering::Less
        });
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.pos += 1;
    }

    fn user_key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn ts(&self) -> u64 {
        self.entries[self.pos].1
    }

    fn kind(&self) -> ValueKind {
        self.entries[self.pos].2
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: &str, ts: u64, v: &str) -> (Vec<u8>, u64, ValueKind, Vec<u8>) {
        (
            k.as_bytes().to_vec(),
            ts,
            ValueKind::Put,
            v.as_bytes().to_vec(),
        )
    }

    fn drain(it: &mut dyn InternalIterator) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        while it.valid() {
            out.push((it.user_key().to_vec(), it.ts()));
            it.next();
        }
        out
    }

    #[test]
    fn vec_iterator_basics() {
        let mut it = VecIterator::new(vec![
            entry("a", 2, "x"),
            entry("a", 1, "y"),
            entry("b", 3, "z"),
        ]);
        assert!(!it.valid());
        it.seek_to_first();
        assert_eq!(
            drain(&mut it),
            vec![(b"a".to_vec(), 2), (b"a".to_vec(), 1), (b"b".to_vec(), 3)]
        );
        it.seek(b"a", 1);
        assert_eq!((it.user_key(), it.ts()), (&b"a"[..], 1));
        it.seek(b"a", 0);
        assert_eq!((it.user_key(), it.ts()), (&b"b"[..], 3));
        it.seek(b"c", u64::MAX);
        assert!(!it.valid());
    }

    #[test]
    fn merge_interleaves_in_order() {
        let a = VecIterator::new(vec![entry("a", 5, "1"), entry("c", 3, "2")]);
        let b = VecIterator::new(vec![
            entry("a", 7, "3"),
            entry("b", 1, "4"),
            entry("c", 9, "5"),
        ]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek_to_first();
        assert_eq!(
            drain(&mut m),
            vec![
                (b"a".to_vec(), 7),
                (b"a".to_vec(), 5),
                (b"b".to_vec(), 1),
                (b"c".to_vec(), 9),
                (b"c".to_vec(), 3),
            ]
        );
    }

    #[test]
    fn merge_with_empty_children() {
        let a = VecIterator::new(vec![]);
        let b = VecIterator::new(vec![entry("x", 1, "v")]);
        let c = VecIterator::new(vec![]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b), Box::new(c)]);
        m.seek_to_first();
        assert_eq!(drain(&mut m), vec![(b"x".to_vec(), 1)]);
        m.seek_to_first();
        m.seek(b"y", u64::MAX);
        assert!(!m.valid());
    }

    #[test]
    fn merge_seek_lands_on_smallest_qualifying() {
        let a = VecIterator::new(vec![entry("k", 8, "old")]);
        let b = VecIterator::new(vec![entry("k", 4, "older")]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek(b"k", 6);
        assert_eq!((it_key(&m), m.ts()), (b"k".to_vec(), 4));
        m.seek(b"k", 9);
        assert_eq!((it_key(&m), m.ts()), (b"k".to_vec(), 8));
    }

    fn it_key(m: &MergingIterator) -> Vec<u8> {
        m.user_key().to_vec()
    }

    #[test]
    fn merge_duplicate_ties_prefer_earlier_child() {
        // Identical (key, ts) in two components: the newest component
        // (earlier child) must win.
        let a = VecIterator::new(vec![entry("k", 5, "new")]);
        let b = VecIterator::new(vec![entry("k", 5, "stale")]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek_to_first();
        assert_eq!(m.value(), b"new");
        m.next();
        assert_eq!(m.value(), b"stale");
        m.next();
        assert!(!m.valid());
    }
}
