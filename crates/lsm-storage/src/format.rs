//! On-disk entry formats: internal keys and WAL write records.
//!
//! Every stored entry is a `(user_key, timestamp, kind, value)` tuple.
//! Timestamps are cLSM write timestamps (the multi-versioning described
//! in §3.2 of the paper); `kind` distinguishes live values from the ⊥
//! deletion marker.

use clsm_util::coding::{
    get_length_prefixed_slice, get_varint64, put_length_prefixed_slice, put_varint64,
};
use clsm_util::error::{Error, Result};

/// Kind tag of a stored value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ValueKind {
    /// A deletion marker (sorts after `Put` only via timestamps, which
    /// are unique, so the discriminant value carries no ordering).
    Delete = 0,
    /// A live value.
    Put = 1,
}

impl ValueKind {
    /// Parses a kind byte.
    pub fn from_u8(v: u8) -> Result<ValueKind> {
        match v {
            0 => Ok(ValueKind::Delete),
            1 => Ok(ValueKind::Put),
            _ => Err(Error::corruption(format!("bad value kind {v}"))),
        }
    }
}

/// An internal key: `user_key ++ 8-byte little-endian tag`, where the
/// tag packs `(timestamp << 1) | kind`.
///
/// Internal keys are ordered by user key ascending, then timestamp
/// *descending* — the same order as the in-memory skip list, so that
/// the first entry for a key is its newest version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalKey(Vec<u8>);

/// Size of the trailing tag.
pub const TAG_SIZE: usize = 8;

/// Maximum encodable timestamp (63 bits).
pub const MAX_TS: u64 = (1 << 63) - 1;

impl InternalKey {
    /// Builds an internal key from parts.
    pub fn new(user_key: &[u8], ts: u64, kind: ValueKind) -> Self {
        let mut buf = Vec::with_capacity(user_key.len() + TAG_SIZE);
        buf.extend_from_slice(user_key);
        buf.extend_from_slice(&pack_tag(ts, kind).to_le_bytes());
        InternalKey(buf)
    }

    /// Interprets an encoded buffer as an internal key.
    pub fn decode(buf: &[u8]) -> Result<InternalKey> {
        if buf.len() < TAG_SIZE {
            return Err(Error::corruption("internal key too short"));
        }
        Ok(InternalKey(buf.to_vec()))
    }

    /// The encoded bytes.
    pub fn encoded(&self) -> &[u8] {
        &self.0
    }

    /// The user-key prefix.
    pub fn user_key(&self) -> &[u8] {
        split_internal_key(&self.0)
            .expect("validated at construction")
            .0
    }

    /// The timestamp.
    pub fn ts(&self) -> u64 {
        split_internal_key(&self.0)
            .expect("validated at construction")
            .1
    }

    /// The value kind.
    pub fn kind(&self) -> ValueKind {
        split_internal_key(&self.0)
            .expect("validated at construction")
            .2
    }
}

/// Packs timestamp and kind into the 8-byte tag.
pub fn pack_tag(ts: u64, kind: ValueKind) -> u64 {
    debug_assert!(ts <= MAX_TS);
    (ts << 1) | kind as u64
}

/// Splits an encoded internal key into `(user_key, ts, kind)`.
pub fn split_internal_key(encoded: &[u8]) -> Result<(&[u8], u64, ValueKind)> {
    if encoded.len() < TAG_SIZE {
        return Err(Error::corruption("internal key too short"));
    }
    let (user, tag_bytes) = encoded.split_at(encoded.len() - TAG_SIZE);
    let tag = u64::from_le_bytes(tag_bytes.try_into().expect("8 bytes"));
    let kind = ValueKind::from_u8((tag & 1) as u8)?;
    Ok((user, tag >> 1, kind))
}

/// Compares two encoded internal keys: user key ascending, then
/// timestamp descending.
pub fn compare_internal_keys(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    let (ua, ta, _) = split_internal_key(a).expect("valid internal key");
    let (ub, tb, _) = split_internal_key(b).expect("valid internal key");
    ua.cmp(ub).then(tb.cmp(&ta))
}

/// Compares an encoded internal key to a `(user_key, ts)` search
/// target (the newest admissible version sorts first).
pub fn compare_internal_to_target(a: &[u8], key: &[u8], ts: u64) -> std::cmp::Ordering {
    let (ua, ta, _) = split_internal_key(a).expect("valid internal key");
    ua.cmp(key).then(ts.cmp(&ta))
}

/// A single logical write, as serialized into the WAL.
///
/// cLSM relaxes LevelDB's single-writer constraint, so WAL records may
/// be appended out of timestamp order; recovery sorts by `ts` (§4:
/// "the correct order is easily restored upon recovery").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// Write timestamp assigned by the oracle.
    pub ts: u64,
    /// Kind (put or deletion marker).
    pub kind: ValueKind,
    /// User key.
    pub key: Vec<u8>,
    /// Value bytes (empty for deletions).
    pub value: Vec<u8>,
}

impl WriteRecord {
    /// Creates a put record.
    pub fn put(ts: u64, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        WriteRecord {
            ts,
            kind: ValueKind::Put,
            key: key.into(),
            value: value.into(),
        }
    }

    /// Creates a deletion record.
    pub fn delete(ts: u64, key: impl Into<Vec<u8>>) -> Self {
        WriteRecord {
            ts,
            kind: ValueKind::Delete,
            key: key.into(),
            value: Vec::new(),
        }
    }

    /// Creates a cross-shard batch-commit marker.
    ///
    /// A multi-shard atomic batch stamps all of its entries with one
    /// shared timestamp and appends this marker — carrying the batch's
    /// total entry count — to every participating shard's WAL. On
    /// recovery, a marked timestamp whose recovered entry count falls
    /// short of `total` identifies a batch torn by a crash (some
    /// shards' WAL tails were lost), and its surviving entries are
    /// dropped to preserve batch atomicity.
    ///
    /// The empty user key is reserved for markers: the public write
    /// APIs reject empty keys, so a marker can never collide with user
    /// data.
    pub fn batch_marker(ts: u64, total: u64) -> Self {
        let mut value = Vec::with_capacity(10);
        put_varint64(&mut value, total);
        WriteRecord {
            ts,
            kind: ValueKind::Put,
            key: Vec::new(),
            value,
        }
    }

    /// If this record is a batch-commit marker, its expected total
    /// entry count.
    pub fn batch_marker_total(&self) -> Option<u64> {
        if !self.key.is_empty() {
            return None;
        }
        get_varint64(&self.value).ok().map(|(total, _)| total)
    }

    /// Appends the serialized record to `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.ts);
        dst.push(self.kind as u8);
        put_length_prefixed_slice(dst, &self.key);
        put_length_prefixed_slice(dst, &self.value);
    }

    /// Decodes one record from the front of `src`, returning it and the
    /// bytes consumed.
    pub fn decode_from(src: &[u8]) -> Result<(WriteRecord, usize)> {
        let (ts, mut at) = get_varint64(src)?;
        let kind = ValueKind::from_u8(
            *src.get(at)
                .ok_or_else(|| Error::corruption("truncated write record"))?,
        )?;
        at += 1;
        let (key, n) = get_length_prefixed_slice(&src[at..])?;
        at += n;
        let (value, n) = get_length_prefixed_slice(&src[at..])?;
        at += n;
        Ok((
            WriteRecord {
                ts,
                kind,
                key: key.to_vec(),
                value: value.to_vec(),
            },
            at,
        ))
    }

    /// Decodes a batch of concatenated records.
    pub fn decode_batch(mut src: &[u8]) -> Result<Vec<WriteRecord>> {
        let mut out = Vec::new();
        while !src.is_empty() {
            let (rec, n) = WriteRecord::decode_from(src)?;
            out.push(rec);
            src = &src[n..];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering::{Equal, Greater, Less};

    #[test]
    fn internal_key_roundtrip() {
        let k = InternalKey::new(b"user", 42, ValueKind::Put);
        assert_eq!(k.user_key(), b"user");
        assert_eq!(k.ts(), 42);
        assert_eq!(k.kind(), ValueKind::Put);
        let decoded = InternalKey::decode(k.encoded()).unwrap();
        assert_eq!(decoded, k);
    }

    #[test]
    fn internal_key_rejects_short_buffers() {
        assert!(InternalKey::decode(b"1234567").is_err());
        assert!(split_internal_key(b"").is_err());
    }

    #[test]
    fn ordering_user_key_then_ts_desc() {
        let a = InternalKey::new(b"a", 5, ValueKind::Put);
        let a9 = InternalKey::new(b"a", 9, ValueKind::Put);
        let b = InternalKey::new(b"b", 1, ValueKind::Put);
        assert_eq!(compare_internal_keys(a9.encoded(), a.encoded()), Less);
        assert_eq!(compare_internal_keys(a.encoded(), a9.encoded()), Greater);
        assert_eq!(compare_internal_keys(a.encoded(), b.encoded()), Less);
        assert_eq!(compare_internal_keys(a.encoded(), a.encoded()), Equal);
    }

    #[test]
    fn prefix_keys_do_not_confuse_ordering() {
        // The tag bytes must never bleed into user-key comparison.
        let ab = InternalKey::new(b"ab", 1, ValueKind::Put);
        let abc = InternalKey::new(b"abc", u64::MAX >> 1, ValueKind::Put);
        assert_eq!(compare_internal_keys(ab.encoded(), abc.encoded()), Less);
    }

    #[test]
    fn target_comparison() {
        let k = InternalKey::new(b"k", 5, ValueKind::Put);
        // Entry (k,5) vs target (k,9): entry is an older version →
        // target wants newest ≤ 9, entry qualifies, sorts ≥ target.
        assert_eq!(compare_internal_to_target(k.encoded(), b"k", 9), Greater);
        assert_eq!(compare_internal_to_target(k.encoded(), b"k", 5), Equal);
        assert_eq!(compare_internal_to_target(k.encoded(), b"k", 3), Less);
        assert_eq!(compare_internal_to_target(k.encoded(), b"l", 3), Less);
        assert_eq!(
            compare_internal_to_target(k.encoded(), b"j", u64::MAX),
            Greater
        );
    }

    #[test]
    fn write_record_roundtrip() {
        let records = vec![
            WriteRecord::put(1, b"key".to_vec(), b"value".to_vec()),
            WriteRecord::delete(2, b"gone".to_vec()),
            WriteRecord::put(u64::MAX >> 2, b"".to_vec(), vec![0xab; 300]),
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode_to(&mut buf);
        }
        let decoded = WriteRecord::decode_batch(&buf).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn write_record_rejects_garbage() {
        assert!(WriteRecord::decode_batch(&[0x01, 0x07]).is_err());
        let mut buf = Vec::new();
        WriteRecord::put(1, b"k".to_vec(), b"v".to_vec()).encode_to(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(WriteRecord::decode_batch(&buf).is_err());
    }

    #[test]
    fn tag_packs_kind_and_ts() {
        assert_eq!(pack_tag(0, ValueKind::Delete), 0);
        assert_eq!(pack_tag(0, ValueKind::Put), 1);
        assert_eq!(pack_tag(7, ValueKind::Put), 15);
        let (_, ts, kind) =
            split_internal_key(InternalKey::new(b"x", 7, ValueKind::Delete).encoded()).unwrap();
        assert_eq!((ts, kind), (7, ValueKind::Delete));
    }
}
