//! Concatenating iterator over one sorted level (L1+).

use std::sync::Arc;

use clsm_util::error::{Error, Result};

use crate::cache::TableCache;
use crate::format::{compare_internal_to_target, ValueKind};
use crate::iter::InternalIterator;
use crate::sstable::TableIter;
use crate::version::FileMeta;

/// Iterates the files of a disjoint-range level in key order, opening
/// tables lazily through the table cache.
pub struct LevelIter {
    cache: Arc<TableCache>,
    files: Vec<Arc<FileMeta>>,
    /// Index of the file currently being iterated.
    idx: usize,
    table_iter: Option<TableIter>,
    error: Option<Error>,
}

impl LevelIter {
    /// Creates an iterator over `files`, which must be sorted by
    /// smallest key with disjoint user-key ranges.
    pub fn new(cache: Arc<TableCache>, files: Vec<Arc<FileMeta>>) -> Self {
        LevelIter {
            cache,
            files,
            idx: 0,
            table_iter: None,
            error: None,
        }
    }

    fn open_file(&mut self, idx: usize) -> bool {
        self.idx = idx;
        if idx >= self.files.len() {
            self.table_iter = None;
            return false;
        }
        match self.cache.table(self.files[idx].number) {
            Ok(table) => {
                self.table_iter = Some(table.iter());
                true
            }
            Err(e) => {
                self.error.get_or_insert(e);
                self.table_iter = None;
                false
            }
        }
    }

    fn skip_exhausted_forward(&mut self) {
        while self.table_iter.as_ref().is_some_and(|t| !t.valid()) {
            if self.error.is_some() {
                return;
            }
            let next = self.idx + 1;
            if !self.open_file(next) {
                return;
            }
            if let Some(t) = &mut self.table_iter {
                t.seek_to_first();
            }
        }
    }
}

impl InternalIterator for LevelIter {
    fn valid(&self) -> bool {
        self.table_iter.as_ref().is_some_and(|t| t.valid())
    }

    fn seek_to_first(&mut self) {
        if self.open_file(0) {
            if let Some(t) = &mut self.table_iter {
                t.seek_to_first();
            }
            self.skip_exhausted_forward();
        }
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        // First file whose largest key is >= the target.
        let idx = self.files.partition_point(|f| {
            compare_internal_to_target(&f.largest, user_key, ts) == std::cmp::Ordering::Less
        });
        if self.open_file(idx) {
            if let Some(t) = &mut self.table_iter {
                t.seek(user_key, ts);
            }
            self.skip_exhausted_forward();
        }
    }

    fn next(&mut self) {
        if let Some(t) = &mut self.table_iter {
            t.next();
        }
        self.skip_exhausted_forward();
    }

    fn user_key(&self) -> &[u8] {
        self.table_iter.as_ref().expect("valid").user_key()
    }

    fn ts(&self) -> u64 {
        self.table_iter.as_ref().expect("valid").ts()
    }

    fn kind(&self) -> ValueKind {
        self.table_iter.as_ref().expect("valid").kind()
    }

    fn value(&self) -> &[u8] {
        self.table_iter.as_ref().expect("valid").value()
    }

    fn status(&self) -> Result<()> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if let Some(t) = &self.table_iter {
            t.status()?;
        }
        Ok(())
    }
}
