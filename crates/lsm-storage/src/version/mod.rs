//! Versions: immutable snapshots of the leveled file layout.
//!
//! A [`Version`] is the disk component `Cd` at one instant. Readers
//! grab the current version through an RCU pointer (lock-free, matching
//! cLSM's non-blocking `get`), while flushes and compactions install
//! new versions through [`VersionSet::log_and_apply`] under the
//! version-set mutex.

mod edit;
mod level_iter;

pub use edit::{NewFile, VersionEdit};
pub use level_iter::LevelIter;

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use clsm_util::env::Env;
use clsm_util::error::{Error, Result};

use crate::cache::TableCache;
use crate::filenames;
use crate::format::ValueKind;
use crate::iter::BoxedIterator;
use crate::wal::{LogReader, LogWriter};
use crate::NUM_LEVELS;

/// Immutable metadata of one table file.
#[derive(Debug)]
pub struct FileMeta {
    /// Table file number.
    pub number: u64,
    /// File size in bytes.
    pub file_size: u64,
    /// Smallest internal key in the file.
    pub smallest: Vec<u8>,
    /// Largest internal key in the file.
    pub largest: Vec<u8>,
    /// Set while a compaction claims this file as input.
    pub being_compacted: AtomicBool,
}

impl FileMeta {
    /// The user-key prefix of the smallest internal key.
    pub fn smallest_user_key(&self) -> &[u8] {
        user_part(&self.smallest)
    }

    /// The user-key prefix of the largest internal key.
    pub fn largest_user_key(&self) -> &[u8] {
        user_part(&self.largest)
    }
}

fn user_part(internal: &[u8]) -> &[u8] {
    &internal[..internal.len().saturating_sub(crate::format::TAG_SIZE)]
}

/// One immutable snapshot of the file layout across levels.
#[derive(Debug)]
pub struct Version {
    /// Files per level. L0 is sorted by file number descending (newest
    /// first); L1+ are sorted by smallest key with disjoint ranges.
    pub levels: Vec<Vec<Arc<FileMeta>>>,
}

impl Version {
    /// An empty version.
    pub fn empty() -> Version {
        Version {
            levels: (0..NUM_LEVELS).map(|_| Vec::new()).collect(),
        }
    }

    /// Point lookup across all levels: the newest version of `user_key`
    /// with timestamp `<= max_ts`.
    pub fn get(
        &self,
        cache: &TableCache,
        user_key: &[u8],
        max_ts: u64,
    ) -> Result<Option<(u64, ValueKind, Vec<u8>)>> {
        // L0: files may overlap; search newest-first. Any hit is the
        // newest visible version because newer L0 files hold strictly
        // newer versions of a key than older ones.
        for file in &self.levels[0] {
            if user_key < file.smallest_user_key() || user_key > file.largest_user_key() {
                continue;
            }
            let table = cache.table(file.number)?;
            if let Some(hit) = table.get(user_key, max_ts)? {
                return Ok(Some(hit));
            }
        }
        // L1+: disjoint ranges; at most one candidate file per level.
        for level in &self.levels[1..] {
            let idx = level.partition_point(|f| f.largest_user_key() < user_key);
            if idx >= level.len() {
                continue;
            }
            let file = &level[idx];
            if user_key < file.smallest_user_key() {
                continue;
            }
            let table = cache.table(file.number)?;
            if let Some(hit) = table.get(user_key, max_ts)? {
                return Ok(Some(hit));
            }
        }
        Ok(None)
    }

    /// Iterators over every file/level, newest component first, for use
    /// in a [`crate::MergingIterator`].
    pub fn iterators(&self, cache: &Arc<TableCache>) -> Result<Vec<BoxedIterator>> {
        let mut out: Vec<BoxedIterator> = Vec::new();
        for file in &self.levels[0] {
            let table = cache.table(file.number)?;
            out.push(Box::new(table.iter()));
        }
        for level in &self.levels[1..] {
            if !level.is_empty() {
                out.push(Box::new(LevelIter::new(Arc::clone(cache), level.clone())));
            }
        }
        Ok(out)
    }

    /// Files in `level` whose user-key range intersects
    /// `[smallest, largest]`.
    pub fn overlapping_files(
        &self,
        level: usize,
        smallest: &[u8],
        largest: &[u8],
    ) -> Vec<Arc<FileMeta>> {
        self.levels[level]
            .iter()
            .filter(|f| f.largest_user_key() >= smallest && f.smallest_user_key() <= largest)
            .cloned()
            .collect()
    }

    /// Total bytes in `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.file_size).sum()
    }

    /// Number of files in `level`.
    pub fn num_files(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Collects every file number referenced by this version.
    pub fn live_files(&self, into: &mut HashSet<u64>) {
        for level in &self.levels {
            for f in level {
                into.insert(f.number);
            }
        }
    }
}

/// Mutable owner of the version history and the manifest.
pub struct VersionSet {
    env: Arc<dyn Env>,
    dir: PathBuf,
    current: Arc<Version>,
    manifest: LogWriter,
    next_file_number: u64,
    /// WAL number at/above which logs still hold unflushed data.
    log_number: u64,
    /// Highest timestamp known flushed.
    last_ts: u64,
    /// Versions that may still be referenced by in-flight readers.
    live_versions: Vec<Weak<Version>>,
}

impl std::fmt::Debug for VersionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionSet")
            .field("next_file_number", &self.next_file_number)
            .field("log_number", &self.log_number)
            .finish()
    }
}

/// State recovered from the manifest on open.
#[derive(Debug)]
pub struct RecoveredManifest {
    /// WAL numbers `>=` this still hold unflushed data.
    pub log_number: u64,
    /// Highest timestamp known flushed to tables.
    pub last_ts: u64,
    /// Byte offset where the previous manifest was found torn, if it
    /// was. The torn suffix belongs to an edit that was never acked
    /// (manifest appends are synced before success is reported), so
    /// recovery keeps the edits before it; a fresh snapshot manifest
    /// replaces the damaged file immediately.
    pub manifest_torn_at: Option<u64>,
}

impl VersionSet {
    /// Opens (or creates) the version state in `dir`.
    ///
    /// Rewrites the manifest as a fresh snapshot on every open, which
    /// bounds manifest growth and keeps recovery O(current state).
    pub fn open(env: Arc<dyn Env>, dir: &Path) -> Result<(VersionSet, RecoveredManifest)> {
        env.create_dir_all(dir)?;
        let current_file = filenames::current_path(dir);
        let mut version = Version::empty();
        let mut next_file_number = 1u64;
        let mut log_number = 0u64;
        let mut last_ts = 0u64;
        let mut manifest_torn_at = None;

        if env.exists(&current_file) {
            let name = String::from_utf8(env.read(&current_file)?).map_err(|_| {
                Error::manifest_corrupt(&current_file, "CURRENT is not valid UTF-8")
            })?;
            let manifest_path = dir.join(name.trim());
            let mut reader = LogReader::with_path(env.open_read(&manifest_path)?, &manifest_path);
            let mut builder = Builder::new(Version::empty());
            loop {
                let record = match reader.read_record() {
                    Ok(Some(record)) => record,
                    Ok(None) => break,
                    // A torn manifest tail is an edit that was never
                    // acked (appends sync before returning): stop at
                    // the last intact edit.
                    Err(Error::WalTruncated { offset, .. }) => {
                        manifest_torn_at = Some(offset);
                        break;
                    }
                    Err(e) => return Err(e),
                };
                // An edit that fails to decode is manifest damage, not
                // generic corruption: retag it with the file it came
                // from so tooling can tell version-state damage from
                // table damage.
                let edit = VersionEdit::decode(&record).map_err(|e| match e {
                    Error::Corruption(detail) => Error::manifest_corrupt(&manifest_path, detail),
                    other => other,
                })?;
                if let Some(v) = edit.log_number {
                    log_number = v;
                }
                if let Some(v) = edit.next_file_number {
                    next_file_number = next_file_number.max(v);
                }
                if let Some(v) = edit.last_ts {
                    last_ts = last_ts.max(v);
                }
                builder.apply(&edit)?;
            }
            version = builder.finish();
        }

        // Write a fresh manifest snapshot and swing CURRENT to it.
        let manifest_number = next_file_number;
        next_file_number += 1;
        let manifest_path = filenames::manifest_path(dir, manifest_number);
        let mut manifest = LogWriter::new(env.open_write(&manifest_path)?);
        let snapshot = snapshot_edit(&version, next_file_number, log_number, last_ts);
        manifest.add_record(&snapshot.encode())?;
        manifest.sync()?;
        install_current(env.as_ref(), dir, manifest_number)?;

        let current = Arc::new(version);
        let set = VersionSet {
            env,
            dir: dir.to_path_buf(),
            current: Arc::clone(&current),
            manifest,
            next_file_number,
            log_number,
            last_ts,
            live_versions: vec![Arc::downgrade(&current)],
        };
        Ok((
            set,
            RecoveredManifest {
                log_number,
                last_ts,
                manifest_torn_at,
            },
        ))
    }

    /// The current version.
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current)
    }

    /// Allocates a fresh file number.
    pub fn new_file_number(&mut self) -> u64 {
        let n = self.next_file_number;
        self.next_file_number += 1;
        n
    }

    /// The WAL number boundary recorded in the manifest.
    pub fn log_number(&self) -> u64 {
        self.log_number
    }

    /// Logs `edit` durably and installs the resulting version.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<Arc<Version>> {
        edit.next_file_number = Some(self.next_file_number);
        if let Some(v) = edit.log_number {
            debug_assert!(v >= self.log_number);
            self.log_number = v;
        }
        if let Some(v) = edit.last_ts {
            self.last_ts = self.last_ts.max(v);
        }
        let mut builder = Builder::new_from(&self.current);
        builder.apply(&edit)?;
        let new_version = Arc::new(builder.finish());
        self.manifest.add_record(&edit.encode())?;
        self.manifest.sync()?;
        self.current = Arc::clone(&new_version);
        self.live_versions.push(Arc::downgrade(&new_version));
        self.live_versions.retain(|w| w.strong_count() > 0);
        Ok(new_version)
    }

    /// Table-file numbers still referenced by any live version.
    pub fn live_table_files(&self) -> HashSet<u64> {
        let mut live = HashSet::new();
        self.current.live_files(&mut live);
        for weak in &self.live_versions {
            if let Some(v) = weak.upgrade() {
                v.live_files(&mut live);
            }
        }
        live
    }

    /// Deletes table and WAL files that no live version references and
    /// that are not pending outputs of an in-flight flush/compaction.
    /// Returns the numbers of the deleted tables (for cache eviction).
    pub fn delete_obsolete_files(
        &mut self,
        cache: &TableCache,
        pending: &HashSet<u64>,
    ) -> Result<Vec<u64>> {
        let mut live = self.live_table_files();
        live.extend(pending.iter().copied());
        let mut deleted = Vec::new();
        for name in self.env.list(&self.dir)? {
            match filenames::parse_file_name(&name) {
                Some(filenames::FileKind::Table(n)) if !live.contains(&n) => {
                    self.env.remove(&self.dir.join(&name))?;
                    cache.evict(n);
                    deleted.push(n);
                }
                Some(filenames::FileKind::Wal(n)) if n < self.log_number => {
                    self.env.remove(&self.dir.join(&name))?;
                }
                Some(filenames::FileKind::Temp(_)) => {
                    self.env.remove(&self.dir.join(&name))?;
                }
                _ => {}
            }
        }
        Ok(deleted)
    }
}

/// Atomically points CURRENT at the given manifest.
///
/// The temp file is written durably ([`Env::write`] syncs) before the
/// rename, so a crash can leave either the old or the new CURRENT —
/// never a truncated one.
fn install_current(env: &dyn Env, dir: &Path, manifest_number: u64) -> Result<()> {
    let tmp = filenames::temp_path(dir, manifest_number);
    env.write(&tmp, format!("MANIFEST-{manifest_number:06}\n").as_bytes())?;
    env.rename(&tmp, &filenames::current_path(dir))?;
    env.sync_dir(dir)?;
    Ok(())
}

/// Produces an edit that recreates `version` from scratch.
fn snapshot_edit(
    version: &Version,
    next_file_number: u64,
    log_number: u64,
    last_ts: u64,
) -> VersionEdit {
    let mut edit = VersionEdit {
        log_number: Some(log_number),
        next_file_number: Some(next_file_number),
        last_ts: Some(last_ts),
        ..Default::default()
    };
    for (level, files) in version.levels.iter().enumerate() {
        for f in files {
            edit.new_files.push(NewFile {
                level: level as u32,
                number: f.number,
                file_size: f.file_size,
                smallest: f.smallest.clone(),
                largest: f.largest.clone(),
            });
        }
    }
    edit
}

/// Applies edits to a base version, producing the next version.
struct Builder {
    levels: Vec<Vec<Arc<FileMeta>>>,
}

impl Builder {
    fn new(base: Version) -> Builder {
        Builder {
            levels: base.levels,
        }
    }

    fn new_from(base: &Version) -> Builder {
        Builder {
            levels: base.levels.clone(),
        }
    }

    fn apply(&mut self, edit: &VersionEdit) -> Result<()> {
        for &(level, number) in &edit.deleted_files {
            let level = level as usize;
            if level >= self.levels.len() {
                return Err(Error::corruption("edit deletes file at bad level"));
            }
            let before = self.levels[level].len();
            self.levels[level].retain(|f| f.number != number);
            if self.levels[level].len() == before {
                return Err(Error::corruption(format!(
                    "edit deletes unknown file {number} at level {level}"
                )));
            }
        }
        for nf in &edit.new_files {
            let level = nf.level as usize;
            if level >= self.levels.len() {
                return Err(Error::corruption("edit adds file at bad level"));
            }
            let meta = Arc::new(FileMeta {
                number: nf.number,
                file_size: nf.file_size,
                smallest: nf.smallest.clone(),
                largest: nf.largest.clone(),
                being_compacted: AtomicBool::new(false),
            });
            self.levels[level].push(meta);
        }
        Ok(())
    }

    fn finish(mut self) -> Version {
        // L0: newest (highest number) first.
        self.levels[0].sort_by_key(|f| std::cmp::Reverse(f.number));
        // L1+: by smallest key; ranges are disjoint by construction.
        for level in &mut self.levels[1..] {
            level.sort_by(|a, b| crate::format::compare_internal_keys(&a.smallest, &b.smallest));
        }
        Version {
            levels: self.levels,
        }
    }
}

impl Drop for VersionSet {
    fn drop(&mut self) {
        let _ = self.manifest.sync();
    }
}

/// A condition variable claim-release waiters park on. The releasing
/// side ([`CompactionClaim::drop`]) notifies under the same mutex the
/// waiter re-checks its condition under, so a release between check
/// and wait can never be missed — the reason `Store::compact_range`
/// needs no timed-poll backstop.
#[derive(Debug, Default)]
pub struct ClaimSignal {
    mutex: parking_lot::Mutex<()>,
    cv: parking_lot::Condvar,
}

impl ClaimSignal {
    /// Locks the signal; re-check the waited-on condition while
    /// holding this guard, then [`wait`](Self::wait) on it.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.mutex.lock()
    }

    /// Parks until the next claim release (no timeout: every release
    /// path notifies, including error unwinds, via the claim's Drop).
    pub fn wait(&self, guard: &mut parking_lot::MutexGuard<'_, ()>) {
        self.cv.wait(guard);
    }

    /// Wakes every waiter. Takes the mutex internally so a notify
    /// cannot slip between a waiter's condition check and its park.
    pub fn notify_all(&self) {
        let _g = self.mutex.lock();
        self.cv.notify_all();
    }
}

/// Marks compaction inputs; clears the flags when dropped (RAII guard
/// so failed compactions release their claims). When a [`ClaimSignal`]
/// is attached, the drop also notifies it — on success *and* on error
/// unwind — so claim waiters never need a timed poll.
#[derive(Debug)]
pub struct CompactionClaim {
    files: Vec<Arc<FileMeta>>,
    signal: Option<Arc<ClaimSignal>>,
}

impl CompactionClaim {
    /// Attempts to claim every file; returns `None` if any is already
    /// claimed by another compaction.
    pub fn try_claim(files: Vec<Arc<FileMeta>>) -> Option<CompactionClaim> {
        for (i, f) in files.iter().enumerate() {
            if f.being_compacted.swap(true, Ordering::AcqRel) {
                // Roll back the ones we claimed.
                for g in &files[..i] {
                    g.being_compacted.store(false, Ordering::Release);
                }
                return None;
            }
        }
        Some(CompactionClaim {
            files,
            signal: None,
        })
    }

    /// Attaches the signal to notify when this claim is released.
    pub fn attach_release_signal(&mut self, signal: Arc<ClaimSignal>) {
        self.signal = Some(signal);
    }

    /// The claimed files.
    pub fn files(&self) -> &[Arc<FileMeta>] {
        &self.files
    }
}

impl Drop for CompactionClaim {
    fn drop(&mut self) {
        for f in &self.files {
            f.being_compacted.store(false, Ordering::Release);
        }
        if let Some(signal) = &self.signal {
            signal.notify_all();
        }
    }
}

#[cfg(test)]
mod tests;
