//! Version edits: the delta records written to the manifest.

use clsm_util::coding::{
    get_length_prefixed_slice, get_varint64, put_length_prefixed_slice, put_varint64,
};
use clsm_util::error::{Error, Result};

/// File metadata as serialized in the manifest (no runtime state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewFile {
    /// Level the file joins.
    pub level: u32,
    /// Table file number.
    pub number: u64,
    /// File size in bytes.
    pub file_size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
}

/// A delta applied to the version state, logged in the manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionEdit {
    /// WAL number below which logs are fully flushed (may retire logs).
    pub log_number: Option<u64>,
    /// High-water mark of allocated file numbers.
    pub next_file_number: Option<u64>,
    /// Highest timestamp known flushed to disk.
    pub last_ts: Option<u64>,
    /// `(level, file number)` pairs removed by a compaction.
    pub deleted_files: Vec<(u32, u64)>,
    /// Files added by a flush or compaction.
    pub new_files: Vec<NewFile>,
}

// Record tags.
const TAG_LOG_NUMBER: u64 = 1;
const TAG_NEXT_FILE: u64 = 2;
const TAG_LAST_TS: u64 = 3;
const TAG_DELETED_FILE: u64 = 4;
const TAG_NEW_FILE: u64 = 5;

impl VersionEdit {
    /// Serializes the edit into one manifest record.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        if let Some(v) = self.log_number {
            put_varint64(&mut buf, TAG_LOG_NUMBER);
            put_varint64(&mut buf, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint64(&mut buf, TAG_NEXT_FILE);
            put_varint64(&mut buf, v);
        }
        if let Some(v) = self.last_ts {
            put_varint64(&mut buf, TAG_LAST_TS);
            put_varint64(&mut buf, v);
        }
        for &(level, number) in &self.deleted_files {
            put_varint64(&mut buf, TAG_DELETED_FILE);
            put_varint64(&mut buf, level as u64);
            put_varint64(&mut buf, number);
        }
        for f in &self.new_files {
            put_varint64(&mut buf, TAG_NEW_FILE);
            put_varint64(&mut buf, f.level as u64);
            put_varint64(&mut buf, f.number);
            put_varint64(&mut buf, f.file_size);
            put_length_prefixed_slice(&mut buf, &f.smallest);
            put_length_prefixed_slice(&mut buf, &f.largest);
        }
        buf
    }

    /// Parses a manifest record.
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        while !src.is_empty() {
            let (tag, n) = get_varint64(src)?;
            src = &src[n..];
            match tag {
                TAG_LOG_NUMBER => {
                    let (v, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.log_number = Some(v);
                }
                TAG_NEXT_FILE => {
                    let (v, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.next_file_number = Some(v);
                }
                TAG_LAST_TS => {
                    let (v, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.last_ts = Some(v);
                }
                TAG_DELETED_FILE => {
                    let (level, n) = get_varint64(src)?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.deleted_files.push((level as u32, number));
                }
                TAG_NEW_FILE => {
                    let (level, n) = get_varint64(src)?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src)?;
                    src = &src[n..];
                    let (file_size, n) = get_varint64(src)?;
                    src = &src[n..];
                    let (smallest, n) = get_length_prefixed_slice(src)?;
                    let smallest = smallest.to_vec();
                    src = &src[n..];
                    let (largest, n) = get_length_prefixed_slice(src)?;
                    let largest = largest.to_vec();
                    src = &src[n..];
                    edit.new_files.push(NewFile {
                        level: level as u32,
                        number,
                        file_size,
                        smallest,
                        largest,
                    });
                }
                other => return Err(Error::corruption(format!("unknown edit tag {other}"))),
            }
        }
        Ok(edit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_edit_roundtrip() {
        let edit = VersionEdit::default();
        assert_eq!(VersionEdit::decode(&edit.encode()).unwrap(), edit);
    }

    #[test]
    fn full_edit_roundtrip() {
        let edit = VersionEdit {
            log_number: Some(12),
            next_file_number: Some(99),
            last_ts: Some(123_456_789),
            deleted_files: vec![(0, 3), (2, 17)],
            new_files: vec![
                NewFile {
                    level: 1,
                    number: 42,
                    file_size: 4096,
                    smallest: b"aaa\x01\x00\x00\x00\x00\x00\x00\x00".to_vec(),
                    largest: b"zzz\x09\x00\x00\x00\x00\x00\x00\x00".to_vec(),
                },
                NewFile {
                    level: 6,
                    number: 43,
                    file_size: 1,
                    smallest: vec![0; 8],
                    largest: vec![0xff; 9],
                },
            ],
        };
        assert_eq!(VersionEdit::decode(&edit.encode()).unwrap(), edit);
    }

    #[test]
    fn decode_rejects_unknown_tags_and_truncation() {
        assert!(VersionEdit::decode(&[0x63]).is_err());
        let edit = VersionEdit {
            log_number: Some(300),
            ..Default::default()
        };
        let enc = edit.encode();
        assert!(VersionEdit::decode(&enc[..enc.len() - 1]).is_err());
    }
}
