//! Tests for version bookkeeping, manifest recovery, and level reads.

use super::*;
use crate::format::InternalKey;
use crate::iter::InternalIterator;
use crate::sstable::TableBuilder;
use clsm_util::env::RealEnv;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "version-{}-{}-{}",
        std::process::id(),
        name,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a table file and returns its NewFile record.
fn build_table(
    dir: &Path,
    number: u64,
    level: u32,
    entries: &[(&[u8], u64, ValueKind, &[u8])],
) -> NewFile {
    let path = filenames::table_path(dir, number);
    let mut b = TableBuilder::new(Box::new(std::fs::File::create(&path).unwrap()), 4096, 10);
    for (k, ts, kind, v) in entries {
        b.add(InternalKey::new(k, *ts, *kind).encoded(), v).unwrap();
    }
    let s = b.finish().unwrap();
    NewFile {
        level,
        number,
        file_size: s.file_size,
        smallest: s.smallest,
        largest: s.largest,
    }
}

fn cache_for(dir: &Path) -> Arc<TableCache> {
    Arc::new(TableCache::new(
        Arc::new(RealEnv),
        dir.to_path_buf(),
        10,
        None,
        100,
    ))
}

#[test]
fn empty_store_roundtrips_through_manifest() {
    let dir = tmpdir("empty");
    {
        let (set, rec) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
        assert_eq!(rec.log_number, 0);
        assert_eq!(set.current().num_files(0), 0);
    }
    // Re-open recovers cleanly.
    let (set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    assert_eq!(set.current().num_files(0), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn edits_survive_reopen() {
    let dir = tmpdir("edits");
    let f1 = build_table(&dir, 11, 0, &[(b"a", 1, ValueKind::Put, b"v1")]);
    let f2 = build_table(&dir, 12, 1, &[(b"m", 2, ValueKind::Put, b"v2")]);
    {
        let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
        let edit = VersionEdit {
            log_number: Some(5),
            last_ts: Some(2),
            new_files: vec![f1.clone(), f2.clone()],
            ..Default::default()
        };
        set.log_and_apply(edit).unwrap();
        assert_eq!(set.current().num_files(0), 1);
        assert_eq!(set.current().num_files(1), 1);
    }
    let (set, rec) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    assert_eq!(rec.log_number, 5);
    assert_eq!(rec.last_ts, 2);
    let v = set.current();
    assert_eq!(v.num_files(0), 1);
    assert_eq!(v.levels[0][0].number, 11);
    assert_eq!(v.levels[1][0].number, 12);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn version_get_prefers_newer_levels() {
    let dir = tmpdir("get");
    // L0 newest file has k=5; older L0 file has k=3; L1 has k=1.
    let f_new = build_table(&dir, 30, 0, &[(b"k", 5, ValueKind::Put, b"new")]);
    let f_old = build_table(&dir, 20, 0, &[(b"k", 3, ValueKind::Put, b"mid")]);
    let f_l1 = build_table(&dir, 10, 1, &[(b"k", 1, ValueKind::Put, b"old")]);
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    set.log_and_apply(VersionEdit {
        new_files: vec![f_new, f_old, f_l1],
        ..Default::default()
    })
    .unwrap();
    let v = set.current();
    let cache = cache_for(&dir);
    // Latest overall.
    let (ts, _, val) = v.get(&cache, b"k", u64::MAX >> 1).unwrap().unwrap();
    assert_eq!((ts, val.as_slice()), (5, &b"new"[..]));
    // Snapshot reads walk down the levels.
    let (ts, _, val) = v.get(&cache, b"k", 4).unwrap().unwrap();
    assert_eq!((ts, val.as_slice()), (3, &b"mid"[..]));
    let (ts, _, val) = v.get(&cache, b"k", 2).unwrap().unwrap();
    assert_eq!((ts, val.as_slice()), (1, &b"old"[..]));
    assert!(v.get(&cache, b"k", 0).unwrap().is_none());
    assert!(v.get(&cache, b"zz", 100).unwrap().is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deleted_files_leave_the_version_and_disk() {
    let dir = tmpdir("delete");
    let f1 = build_table(&dir, 7, 0, &[(b"x", 1, ValueKind::Put, b"v")]);
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    set.log_and_apply(VersionEdit {
        new_files: vec![f1],
        ..Default::default()
    })
    .unwrap();
    set.log_and_apply(VersionEdit {
        deleted_files: vec![(0, 7)],
        ..Default::default()
    })
    .unwrap();
    assert_eq!(set.current().num_files(0), 0);
    let cache = cache_for(&dir);
    let deleted = set.delete_obsolete_files(&cache, &HashSet::new()).unwrap();
    assert_eq!(deleted, vec![7]);
    assert!(!filenames::table_path(&dir, 7).exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn obsolete_deletion_spares_files_held_by_live_versions() {
    let dir = tmpdir("held");
    let f1 = build_table(&dir, 7, 0, &[(b"x", 1, ValueKind::Put, b"v")]);
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    let v_with_file = set
        .log_and_apply(VersionEdit {
            new_files: vec![f1],
            ..Default::default()
        })
        .unwrap();
    set.log_and_apply(VersionEdit {
        deleted_files: vec![(0, 7)],
        ..Default::default()
    })
    .unwrap();
    let cache = cache_for(&dir);
    // A reader still holds the old version: the file must survive.
    let deleted = set.delete_obsolete_files(&cache, &HashSet::new()).unwrap();
    assert!(deleted.is_empty());
    assert!(filenames::table_path(&dir, 7).exists());
    drop(v_with_file);
    let deleted = set.delete_obsolete_files(&cache, &HashSet::new()).unwrap();
    assert_eq!(deleted, vec![7]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_damage_surfaces_as_typed_kind() {
    use clsm_util::error::ErrorKind;

    // Binary garbage in CURRENT: the open fails with ManifestCorrupt
    // naming the CURRENT file, not a bare Corruption string.
    let dir = tmpdir("bad-current");
    {
        let (_set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    }
    std::fs::write(crate::filenames::current_path(&dir), [0xff, 0xfe, 0x00]).unwrap();
    let err = VersionSet::open(Arc::new(RealEnv), &dir).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ManifestCorrupt, "{err}");
    assert!(err.to_string().contains("CURRENT"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();

    // An undecodable edit record inside the manifest (intact framing,
    // garbage payload) is retagged with the manifest path.
    let dir = tmpdir("bad-edit-record");
    {
        let (_set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    }
    let current = std::fs::read_to_string(crate::filenames::current_path(&dir)).unwrap();
    let manifest_path = dir.join(current.trim());
    // Hand-frame a Full record (crc over type+payload, masked) and append
    // it; the fresh manifest is far smaller than a block, so the framing
    // is position-independent here.
    let payload = [0xee_u8; 9];
    let ty = crate::wal::RecordType::Full as u8;
    let mut crc_val = clsm_util::crc::extend(0, &[ty]);
    crc_val = clsm_util::crc::extend(crc_val, &payload);
    let mut framed = Vec::new();
    framed.extend_from_slice(&clsm_util::crc::mask(crc_val).to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    framed.push(ty);
    framed.extend_from_slice(&payload);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .unwrap();
        f.write_all(&framed).unwrap();
    }
    let err = VersionSet::open(Arc::new(RealEnv), &dir).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ManifestCorrupt, "{err}");
    assert!(err.to_string().contains("MANIFEST"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_edit_is_rejected() {
    let dir = tmpdir("bad-edit");
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    let r = set.log_and_apply(VersionEdit {
        deleted_files: vec![(0, 999)],
        ..Default::default()
    });
    assert!(r.is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn overlap_queries() {
    let dir = tmpdir("overlap");
    let f1 = build_table(
        &dir,
        1,
        1,
        &[
            (b"b", 1, ValueKind::Put, b""),
            (b"d", 2, ValueKind::Put, b""),
        ],
    );
    let f2 = build_table(
        &dir,
        2,
        1,
        &[
            (b"f", 3, ValueKind::Put, b""),
            (b"h", 4, ValueKind::Put, b""),
        ],
    );
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    set.log_and_apply(VersionEdit {
        new_files: vec![f1, f2],
        ..Default::default()
    })
    .unwrap();
    let v = set.current();
    let hit = |lo: &[u8], hi: &[u8]| {
        v.overlapping_files(1, lo, hi)
            .iter()
            .map(|f| f.number)
            .collect::<Vec<_>>()
    };
    assert_eq!(hit(b"a", b"a"), Vec::<u64>::new());
    assert_eq!(hit(b"a", b"b"), vec![1]);
    assert_eq!(hit(b"c", b"g"), vec![1, 2]);
    assert_eq!(hit(b"e", b"e"), Vec::<u64>::new());
    assert_eq!(hit(b"h", b"z"), vec![2]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn level_iter_concatenates_files() {
    let dir = tmpdir("leveliter");
    let f1 = build_table(
        &dir,
        1,
        1,
        &[
            (b"a", 1, ValueKind::Put, b"va"),
            (b"c", 2, ValueKind::Put, b"vc"),
        ],
    );
    let f2 = build_table(
        &dir,
        2,
        1,
        &[
            (b"m", 3, ValueKind::Put, b"vm"),
            (b"z", 4, ValueKind::Delete, b""),
        ],
    );
    let (mut set, _) = VersionSet::open(Arc::new(RealEnv), &dir).unwrap();
    set.log_and_apply(VersionEdit {
        new_files: vec![f1, f2],
        ..Default::default()
    })
    .unwrap();
    let v = set.current();
    let cache = cache_for(&dir);
    let mut it = LevelIter::new(cache, v.levels[1].clone());
    it.seek_to_first();
    let mut got = Vec::new();
    while it.valid() {
        got.push((it.user_key().to_vec(), it.ts(), it.kind()));
        it.next();
    }
    it.status().unwrap();
    assert_eq!(
        got,
        vec![
            (b"a".to_vec(), 1, ValueKind::Put),
            (b"c".to_vec(), 2, ValueKind::Put),
            (b"m".to_vec(), 3, ValueKind::Put),
            (b"z".to_vec(), 4, ValueKind::Delete),
        ]
    );
    // Seeks across file boundaries.
    it.seek(b"d", u64::MAX >> 1);
    assert_eq!(it.user_key(), b"m");
    it.seek(b"m", 3);
    assert_eq!((it.user_key(), it.ts()), (&b"m"[..], 3));
    it.seek(b"m", 2);
    assert_eq!(it.user_key(), b"z");
    it.seek(b"zz", 1);
    assert!(!it.valid());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_claims_are_exclusive_and_released() {
    let f = Arc::new(FileMeta {
        number: 1,
        file_size: 0,
        smallest: vec![0; 8],
        largest: vec![0; 8],
        being_compacted: AtomicBool::new(false),
    });
    let g = Arc::new(FileMeta {
        number: 2,
        file_size: 0,
        smallest: vec![0; 8],
        largest: vec![0; 8],
        being_compacted: AtomicBool::new(false),
    });
    let claim = CompactionClaim::try_claim(vec![f.clone(), g.clone()]).unwrap();
    // Second claim on any overlapping file fails and rolls back.
    assert!(CompactionClaim::try_claim(vec![g.clone()]).is_none());
    drop(claim);
    // Released: claimable again.
    assert!(CompactionClaim::try_claim(vec![f, g]).is_some());
}
