//! Store-directory file naming, LevelDB style.

use std::path::{Path, PathBuf};

/// The kinds of files living in a store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Write-ahead log (`NNNNNN.log`).
    Wal(u64),
    /// Sorted string table (`NNNNNN.sst`).
    Table(u64),
    /// Version-edit manifest (`MANIFEST-NNNNNN`).
    Manifest(u64),
    /// Pointer to the live manifest (`CURRENT`).
    Current,
    /// Temporary file used for atomic renames (`NNNNNN.tmp`).
    Temp(u64),
}

/// Path of the WAL with the given number.
pub fn wal_path(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.log"))
}

/// Path of the table with the given number.
pub fn table_path(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.sst"))
}

/// Path of the manifest with the given number.
pub fn manifest_path(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("MANIFEST-{number:06}"))
}

/// Path of the CURRENT pointer file.
pub fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Path of a temporary file with the given number.
pub fn temp_path(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.tmp"))
}

/// Parses a directory-entry name into a [`FileKind`].
pub fn parse_file_name(name: &str) -> Option<FileKind> {
    if name == "CURRENT" {
        return Some(FileKind::Current);
    }
    if let Some(rest) = name.strip_prefix("MANIFEST-") {
        return rest.parse().ok().map(FileKind::Manifest);
    }
    if let Some(stem) = name.strip_suffix(".log") {
        return stem.parse().ok().map(FileKind::Wal);
    }
    if let Some(stem) = name.strip_suffix(".sst") {
        return stem.parse().ok().map(FileKind::Table);
    }
    if let Some(stem) = name.strip_suffix(".tmp") {
        return stem.parse().ok().map(FileKind::Temp);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_and_parsing_roundtrip() {
        let dir = Path::new("/db");
        assert_eq!(wal_path(dir, 7), Path::new("/db/000007.log"));
        assert_eq!(table_path(dir, 123456), Path::new("/db/123456.sst"));
        assert_eq!(manifest_path(dir, 1), Path::new("/db/MANIFEST-000001"));
        assert_eq!(current_path(dir), Path::new("/db/CURRENT"));

        assert_eq!(parse_file_name("000007.log"), Some(FileKind::Wal(7)));
        assert_eq!(parse_file_name("123456.sst"), Some(FileKind::Table(123456)));
        assert_eq!(
            parse_file_name("MANIFEST-000001"),
            Some(FileKind::Manifest(1))
        );
        assert_eq!(parse_file_name("CURRENT"), Some(FileKind::Current));
        assert_eq!(parse_file_name("000009.tmp"), Some(FileKind::Temp(9)));
    }

    #[test]
    fn parse_rejects_foreign_names() {
        assert_eq!(parse_file_name("LOCK"), None);
        assert_eq!(parse_file_name("foo.sst2"), None);
        assert_eq!(parse_file_name("x.log"), None);
        assert_eq!(parse_file_name("MANIFEST-"), None);
        assert_eq!(parse_file_name(""), None);
    }

    #[test]
    fn large_numbers_still_parse() {
        // Numbers wider than the 6-digit padding must roundtrip.
        let name = format!("{:06}.sst", 10_000_000u64);
        assert_eq!(parse_file_name(&name), Some(FileKind::Table(10_000_000)));
    }
}
