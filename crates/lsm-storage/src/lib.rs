//! LSM disk substrate: WAL, SSTables, leveled versions, compaction and
//! recovery.
//!
//! This crate is the from-scratch equivalent of the LevelDB modules the
//! cLSM paper inherits ("disk component, cache, merge function, etc.",
//! §4). It deliberately contains **no concurrency-control policy** for
//! client operations — that is the contribution of the `clsm` crate and
//! of the baselines; this substrate only guarantees that its own
//! internals (version installation, table building, the block cache)
//! are thread-safe so that different concurrency schemes can share it.
//!
//! Layout of a store directory:
//!
//! ```text
//! CURRENT            → name of the live manifest
//! MANIFEST-000001    → log of version edits
//! 000003.log         → write-ahead log of the active memtable
//! 000005.sst         → sorted string tables, organised in levels
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod compaction;
pub mod filenames;
pub mod format;
pub mod iter;
pub mod sstable;
pub mod store;
pub mod version;
pub mod wal;

pub use format::{InternalKey, ValueKind, WriteRecord};
pub use iter::{InternalIterator, MergingIterator};
pub use store::{Store, StoreOptions, WalSyncTicket};

/// Number of on-disk levels (L0 .. L6), as in LevelDB.
pub const NUM_LEVELS: usize = 7;
