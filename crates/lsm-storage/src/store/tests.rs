//! End-to-end tests of the disk substrate: logging, recovery, flush,
//! compaction, and snapshot-preservation.

use super::*;
use crate::iter::{MergingIterator, VecIterator};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "store-{}-{}-{}",
        std::process::id(),
        name,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_opts() -> StoreOptions {
    StoreOptions {
        table_file_size: 4096,
        base_level_bytes: 16 * 1024,
        level_multiplier: 4,
        l0_compaction_trigger: 2,
        block_cache_bytes: 1 << 20,
        ..Default::default()
    }
}

fn put_entries(range: std::ops::Range<u64>) -> Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)> {
    // One put per key; internal order == key order here because each
    // key has a single version.
    range
        .map(|i| {
            (
                format!("key{i:06}").into_bytes(),
                i + 1,
                ValueKind::Put,
                format!("value-{i}").into_bytes(),
            )
        })
        .collect()
}

#[test]
fn open_empty_store() {
    let dir = tmpdir("empty");
    let (store, rec) = Store::open(&dir, small_opts()).unwrap();
    assert!(rec.records.is_empty());
    assert_eq!(rec.last_ts, 0);
    assert!(store.get(b"nope", u64::MAX >> 1).unwrap().is_none());
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn logged_writes_recover_sorted_and_deduped() {
    let dir = tmpdir("recover");
    {
        let (store, _) = Store::open(&dir, small_opts()).unwrap();
        // Log out of timestamp order, with one duplicate.
        store
            .log(
                &[WriteRecord::put(5, b"b".to_vec(), b"v5".to_vec())],
                SyncMode::Async,
            )
            .unwrap();
        store
            .log(
                &[
                    WriteRecord::put(2, b"a".to_vec(), b"v2".to_vec()),
                    WriteRecord::delete(7, b"c".to_vec()),
                ],
                SyncMode::Async,
            )
            .unwrap();
        store
            .log(
                &[WriteRecord::put(5, b"b".to_vec(), b"v5".to_vec())],
                SyncMode::Sync,
            )
            .unwrap();
    }
    let (_store, rec) = Store::open(&dir, small_opts()).unwrap();
    let ts_seq: Vec<u64> = rec.records.iter().map(|r| r.ts).collect();
    assert_eq!(ts_seq, vec![2, 5, 7]);
    assert_eq!(rec.last_ts, 7);
    assert_eq!(rec.records[2].kind, ValueKind::Delete);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flush_makes_data_durable_and_retires_wals() {
    let dir = tmpdir("flush");
    {
        let (store, _) = Store::open(&dir, small_opts()).unwrap();
        let records: Vec<WriteRecord> = (0..100u64)
            .map(|i| WriteRecord::put(i + 1, format!("key{i:06}").into_bytes(), b"v".to_vec()))
            .collect();
        store.log(&records, SyncMode::Sync).unwrap();
        // Rotate: the data above predates the new WAL.
        let new_wal = store.rotate_wal().unwrap();
        let mut it = VecIterator::new(put_entries(0..100));
        store.flush_memtable(&mut it, 100, 100, new_wal).unwrap();
        assert_eq!(store.level_file_counts()[0], 1);
        // Reads hit the table.
        let (ts, kind, v) = store.get(b"key000042", u64::MAX >> 1).unwrap().unwrap();
        assert_eq!(
            (ts, kind, v.as_slice()),
            (43, ValueKind::Put, &b"value-42"[..])
        );
    }
    // After reopen nothing needs replay (WALs retired), data persists.
    let (store, rec) = Store::open(&dir, small_opts()).unwrap();
    assert!(rec.records.is_empty(), "flushed data must not replay");
    assert_eq!(rec.last_ts, 100);
    assert!(store.get(b"key000099", u64::MAX >> 1).unwrap().is_some());
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_reads_survive_flush() {
    let dir = tmpdir("snapread");
    let (store, _) = Store::open(&dir, small_opts()).unwrap();
    // Two versions of one key; watermark 1 keeps both.
    let entries = vec![
        (b"k".to_vec(), 9, ValueKind::Put, b"new".to_vec()),
        (b"k".to_vec(), 1, ValueKind::Put, b"old".to_vec()),
    ];
    let mut it = VecIterator::new(entries);
    let wal = store.rotate_wal().unwrap();
    store.flush_memtable(&mut it, 1, 9, wal).unwrap();
    assert_eq!(store.get(b"k", 100).unwrap().unwrap().2, b"new".to_vec());
    assert_eq!(store.get(b"k", 5).unwrap().unwrap().2, b"old".to_vec());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_preserves_all_data() {
    let dir = tmpdir("compact");
    let (store, _) = Store::open(&dir, small_opts()).unwrap();
    let mut ts = 0u64;
    // Ten flushes of 200 keys each (two overlapping key ranges), with
    // compactions in between.
    for round in 0..10u64 {
        let mut entries = Vec::new();
        for i in 0..200u64 {
            let key = (round % 2) * 100 + i; // overlapping ranges
            ts += 1;
            entries.push((
                format!("key{key:06}").into_bytes(),
                ts,
                ValueKind::Put,
                format!("r{round}-{key}").into_bytes(),
            ));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let wal = store.rotate_wal().unwrap();
        let mut it = VecIterator::new(entries);
        store.flush_memtable(&mut it, ts, ts, wal).unwrap();
        while store.needs_compaction() {
            if !store.maybe_compact(ts).unwrap() {
                break;
            }
        }
    }
    // Data must be fully intact: the last writer of each key wins.
    for key in 0..300u64 {
        let k = format!("key{key:06}");
        let got = store.get(k.as_bytes(), u64::MAX >> 1).unwrap();
        assert!(got.is_some(), "missing {k}");
    }
    // Compactions actually moved data below L0.
    let counts = store.level_file_counts();
    assert!(counts[1..].iter().sum::<usize>() > 0, "levels: {counts:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_respects_snapshot_watermark() {
    let dir = tmpdir("watermark");
    let (store, _) = Store::open(&dir, small_opts()).unwrap();
    let mut ts = 0u64;
    // Write 5 versions of the same key across 5 flushes.
    for v in 0..5u64 {
        ts += 1;
        let entries = vec![(
            b"hot".to_vec(),
            ts,
            ValueKind::Put,
            format!("v{v}").into_bytes(),
        )];
        let wal = store.rotate_wal().unwrap();
        let mut it = VecIterator::new(entries);
        store.flush_memtable(&mut it, 2, ts, wal).unwrap(); // snapshot at ts=2 held
        while store.maybe_compact(2).unwrap() {}
    }
    // The snapshot at ts=2 must still read version 2.
    let got = store.get(b"hot", 2).unwrap().unwrap();
    assert_eq!(got.2, b"v1".to_vec());
    // Latest wins at the top.
    assert_eq!(store.get(b"hot", 100).unwrap().unwrap().2, b"v4".to_vec());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deletes_disappear_after_bottom_compaction() {
    let dir = tmpdir("tombstone");
    let mut opts = small_opts();
    opts.num_levels = 2; // L0 → L1 (bottom) directly
    let (store, _) = Store::open(&dir, opts).unwrap();
    // Put then delete, flush both, compact to bottom with watermark
    // beyond both.
    let wal = store.rotate_wal().unwrap();
    let mut it = VecIterator::new(vec![(b"k".to_vec(), 1, ValueKind::Put, b"v".to_vec())]);
    store.flush_memtable(&mut it, 10, 1, wal).unwrap();
    let wal = store.rotate_wal().unwrap();
    let mut it = VecIterator::new(vec![(b"k".to_vec(), 2, ValueKind::Delete, Vec::new())]);
    store.flush_memtable(&mut it, 10, 2, wal).unwrap();
    while store.maybe_compact(10).unwrap() {}
    // The key is gone and so is its tombstone.
    assert!(store.get(b"k", 100).unwrap().is_none());
    let mut total_entries = 0u64;
    for level_files in store.level_file_counts() {
        total_entries += level_files as u64;
    }
    // Everything compacted away: at most an empty set of files remains.
    let _ = total_entries;
    let merged = store.iterators().unwrap();
    let mut m = MergingIterator::new(merged);
    m.seek_to_first();
    assert!(!m.valid(), "tombstone or value leaked");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn iterators_merge_levels_in_order() {
    let dir = tmpdir("merge-iter");
    let (store, _) = Store::open(&dir, small_opts()).unwrap();
    let mut ts = 0u64;
    for _round in 0..4u64 {
        let mut entries = Vec::new();
        for i in 0..50u64 {
            ts += 1;
            entries.push((
                format!("key{:06}", i * 7 % 100).into_bytes(),
                ts,
                ValueKind::Put,
                b"v".to_vec(),
            ));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let wal = store.rotate_wal().unwrap();
        let mut it = VecIterator::new(entries);
        store.flush_memtable(&mut it, ts, ts, wal).unwrap();
    }
    while store.maybe_compact(ts).unwrap() {}
    let mut m = MergingIterator::new(store.iterators().unwrap());
    m.seek_to_first();
    let mut last: Option<(Vec<u8>, u64)> = None;
    let mut count = 0;
    while m.valid() {
        if let Some((lk, lts)) = &last {
            let ord = lk.as_slice().cmp(m.user_key());
            assert!(
                ord == std::cmp::Ordering::Less
                    || (ord == std::cmp::Ordering::Equal && m.ts() < *lts),
                "order violated"
            );
        }
        last = Some((m.user_key().to_vec(), m.ts()));
        count += 1;
        m.next();
    }
    assert!(count > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
