//! WAL reader with checksum validation and crash-tail detection.

use std::path::PathBuf;

use clsm_util::crc;
use clsm_util::env::RandomAccessFile;
use clsm_util::error::{Error, Result};

use super::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Reads records back from a log file.
///
/// Damage at the tail of the log (torn writes after a crash) stops
/// replay at the last intact record and is reported as
/// [`Error::WalTruncated`] with the byte offset where the damage
/// begins, so recovery can distinguish the *expected* torn tail of
/// asynchronous logging ("a handful of writes may be lost due to a
/// crash", §4) from corruption in data that was supposed to be
/// durable. Corruption is never silently returned as data: every
/// fragment is CRC-checked.
pub struct LogReader {
    file: Box<dyn RandomAccessFile>,
    /// Path used in [`Error::WalTruncated`]; may be empty in tests.
    path: PathBuf,
    /// Current block, refilled BLOCK_SIZE at a time.
    buffer: Vec<u8>,
    /// Read offset within `buffer`.
    pos: usize,
    /// Absolute file offset of `buffer[0]`.
    block_start: u64,
    /// Absolute file offset the next refill reads from.
    next_offset: u64,
    /// True once EOF was reached while refilling.
    eof: bool,
    /// Offset of the header of an in-progress (FIRST seen, LAST
    /// pending) record, for torn-tail reporting.
    partial_start: Option<u64>,
    /// Set once damage was reported; further reads return `None`.
    failed: bool,
}

impl std::fmt::Debug for LogReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogReader")
            .field("path", &self.path)
            .field("offset", &(self.block_start + self.pos as u64))
            .finish()
    }
}

impl LogReader {
    /// Wraps an open log file positioned at the start.
    pub fn new(file: Box<dyn RandomAccessFile>) -> Self {
        Self::with_path(file, PathBuf::new())
    }

    /// Like [`LogReader::new`], with a path for error reporting.
    pub fn with_path(file: Box<dyn RandomAccessFile>, path: impl Into<PathBuf>) -> Self {
        LogReader {
            file,
            path: path.into(),
            buffer: Vec::new(),
            pos: 0,
            block_start: 0,
            next_offset: 0,
            eof: false,
            partial_start: None,
            failed: false,
        }
    }

    /// Reads the next full record, or `None` at clean end-of-log.
    ///
    /// A fragment with a bad checksum, bad type, or impossible length —
    /// or a record that begins but never completes — ends the log with
    /// [`Error::WalTruncated`]; replay keeps everything returned before
    /// the error. After the error, further reads return `None`.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let Some((ty, payload, frag_start)) = self.read_fragment()? else {
                if let Some(start) = self.partial_start.take() {
                    // FIRST without LAST at end-of-log: the record was
                    // torn mid-write; its bytes end the valid prefix.
                    return Err(self.fail(start));
                }
                return Ok(None);
            };
            match ty {
                RecordType::Full => {
                    // FIRST followed by FULL: the earlier prefix is a
                    // torn record; the FULL one is still intact.
                    self.partial_start = None;
                    return Ok(Some(payload));
                }
                RecordType::First => {
                    self.partial_start = Some(frag_start);
                    assembled = Some(payload);
                }
                RecordType::Middle => match &mut assembled {
                    Some(buf) => buf.extend_from_slice(&payload),
                    // MIDDLE without FIRST: skip (torn head).
                    None => continue,
                },
                RecordType::Last => match assembled.take() {
                    Some(mut buf) => {
                        self.partial_start = None;
                        buf.extend_from_slice(&payload);
                        return Ok(Some(buf));
                    }
                    None => continue,
                },
            }
        }
    }

    /// Marks the log as damaged at `offset` and builds the error.
    fn fail(&mut self, offset: u64) -> Error {
        self.failed = true;
        self.eof = true;
        self.pos = self.buffer.len();
        self.partial_start = None;
        Error::wal_truncated(self.path.clone(), offset)
    }

    /// Reads the next fragment (with its header's absolute offset), or
    /// `None` at end-of-log.
    fn read_fragment(&mut self) -> Result<Option<(RecordType, Vec<u8>, u64)>> {
        loop {
            if self.failed {
                return Ok(None);
            }
            // Skip block-trailer padding.
            if self.buffer.len() - self.pos < HEADER_SIZE {
                let tail_offset = self.block_start + self.pos as u64;
                let tail_damaged = self.buffer[self.pos..].iter().any(|b| *b != 0);
                if !self.refill()? {
                    if tail_damaged {
                        // The file ends in a partial, non-padding
                        // header: a write torn mid-sector.
                        return Err(self.fail(tail_offset));
                    }
                    return Ok(None);
                }
                continue;
            }
            let frag_start = self.block_start + self.pos as u64;
            let header = &self.buffer[self.pos..self.pos + HEADER_SIZE];
            let expected_crc =
                crc::unmask(u32::from_le_bytes(header[..4].try_into().expect("4 bytes")));
            let len = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) as usize;
            let ty_byte = header[6];

            if ty_byte == 0 && len == 0 && expected_crc == crc::unmask(0) {
                // Zero padding written by the writer at a block tail.
                self.pos = self.buffer.len();
                continue;
            }
            let Some(ty) = RecordType::from_u8(ty_byte) else {
                return Err(self.fail(frag_start));
            };
            if self.pos + HEADER_SIZE + len > self.buffer.len() {
                // Length runs past the block: torn tail.
                return Err(self.fail(frag_start));
            }
            let payload = &self.buffer[self.pos + HEADER_SIZE..self.pos + HEADER_SIZE + len];
            let mut actual = crc::extend(0, &[ty_byte]);
            actual = crc::extend(actual, payload);
            if actual != expected_crc {
                return Err(self.fail(frag_start));
            }
            let out = payload.to_vec();
            self.pos += HEADER_SIZE + len;
            return Ok(Some((ty, out, frag_start)));
        }
    }

    /// Loads the next block; returns `false` at EOF.
    fn refill(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        self.buffer.clear();
        self.pos = 0;
        self.block_start = self.next_offset;
        let mut chunk = vec![0u8; BLOCK_SIZE];
        let mut filled = 0;
        while filled < BLOCK_SIZE {
            let n = self
                .file
                .read_at(self.next_offset + filled as u64, &mut chunk[filled..])?;
            if n == 0 {
                self.eof = true;
                break;
            }
            filled += n;
        }
        self.next_offset += filled as u64;
        chunk.truncate(filled);
        self.buffer = chunk;
        Ok(!self.buffer.is_empty())
    }
}
