//! WAL reader with checksum validation and crash-tail tolerance.

use std::fs::File;
use std::io::Read;

use clsm_util::crc;
use clsm_util::error::Result;

use super::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Reads records back from a log file.
///
/// Damage at the tail of the log (torn writes after a crash) is treated
/// as end-of-log, which is the contract asynchronous logging provides
/// ("a handful of writes may be lost due to a crash", §4). Corruption
/// is never silently returned as data: every fragment is CRC-checked.
#[derive(Debug)]
pub struct LogReader {
    file: File,
    /// Current block, refilled BLOCK_SIZE at a time.
    buffer: Vec<u8>,
    /// Read offset within `buffer`.
    pos: usize,
    /// True once EOF was reached while refilling.
    eof: bool,
}

impl LogReader {
    /// Wraps an open log file positioned at the start.
    pub fn new(file: File) -> Self {
        LogReader {
            file,
            buffer: Vec::new(),
            pos: 0,
            eof: false,
        }
    }

    /// Reads the next full record, or `None` at end-of-log.
    ///
    /// A fragment with a bad checksum, bad type, or impossible length
    /// ends the log: replay stops at the last intact record.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let Some((ty, payload)) = self.read_fragment()? else {
                // A dangling FIRST/MIDDLE prefix without LAST is a torn
                // tail; drop it.
                return Ok(None);
            };
            match ty {
                RecordType::Full => {
                    if assembled.is_some() {
                        // FIRST followed by FULL: torn record; the FULL
                        // one is still intact — return it.
                        return Ok(Some(payload));
                    }
                    return Ok(Some(payload));
                }
                RecordType::First => {
                    assembled = Some(payload);
                }
                RecordType::Middle => match &mut assembled {
                    Some(buf) => buf.extend_from_slice(&payload),
                    // MIDDLE without FIRST: skip (torn head).
                    None => continue,
                },
                RecordType::Last => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&payload);
                        return Ok(Some(buf));
                    }
                    None => continue,
                },
            }
        }
    }

    /// Reads the next fragment, or `None` at end-of-log / tail damage.
    fn read_fragment(&mut self) -> Result<Option<(RecordType, Vec<u8>)>> {
        loop {
            // Skip block-trailer padding.
            if self.buffer.len() - self.pos < HEADER_SIZE {
                if !self.refill()? {
                    return Ok(None);
                }
                continue;
            }
            let header = &self.buffer[self.pos..self.pos + HEADER_SIZE];
            let expected_crc =
                crc::unmask(u32::from_le_bytes(header[..4].try_into().expect("4 bytes")));
            let len = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) as usize;
            let ty_byte = header[6];

            if ty_byte == 0 && len == 0 && expected_crc == crc::unmask(0) {
                // Zero padding written by the writer at a block tail.
                self.pos = self.buffer.len();
                continue;
            }
            let Some(ty) = RecordType::from_u8(ty_byte) else {
                return Ok(None);
            };
            if self.pos + HEADER_SIZE + len > self.buffer.len() {
                // Length runs past the block: torn tail.
                return Ok(None);
            }
            let payload = &self.buffer[self.pos + HEADER_SIZE..self.pos + HEADER_SIZE + len];
            let mut actual = crc::extend(0, &[ty_byte]);
            actual = crc::extend(actual, payload);
            if actual != expected_crc {
                return Ok(None);
            }
            let out = payload.to_vec();
            self.pos += HEADER_SIZE + len;
            return Ok(Some((ty, out)));
        }
    }

    /// Loads the next block; returns `false` at EOF.
    fn refill(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        self.buffer.clear();
        self.pos = 0;
        let mut chunk = vec![0u8; BLOCK_SIZE];
        let mut filled = 0;
        while filled < BLOCK_SIZE {
            let n = self.file.read(&mut chunk[filled..])?;
            if n == 0 {
                self.eof = true;
                break;
            }
            filled += n;
        }
        chunk.truncate(filled);
        self.buffer = chunk;
        Ok(!self.buffer.is_empty())
    }
}
