//! The cLSM logging queue: non-blocking WAL appends via a dedicated
//! logger thread.
//!
//! The paper implements the logging queue with a non-blocking queue
//! from libcds (§4); we use the MPMC channel from `clsm_util::channel`
//! with a single consumer. In asynchronous
//! mode (the LevelDB default) a put enqueues its serialized record and
//! returns immediately — "a write only queues the request for logging
//! and a handful of writes may be lost due to a crash". In synchronous
//! mode the caller waits for a group-committed fsync.
//!
//! Because cLSM allows concurrent writers, records may be enqueued (and
//! thus written) out of timestamp order; recovery sorts by timestamp
//! (§4: "the correct order is easily restored upon recovery").

use std::sync::Arc;
use std::thread::JoinHandle;

use clsm_util::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use clsm_util::error::{Error, Result};
use clsm_util::trace::{now_ns, TraceId};

use super::LogWriter;

/// Flight-recorder span on the logger thread: one group-committed
/// fsync covering every waiter that joined the group (argument =
/// number of acks released).
static T_GROUP_COMMIT: TraceId = TraceId::new("storage.wal.group_commit");

/// Durability mode for an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Enqueue and return; data reaches the OS lazily.
    Async,
    /// Wait until the record is fsync'd (group-committed).
    Sync,
}

/// A durability acknowledgement: the value is the logger thread's
/// [`now_ns`] reading taken immediately after the covering fsync
/// returned — the instant the data actually became durable, before any
/// cross-thread wake-up latency. Write-path attribution uses it to
/// separate fsync time from ack/wake overhead.
type DurableAck = Sender<Result<u64>>;

enum Msg {
    Append {
        payload: Vec<u8>,
        ack: Option<DurableAck>,
    },
    Rotate {
        writer: Box<LogWriter>,
        ack: DurableAck,
    },
    Flush {
        ack: DurableAck,
    },
}

/// Handle to the logger thread.
///
/// Cloneable and shareable; dropping the last handle shuts the logger
/// down after draining the queue.
pub struct LogQueue {
    tx: Sender<Msg>,
    shared: Arc<Shared>,
}

/// Error slot shared with the logger thread.
type ErrorSlot = Mutex<Option<Error>>;

struct Shared {
    /// First I/O error hit by the logger; poisons subsequent syncs.
    error: Arc<ErrorSlot>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl LogQueue {
    /// Starts a logger thread over `writer`.
    pub fn start(writer: LogWriter) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let error: Arc<ErrorSlot> = Arc::new(Mutex::new(None));
        let error2 = Arc::clone(&error);
        let handle = std::thread::Builder::new()
            .name("clsm-logger".to_string())
            .spawn(move || logger_loop(writer, rx, error2))
            .expect("spawn logger thread");
        let shared = Arc::new(Shared {
            error,
            handle: Mutex::new(Some(handle)),
        });
        LogQueue { tx, shared }
    }

    /// Appends a serialized record.
    ///
    /// `Async` returns as soon as the record is enqueued; `Sync` blocks
    /// until the record (and everything before it) is durable.
    pub fn append(&self, payload: Vec<u8>, mode: SyncMode) -> Result<()> {
        match mode {
            SyncMode::Async => {
                self.tx
                    .send(Msg::Append { payload, ack: None })
                    .map_err(|_| Error::ShuttingDown)?;
                Ok(())
            }
            SyncMode::Sync => {
                let (ack_tx, ack_rx) = bounded(1);
                self.tx
                    .send(Msg::Append {
                        payload,
                        ack: Some(ack_tx),
                    })
                    .map_err(|_| Error::ShuttingDown)?;
                ack_rx
                    .recv()
                    .map_err(|_| Error::ShuttingDown)?
                    .map(|_durable_ns| ())
            }
        }
    }

    /// Switches the logger to a new file. All previously enqueued
    /// records land in the old file, which is flushed, synced, and
    /// closed before the switch. Blocks until the rotation happened.
    pub fn rotate(&self, writer: LogWriter) -> Result<()> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Msg::Rotate {
                writer: Box::new(writer),
                ack: ack_tx,
            })
            .map_err(|_| Error::ShuttingDown)?;
        ack_rx
            .recv()
            .map_err(|_| Error::ShuttingDown)?
            .map(|_durable_ns| ())
    }

    /// Waits until everything enqueued so far is flushed and fsync'd.
    pub fn sync(&self) -> Result<()> {
        self.sync_timed().map(|_durable_ns| ())
    }

    /// Like [`sync`](Self::sync), but returns the logger thread's
    /// [`now_ns`] reading taken right after the covering fsync — the
    /// instant durability was reached, excluding the time it took to
    /// wake this caller.
    pub fn sync_timed(&self) -> Result<u64> {
        self.sync_begin()?.recv().map_err(|_| Error::ShuttingDown)?
    }

    /// First half of a split sync: enqueues the flush request and
    /// returns the acknowledgement channel without waiting on it.
    ///
    /// Receiving on the returned channel completes the sync (the value
    /// carries the durability instant, as in
    /// [`sync_timed`](Self::sync_timed)). This lets a caller start
    /// fsyncs on several independent logger threads and only then wait
    /// for all of them, overlapping the disk work.
    pub fn sync_begin(&self) -> Result<Receiver<Result<u64>>> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Msg::Flush { ack: ack_tx })
            .map_err(|_| Error::ShuttingDown)?;
        Ok(ack_rx)
    }

    /// The first I/O error encountered by the logger, if any.
    pub fn poisoned(&self) -> Option<Error> {
        self.shared.error.lock().clone()
    }

    /// Messages currently waiting for the logger thread — the logging
    /// queue's backlog. Sampled racily; a persistently non-zero depth
    /// means writers outpace the log device.
    pub fn depth(&self) -> usize {
        self.tx.len()
    }
}

impl Clone for LogQueue {
    fn clone(&self) -> Self {
        LogQueue {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for LogQueue {
    fn drop(&mut self) {
        // Only the last handle joins the thread.
        if Arc::strong_count(&self.shared) != 1 {
            return;
        }
        // Closing the channel ends the logger loop after a drain.
        let (tx, _rx) = unbounded();
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(handle) = self.shared.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for LogQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogQueue")
            .field("queued", &self.tx.len())
            .finish()
    }
}

fn logger_loop(mut writer: LogWriter, rx: Receiver<Msg>, error: Arc<ErrorSlot>) {
    let mut pending_acks: Vec<DurableAck> = Vec::new();
    let mut dirty = false;

    let fail = |error: &ErrorSlot, e: &Error| {
        let mut slot = error.lock();
        if slot.is_none() {
            *slot = Some(e.clone());
        }
    };

    loop {
        // Block for the next message, then opportunistically drain the
        // queue so one flush/fsync covers the whole group (group
        // commit).
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        let mut batch = vec![first];
        while let Ok(m) = rx.try_recv() {
            batch.push(m);
            if batch.len() >= 1024 {
                break;
            }
        }

        let mut need_sync = false;
        for msg in batch {
            match msg {
                Msg::Append { payload, ack } => {
                    if let Err(e) = writer.add_record(&payload) {
                        fail(&error, &e);
                    }
                    dirty = true;
                    if let Some(ack) = ack {
                        need_sync = true;
                        pending_acks.push(ack);
                    }
                }
                Msg::Flush { ack } => {
                    need_sync = true;
                    pending_acks.push(ack);
                }
                Msg::Rotate {
                    writer: new_writer,
                    ack,
                } => {
                    // Seal the old file; records already written to it
                    // are durable from here on, so their acks can fire.
                    let res = writer
                        .sync()
                        .inspect_err(|e| {
                            fail(&error, e);
                        })
                        .map(|()| now_ns());
                    for pending in pending_acks.drain(..) {
                        let _ = pending.send(res.clone());
                    }
                    writer = *new_writer;
                    dirty = false;
                    need_sync = false;
                    let _ = ack.send(res);
                }
            }
        }

        if need_sync {
            let _span = T_GROUP_COMMIT.span_with(pending_acks.len() as u64);
            let res = writer
                .sync()
                .inspect_err(|e| {
                    fail(&error, e);
                })
                .map(|()| now_ns());
            dirty = false;
            for ack in pending_acks.drain(..) {
                let _ = ack.send(res.clone());
            }
        } else if dirty && rx.is_empty() {
            // Queue drained: push buffered bytes to the OS so a process
            // crash (not machine crash) loses nothing.
            if let Err(e) = writer.flush() {
                fail(&error, &e);
            }
            dirty = false;
        }
    }
    // Channel closed: final flush.
    let _ = writer.sync();
    for ack in pending_acks.drain(..) {
        let _ = ack.send(Err(Error::ShuttingDown));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::LogReader;
    use std::path::PathBuf;

    fn temp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("logqueue-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("q.log")
    }

    fn read_all(path: &std::path::Path) -> Vec<Vec<u8>> {
        let mut reader = LogReader::new(Box::new(std::fs::File::open(path).unwrap()));
        let mut out = Vec::new();
        while let Some(r) = reader.read_record().unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn async_appends_become_durable_on_sync() {
        let path = temp_file("async");
        let q = LogQueue::start(LogWriter::new(Box::new(
            std::fs::File::create(&path).unwrap(),
        )));
        for i in 0..100u32 {
            q.append(i.to_le_bytes().to_vec(), SyncMode::Async).unwrap();
        }
        q.sync().unwrap();
        let records = read_all(&path);
        assert_eq!(records.len(), 100);
        assert_eq!(records[99], 99u32.to_le_bytes());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn sync_append_blocks_until_durable() {
        let path = temp_file("sync");
        let q = LogQueue::start(LogWriter::new(Box::new(
            std::fs::File::create(&path).unwrap(),
        )));
        q.append(b"hello".to_vec(), SyncMode::Sync).unwrap();
        // Already durable: visible without an extra sync.
        let records = read_all(&path);
        assert_eq!(records, vec![b"hello".to_vec()]);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn rotation_splits_files() {
        let path_a = temp_file("rot-a");
        let path_b = path_a.with_file_name("b.log");
        let q = LogQueue::start(LogWriter::new(Box::new(
            std::fs::File::create(&path_a).unwrap(),
        )));
        q.append(b"one".to_vec(), SyncMode::Async).unwrap();
        q.rotate(LogWriter::new(Box::new(
            std::fs::File::create(&path_b).unwrap(),
        )))
        .unwrap();
        q.append(b"two".to_vec(), SyncMode::Sync).unwrap();
        assert_eq!(read_all(&path_a), vec![b"one".to_vec()]);
        assert_eq!(read_all(&path_b), vec![b"two".to_vec()]);
        std::fs::remove_dir_all(path_a.parent().unwrap()).unwrap();
    }

    #[test]
    fn concurrent_appenders_all_land() {
        let path = temp_file("conc");
        let q = LogQueue::start(LogWriter::new(Box::new(
            std::fs::File::create(&path).unwrap(),
        )));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    q.append(vec![t, (i % 251) as u8], SyncMode::Async).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.sync().unwrap();
        assert_eq!(read_all(&path).len(), 2000);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn drop_drains_queue() {
        let path = temp_file("drop");
        {
            let q = LogQueue::start(LogWriter::new(Box::new(
                std::fs::File::create(&path).unwrap(),
            )));
            for i in 0..50u32 {
                q.append(i.to_le_bytes().to_vec(), SyncMode::Async).unwrap();
            }
        } // dropped here: must drain before the thread exits
        assert_eq!(read_all(&path).len(), 50);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
