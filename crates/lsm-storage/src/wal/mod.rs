//! Write-ahead log: record-oriented block format, writer, reader, and
//! the non-blocking logging queue of cLSM.
//!
//! LevelDB's log format is reused: the file is a sequence of 32 KiB
//! blocks; each record fragment carries a 7-byte header
//! `[crc32c: 4][length: 2][type: 1]` and records spanning blocks are
//! split into FIRST/MIDDLE/LAST fragments.
//!
//! cLSM's addition (§4) is the *logging queue*: writers enqueue their
//! serialized records on a non-blocking queue and a dedicated logger
//! thread appends them to the file, so a put never waits for file I/O
//! in asynchronous mode (the LevelDB default the paper assumes).

mod queue;
mod reader;
mod writer;

pub use queue::{LogQueue, SyncMode};
pub use reader::LogReader;
pub use writer::LogWriter;

/// Size of a log block.
pub const BLOCK_SIZE: usize = 32 * 1024;

/// Size of a fragment header: crc (4) + length (2) + type (1).
pub const HEADER_SIZE: usize = 7;

/// Fragment types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordType {
    /// A whole record in one fragment.
    Full = 1,
    /// First fragment of a spanning record.
    First = 2,
    /// Interior fragment.
    Middle = 3,
    /// Final fragment.
    Last = 4,
}

impl RecordType {
    pub(crate) fn from_u8(v: u8) -> Option<RecordType> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn roundtrip(records: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", rand_suffix()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = LogWriter::new(Box::new(file));
            for r in records {
                w.add_record(r).unwrap();
            }
            w.flush().unwrap();
        }
        let file = std::fs::File::open(&path).unwrap();
        let mut reader = LogReader::new(Box::new(file));
        let mut out = Vec::new();
        while let Some(rec) = reader.read_record().unwrap() {
            out.push(rec);
        }
        std::fs::remove_dir_all(&dir).unwrap();
        out
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64
            ^ (std::process::id() as u64) << 32
    }

    #[test]
    fn empty_log() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn small_records_roundtrip() {
        let records = vec![b"a".to_vec(), b"".to_vec(), b"hello world".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn records_spanning_blocks_roundtrip() {
        let records = vec![
            vec![1u8; BLOCK_SIZE / 2],
            vec![2u8; BLOCK_SIZE],          // exactly one block of payload
            vec![3u8; BLOCK_SIZE * 3 + 17], // spans several blocks
            vec![4u8; 1],
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn trailer_padding_is_skipped() {
        // A record sized so the block tail is < HEADER_SIZE forces
        // zero-padding; the next record must still be read back.
        let first = vec![5u8; BLOCK_SIZE - HEADER_SIZE - 3];
        let records = vec![first, b"next".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn corrupt_crc_stops_reading_cleanly() {
        let dir = std::env::temp_dir().join(format!("wal-corrupt-{}", rand_suffix()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.log");
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = LogWriter::new(Box::new(file));
            w.add_record(b"good").unwrap();
            w.add_record(b"to-be-corrupted").unwrap();
            w.flush().unwrap();
        }
        // Flip a payload byte of the second record (whose fragment
        // header starts right after the 4-byte first record).
        let mut bytes = std::fs::read(&path).unwrap();
        let second_start = HEADER_SIZE + 4;
        bytes[second_start + HEADER_SIZE + 2] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let file = std::fs::File::open(&path).unwrap();
        let mut reader = LogReader::with_path(Box::new(file), &path);
        assert_eq!(reader.read_record().unwrap().unwrap(), b"good");
        // The corrupted record surfaces as WalTruncated at the offset
        // of the damaged fragment — not as a panic or garbage data.
        match reader.read_record() {
            Err(clsm_util::Error::WalTruncated { file, offset }) => {
                assert_eq!(file, path);
                assert_eq!(offset, second_start as u64);
            }
            other => panic!("expected WalTruncated, got {other:?}"),
        }
        // After the error the reader is fused.
        assert!(reader.read_record().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("wal-trunc-{}", rand_suffix()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.log");
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = LogWriter::new(Box::new(file));
            w.add_record(b"keep").unwrap();
            w.add_record(&vec![9u8; 1000]).unwrap();
            w.flush().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // Cut into the middle of the second record.
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&bytes[..HEADER_SIZE + 4 + HEADER_SIZE + 100])
            .unwrap();
        drop(f);

        let file = std::fs::File::open(&path).unwrap();
        let mut reader = LogReader::new(Box::new(file));
        assert_eq!(reader.read_record().unwrap().unwrap(), b"keep");
        // The cut record reports the torn tail at its own offset.
        match reader.read_record() {
            Err(clsm_util::Error::WalTruncated { offset, .. }) => {
                assert_eq!(offset, (HEADER_SIZE + 4) as u64);
            }
            other => panic!("expected WalTruncated, got {other:?}"),
        }
        assert!(reader.read_record().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
