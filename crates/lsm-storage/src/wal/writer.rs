//! WAL writer emitting the LevelDB block/fragment format.

use clsm_util::crc;
use clsm_util::env::WritableFile;
use clsm_util::error::Result;

use super::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Appends records to a log file, fragmenting across 32 KiB blocks.
///
/// The destination is any [`WritableFile`]; production code hands in
/// the (buffered) handle returned by `Env::open_write`, tests can pass
/// `Box::new(std::fs::File::create(..)?)` directly.
pub struct LogWriter {
    dest: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("block_offset", &self.block_offset)
            .finish()
    }
}

impl LogWriter {
    /// Wraps a freshly created (empty) log file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        LogWriter {
            dest: file,
            block_offset: 0,
        }
    }

    /// Appends one record, splitting into fragments as needed.
    pub fn add_record(&mut self, record: &[u8]) -> Result<()> {
        let mut left = record;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Too small for a header: zero-pad to the block end.
                if leftover > 0 {
                    const ZEROES: [u8; HEADER_SIZE] = [0; HEADER_SIZE];
                    self.dest.append(&ZEROES[..leftover])?;
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(avail);
            let end = fragment_len == left.len();
            let ty = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, true) => RecordType::Last,
                (false, false) => RecordType::Middle,
            };
            self.emit_fragment(ty, &left[..fragment_len])?;
            left = &left[fragment_len..];
            begin = false;
            if end {
                return Ok(());
            }
        }
    }

    fn emit_fragment(&mut self, ty: RecordType, data: &[u8]) -> Result<()> {
        debug_assert!(data.len() <= 0xffff);
        debug_assert!(self.block_offset + HEADER_SIZE + data.len() <= BLOCK_SIZE);
        // CRC covers the type byte and the payload, masked as in LevelDB.
        let mut crc_val = crc::extend(0, &[ty as u8]);
        crc_val = crc::extend(crc_val, data);
        let masked = crc::mask(crc_val);

        let mut header = [0u8; HEADER_SIZE];
        header[..4].copy_from_slice(&masked.to_le_bytes());
        header[4..6].copy_from_slice(&(data.len() as u16).to_le_bytes());
        header[6] = ty as u8;
        self.dest.append(&header)?;
        self.dest.append(data)?;
        self.block_offset += HEADER_SIZE + data.len();
        Ok(())
    }

    /// Flushes buffered data to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.dest.flush()
    }

    /// Flushes and fsyncs the file (durable write).
    pub fn sync(&mut self) -> Result<()> {
        self.dest.sync()
    }
}
