//! The disk component facade: everything below the memory components.
//!
//! A [`Store`] owns the directory, WAL (through the logging queue), the
//! version set + manifest, the table/block caches, and the compaction
//! machinery. It corresponds to the paper's `Cd` plus LevelDB's
//! infrastructure modules, with one cLSM-specific property: **reads
//! never block** — the current version is published through an RCU
//! cell, so `get` and iterator creation take no lock (the paper's `Pd`
//! pointer).

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use clsm_util::channel::Receiver;
use clsm_util::env::{Env, RealEnv};
use clsm_util::error::{Error, Result};
use clsm_util::metrics::{ConcurrentHistogram, Counter, MetricsRegistry};
use clsm_util::ratelimit::{IoPriority, IoRateLimiter};
use clsm_util::rcu::RcuCell;
use clsm_util::trace::TraceId;

/// Flight-recorder spans of the disk substrate. The flush span and the
/// per-stage compaction spans (argument = input level) are what makes
/// a flush→compaction causal chain visible in a merged trace; the WAL
/// spans time the logging queue from the writer's side.
static T_FLUSH: TraceId = TraceId::new("storage.flush");
static T_COMPACTION: TraceId = TraceId::new("storage.compaction");
static T_WAL_APPEND: TraceId = TraceId::new("storage.wal.append");
static T_WAL_SYNC: TraceId = TraceId::new("storage.wal.sync");

/// Bytes charged (at [`IoPriority::High`]) against the shared I/O
/// budget when a new WAL file is created — the cost the OS pays
/// allocating and zeroing the log head before appends can stream.
const WAL_PREALLOC_CHARGE: u64 = 64 * 1024;

use crate::cache::{BlockCache, TableCache};
use crate::compaction::{self, CompactionPolicy, CompactionPolicyKind};
use crate::filenames;
use crate::format::{ValueKind, WriteRecord};
use crate::iter::{BoxedIterator, InternalIterator};
use crate::version::ClaimSignal;
use crate::version::{Version, VersionEdit, VersionSet};
use crate::wal::{LogQueue, LogReader, LogWriter, SyncMode};
use crate::NUM_LEVELS;

/// Tunables of the disk substrate.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Target uncompressed size of one data block.
    pub block_size: usize,
    /// Bloom-filter budget per key.
    pub bloom_bits_per_key: usize,
    /// Target size of one table file.
    pub table_file_size: u64,
    /// Byte budget of the block cache (0 disables it).
    pub block_cache_bytes: usize,
    /// Number of L0 files that triggers a compaction.
    pub l0_compaction_trigger: usize,
    /// Byte budget of L1; deeper levels get `level_multiplier`× more.
    pub base_level_bytes: u64,
    /// Growth factor between level budgets.
    pub level_multiplier: u64,
    /// Number of levels (≤ [`NUM_LEVELS`]).
    pub num_levels: usize,
    /// Maximum simultaneously open table readers.
    pub max_open_tables: usize,
    /// The storage environment every byte goes through. Defaults to
    /// [`RealEnv`]; tests inject `clsm_util::env::FaultEnv` for
    /// deterministic crash injection.
    pub env: Arc<dyn Env>,
    /// Which [`CompactionPolicy`] schedules background merges.
    pub compaction_policy: CompactionPolicyKind,
    /// Shared background-I/O budget charged by flushes, compactions,
    /// and WAL pre-allocation at the [`Env`] write seam. `None` (the
    /// default) means unlimited. Clone one `Arc` into several stores
    /// (e.g. shards) to make them share a single device budget.
    pub io_rate_limiter: Option<Arc<IoRateLimiter>>,
    /// Number of independent WAL stripes (files + logger threads).
    /// Each append goes to the stripe picked by the writing thread's
    /// index, so concurrent writers on different stripes never share a
    /// logging queue or an fsync. Durability is unchanged — a sync
    /// waits on every stripe — and recovery needs no changes because
    /// replay already merges all live WALs by timestamp (§4's
    /// out-of-order logging rule). Clamped to `1..=16`; default 1.
    pub wal_stripes: usize,
}

impl StoreOptions {
    /// Installs a fresh token-bucket limiter (`bytes_per_sec` refill,
    /// `burst_bytes` capacity; 0 bytes/sec removes the limit).
    pub fn with_rate_limit(mut self, bytes_per_sec: u64, burst_bytes: u64) -> StoreOptions {
        self.io_rate_limiter =
            (bytes_per_sec > 0).then(|| Arc::new(IoRateLimiter::new(bytes_per_sec, burst_bytes)));
        self
    }
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            block_size: 4 * 1024,
            bloom_bits_per_key: 10,
            table_file_size: 2 * 1024 * 1024,
            block_cache_bytes: 8 * 1024 * 1024,
            l0_compaction_trigger: 4,
            base_level_bytes: 10 * 1024 * 1024,
            level_multiplier: 10,
            num_levels: NUM_LEVELS,
            max_open_tables: 500,
            env: Arc::new(RealEnv),
            compaction_policy: CompactionPolicyKind::default(),
            io_rate_limiter: None,
            wal_stripes: 1,
        }
    }
}

/// State recovered from a previous incarnation.
#[derive(Debug)]
pub struct Recovered {
    /// Unflushed writes from live WALs, sorted by `(timestamp, key)`
    /// and deduplicated (the cLSM out-of-order-logging recovery rule,
    /// §4). Entries of one cross-shard batch share a timestamp, so
    /// deduplication keys on the pair, never on the timestamp alone.
    pub records: Vec<WriteRecord>,
    /// Cross-shard batch-commit markers found in the WALs, as
    /// `(timestamp, expected total entries)` pairs. A sharded open
    /// audits these across shards and drops torn batches.
    pub batch_markers: Vec<(u64, u64)>,
    /// Highest timestamp ever issued (resume the oracle above this).
    pub last_ts: u64,
    /// Highest timestamp durably flushed into tables (the manifest's
    /// watermark). Used by the sharded batch audit: a flush at or above
    /// a marked timestamp proves that batch's appends completed.
    pub flushed_ts: u64,
    /// What recovery saw: WALs replayed, torn tails tolerated.
    pub report: RecoveryReport,
}

/// A summary of one recovery pass, for `clsm-doctor --crash-audit`.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL file numbers replayed, in replay order.
    pub wals_replayed: Vec<u64>,
    /// Write records recovered from those WALs (after deduplication).
    pub records_recovered: usize,
    /// Torn WAL tails tolerated: `(wal number, byte offset)` where
    /// damage began. Data before each offset was recovered intact.
    pub torn_tails: Vec<(u64, u64)>,
    /// Byte offset where the manifest was found torn, if it was.
    pub manifest_torn_at: Option<u64>,
}

/// The disk component.
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    cache: Arc<TableCache>,
    versions: Mutex<VersionSet>,
    /// Lock-free snapshot of the current version (the `Pd` pointer).
    current: RcuCell<Arc<Version>>,
    /// The WAL stripes: one file + logger thread each. A writing
    /// thread appends to `wals[thread_index() % wals.len()]`; syncs
    /// cover every stripe. Length is `StoreOptions::wal_stripes`.
    wals: Box<[LogQueue]>,
    /// Lowest file number among the WALs currently receiving appends —
    /// the retire/replay boundary. Every record in the live memtable
    /// sits in a WAL numbered at or above this.
    wal_number: AtomicU64,
    /// Output files of in-flight flushes/compactions: written to disk
    /// but not yet committed to a version. Obsolete-file GC must spare
    /// them (LevelDB's `pending_outputs_`).
    pending_outputs: Mutex<HashSet<u64>>,
    /// Bytes written by memtable flushes.
    bytes_flushed: AtomicU64,
    /// Bytes written by compactions (rewrites).
    bytes_compacted: AtomicU64,
    /// Observability hooks, attached at most once (see
    /// [`Store::attach_metrics`]). Absent in standalone/test use; all
    /// recording sites are no-ops then.
    metrics: OnceLock<StoreMetrics>,
    /// Signalled whenever a compaction claim is released (every claim
    /// carries it via `attach_release_signal`, so error unwinds notify
    /// too); `compact_range` waits here for claimed overlapping files
    /// with a plain `wait` — no timed-poll backstop needed.
    claims: Arc<ClaimSignal>,
    /// The scheduling policy picking background compactions
    /// ([`StoreOptions::compaction_policy`], built at open).
    policy: Box<dyn CompactionPolicy>,
    /// What the opening recovery pass saw (for `--crash-audit`).
    recovery_report: RecoveryReport,
}

/// The store's registered metrics handles. Recording through these is
/// lock-free; only registration (once, at attach time) takes a lock.
struct StoreMetrics {
    /// Duration of each group-committed WAL fsync wait.
    wal_sync_ns: Arc<ConcurrentHistogram>,
    /// Duration of each memtable flush (merge of `C'm` into L0).
    flush_ns: Arc<ConcurrentHistogram>,
    /// Duration of each compaction (background or manual).
    compaction_ns: Arc<ConcurrentHistogram>,
    /// Bytes written by flushes (mirror of the write-amp counter).
    bytes_flushed: Arc<Counter>,
    /// Bytes written by compactions.
    bytes_compacted: Arc<Counter>,
}

/// An in-flight WAL sync started by [`Store::sync_wal_begin`]: every
/// stripe's fsync is already running; [`wait`](WalSyncTicket::wait)
/// collects the acknowledgements.
#[must_use = "the sync only completes once the ticket is waited on"]
#[derive(Debug)]
pub struct WalSyncTicket {
    acks: Vec<Receiver<Result<u64>>>,
}

impl WalSyncTicket {
    /// Blocks until every stripe's fsync finished. Returns the latest
    /// durability instant (`trace::now_ns` on the logger threads) —
    /// the moment the whole sync's data was actually safe. The first
    /// stripe error wins, but every ack is still drained.
    pub fn wait(self) -> Result<u64> {
        let mut durable_ns = 0;
        let mut first_err = None;
        for ack in self.acks {
            match ack.recv().map_err(|_| Error::ShuttingDown).and_then(|r| r) {
                Ok(ns) => durable_ns = durable_ns.max(ns),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(durable_ns),
            Some(e) => Err(e),
        }
    }
}

/// Write-amplification accounting: bytes written by flushes vs. bytes
/// rewritten by compactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteAmp {
    /// Bytes first written by memtable flushes (the logical ingest).
    pub flushed: u64,
    /// Bytes rewritten by compactions on top of that.
    pub compacted: u64,
}

impl WriteAmp {
    /// Total device writes divided by logical ingest (≥ 1.0).
    pub fn factor(&self) -> f64 {
        if self.flushed == 0 {
            1.0
        } else {
            (self.flushed + self.compacted) as f64 / self.flushed as f64
        }
    }
}

/// RAII registration of in-flight output file numbers; deregisters on
/// drop so failed flushes/compactions release their claims.
struct PendingGuard<'a> {
    store: &'a Store,
    numbers: Arc<Mutex<Vec<u64>>>,
}

impl<'a> PendingGuard<'a> {
    fn new(store: &'a Store) -> Self {
        PendingGuard {
            store,
            numbers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// An allocator of output file numbers that registers each one as
    /// pending (shared with the guard for release on drop).
    fn allocator(&self) -> impl FnMut() -> u64 + '_ {
        let numbers = Arc::clone(&self.numbers);
        move || {
            let n = self.store.versions.lock().new_file_number();
            self.store.pending_outputs.lock().insert(n);
            numbers.lock().push(n);
            n
        }
    }
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut pending = self.store.pending_outputs.lock();
        for n in self.numbers.lock().iter() {
            pending.remove(n);
        }
    }
}

impl Store {
    /// Opens (or creates) a store in `dir` and replays its WALs.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<(Store, Recovered)> {
        assert!(opts.num_levels >= 2 && opts.num_levels <= NUM_LEVELS);
        let env = Arc::clone(&opts.env);
        env.create_dir_all(dir)?;
        let (mut versions, manifest_state) = VersionSet::open(Arc::clone(&env), dir)?;
        let mut report = RecoveryReport {
            manifest_torn_at: manifest_state.manifest_torn_at,
            ..Default::default()
        };

        // Replay every WAL at/above the manifest's boundary.
        let mut wal_numbers: Vec<u64> = Vec::new();
        for name in env.list(dir)? {
            if let Some(filenames::FileKind::Wal(n)) = filenames::parse_file_name(&name) {
                if n >= manifest_state.log_number {
                    wal_numbers.push(n);
                }
            }
        }
        wal_numbers.sort_unstable();
        let mut records: Vec<WriteRecord> = Vec::new();
        for n in &wal_numbers {
            let path = filenames::wal_path(dir, *n);
            let mut reader = LogReader::with_path(env.open_read(&path)?, &path);
            loop {
                match reader.read_record() {
                    Ok(Some(payload)) => records.extend(WriteRecord::decode_batch(&payload)?),
                    Ok(None) => break,
                    Err(Error::WalTruncated { offset, .. }) => {
                        // A torn tail is the expected signature of a
                        // crash: everything before `offset` was intact,
                        // everything after was never acked. Tolerate it
                        // and record where replay stopped.
                        report.torn_tails.push((*n, offset));
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        report.wals_replayed = wal_numbers;

        // Separate batch-commit markers from real writes; markers never
        // enter the memtable.
        let mut batch_markers: Vec<(u64, u64)> = Vec::new();
        records.retain(|r| match r.batch_marker_total() {
            Some(total) => {
                batch_markers.push((r.ts, total));
                false
            }
            None => true,
        });
        batch_markers.sort_unstable();
        batch_markers.dedup();
        // cLSM WALs are written out of timestamp order; restore order
        // and drop duplicates (a record may coexist with its flushed
        // copy, or appear twice across a rotation race). Entries of one
        // cross-shard batch share a timestamp, so the dedup key is the
        // (ts, key) pair — never the timestamp alone.
        records.sort_by(|a, b| a.ts.cmp(&b.ts).then_with(|| a.key.cmp(&b.key)));
        records.dedup_by(|a, b| a.ts == b.ts && a.key == b.key);
        report.records_recovered = records.len();
        let last_ts = records
            .last()
            .map(|r| r.ts)
            .unwrap_or(0)
            .max(batch_markers.last().map(|&(ts, _)| ts).unwrap_or(0))
            .max(manifest_state.last_ts);

        let cache = Arc::new(TableCache::new(
            Arc::clone(&env),
            dir.to_path_buf(),
            opts.bloom_bits_per_key,
            (opts.block_cache_bytes > 0).then(|| Arc::new(BlockCache::new(opts.block_cache_bytes))),
            opts.max_open_tables,
        ));

        // Fresh WAL stripes for the new incarnation. The recovered
        // records stay covered by the old WALs (numbers ≥ log_number),
        // which are retired only after the next flush. File numbers are
        // monotone, so the first (lowest) new number bounds them all.
        let stripes = opts.wal_stripes.clamp(1, 16);
        let mut wals = Vec::with_capacity(stripes);
        let mut wal_number = 0;
        for i in 0..stripes {
            let n = versions.new_file_number();
            if i == 0 {
                wal_number = n;
            }
            let wal_file = env.open_write(&filenames::wal_path(dir, n))?;
            wals.push(LogQueue::start(LogWriter::new(wal_file)));
        }

        let current = RcuCell::new(versions.current());
        let opts_policy = opts.compaction_policy;
        let store = Store {
            dir: dir.to_path_buf(),
            opts,
            cache,
            versions: Mutex::new(versions),
            current,
            wals: wals.into_boxed_slice(),
            wal_number: AtomicU64::new(wal_number),
            pending_outputs: Mutex::new(HashSet::new()),
            bytes_flushed: AtomicU64::new(0),
            bytes_compacted: AtomicU64::new(0),
            metrics: OnceLock::new(),
            claims: Arc::new(ClaimSignal::default()),
            policy: opts_policy.build(),
            recovery_report: report.clone(),
        };
        Ok((
            store,
            Recovered {
                records,
                batch_markers,
                last_ts,
                flushed_ts: manifest_state.last_ts,
                report,
            },
        ))
    }

    /// The store's options.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }

    /// The storage environment this store runs on.
    pub fn env(&self) -> &Arc<dyn Env> {
        &self.opts.env
    }

    /// What the opening recovery pass saw.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery_report
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared table cache.
    pub fn table_cache(&self) -> &Arc<TableCache> {
        &self.cache
    }

    /// Appends a batch of writes to the WAL.
    ///
    /// With several WAL stripes the batch goes — whole — to the stripe
    /// owned by the calling thread, so concurrent writers on different
    /// stripes never contend on a logging queue. A batch never splits
    /// across stripes: one append is one record in one file, which is
    /// what keeps torn-batch detection (whole records vanish, never
    /// fractions) intact under striping.
    pub fn log(&self, batch: &[WriteRecord], mode: SyncMode) -> Result<()> {
        let mut payload =
            Vec::with_capacity(batch.iter().map(|r| r.key.len() + r.value.len() + 16).sum());
        for r in batch {
            r.encode_to(&mut payload);
        }
        let _span = T_WAL_APPEND.span_with(payload.len() as u64);
        let stripe = clsm_util::tid::thread_index() % self.wals.len();
        self.wals[stripe].append(payload, mode)
    }

    /// Registers the store's metrics (WAL sync latency, flush and
    /// compaction durations, bytes written) in `registry` under the
    /// `storage.` prefix. Call at most once, before serving traffic;
    /// later calls are ignored. Without an attached registry every
    /// recording site is a no-op.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let _ = self.metrics.set(StoreMetrics {
            wal_sync_ns: registry.histogram("storage.wal_sync_ns"),
            flush_ns: registry.histogram("storage.flush_ns"),
            compaction_ns: registry.histogram("storage.compaction_ns"),
            bytes_flushed: registry.counter("storage.bytes_flushed"),
            bytes_compacted: registry.counter("storage.bytes_compacted"),
        });
    }

    /// Forces everything logged so far to disk.
    pub fn sync_wal(&self) -> Result<()> {
        self.sync_wal_timed().map(|_durable_ns| ())
    }

    /// Like [`sync_wal`](Self::sync_wal), but returns the logger
    /// thread's `trace::now_ns()` reading taken right after the
    /// covering fsync — the instant durability was reached, before any
    /// cross-thread wake-up latency. Write-path attribution uses it to
    /// bound the durable stage by actual fsync completion.
    pub fn sync_wal_timed(&self) -> Result<u64> {
        let _span = T_WAL_SYNC.span();
        let start = self.metrics.get().map(|_| Instant::now());
        let result = self.sync_wal_begin().and_then(WalSyncTicket::wait);
        if let (Some(m), Some(start)) = (self.metrics.get(), start) {
            m.wal_sync_ns.record_duration(start.elapsed());
        }
        result
    }

    /// First half of a split WAL sync: asks every stripe's logger
    /// thread to flush+fsync and returns a ticket without waiting.
    ///
    /// All stripes start their fsyncs immediately and run them in
    /// parallel; [`WalSyncTicket::wait`] then collects the
    /// acknowledgements. Callers syncing several independent WALs
    /// (e.g. a cross-shard batch) begin them all before waiting on any,
    /// so total latency is the slowest fsync, not the sum.
    pub fn sync_wal_begin(&self) -> Result<WalSyncTicket> {
        let mut acks = Vec::with_capacity(self.wals.len());
        for wal in &self.wals {
            acks.push(wal.sync_begin()?);
        }
        Ok(WalSyncTicket { acks })
    }

    /// Lock-free snapshot of the current disk component.
    pub fn current_version(&self) -> Arc<Version> {
        self.current.load()
    }

    /// Point lookup: newest version of `user_key` with ts `<= max_ts`.
    pub fn get(&self, user_key: &[u8], max_ts: u64) -> Result<Option<(u64, ValueKind, Vec<u8>)>> {
        self.current_version().get(&self.cache, user_key, max_ts)
    }

    /// Iterators over the current version (for merging with memtables).
    pub fn iterators(&self) -> Result<Vec<BoxedIterator>> {
        self.current_version().iterators(&self.cache)
    }

    /// Like [`Store::iterators`], but also returns the version the
    /// iterators read. Long-lived scans must hold the `Arc<Version>`:
    /// it is what protects the underlying files from deletion by a
    /// concurrent compaction (the paper's component reference counts).
    pub fn version_iterators(&self) -> Result<(Arc<Version>, Vec<BoxedIterator>)> {
        let version = self.current_version();
        let iters = version.iterators(&self.cache)?;
        Ok((version, iters))
    }

    /// Starts a new WAL file; subsequent appends go to it. Returns the
    /// new WAL's number. Called by `beforeMerge` when the memtable is
    /// swapped, so each memtable maps to a WAL prefix.
    /// Rotates **every** stripe and returns the lowest of the new file
    /// numbers. File numbers are monotone, so every pre-rotation WAL is
    /// numbered strictly below the return value: it is the exact
    /// retire/replay boundary for the memtable being flushed. The
    /// caller (`beforeMerge`) holds the exclusive lock, so no append
    /// can land between two stripes' rotations.
    pub fn rotate_wal(&self) -> Result<u64> {
        // Allocate all numbers first, under one versions-lock pass.
        let numbers: Vec<u64> = {
            let mut versions = self.versions.lock();
            self.wals
                .iter()
                .map(|_| versions.new_file_number())
                .collect()
        };
        // Charge the new logs' pre-allocation against the shared I/O
        // budget at high priority: the rotation sits on the flush
        // path, so it must outrank compaction traffic, never wait
        // behind it.
        if let Some(limiter) = &self.opts.io_rate_limiter {
            limiter.acquire(
                WAL_PREALLOC_CHARGE * self.wals.len() as u64,
                IoPriority::High,
            );
        }
        for (wal, &number) in self.wals.iter().zip(&numbers) {
            let file = self
                .opts
                .env
                .open_write(&filenames::wal_path(&self.dir, number))?;
            wal.rotate(LogWriter::new(file))?;
        }
        let boundary = numbers[0];
        self.wal_number.store(boundary, Ordering::SeqCst);
        Ok(boundary)
    }

    /// The lowest WAL number currently receiving appends (with one
    /// stripe, *the* current WAL number).
    pub fn current_wal_number(&self) -> u64 {
        self.wal_number.load(Ordering::SeqCst)
    }

    /// Backlog of the logging queues (records enqueued, not yet handed
    /// to a logger thread), summed over stripes. Racy diagnostic
    /// sample.
    pub fn wal_queue_depth(&self) -> usize {
        self.wals.iter().map(LogQueue::depth).sum()
    }

    /// Number of WAL stripes this store runs
    /// ([`StoreOptions::wal_stripes`], after clamping).
    pub fn wal_stripes(&self) -> usize {
        self.wals.len()
    }

    /// Flushes a sorted memtable stream into level-0 tables.
    ///
    /// `watermark` is the oldest live snapshot; `max_ts` the highest
    /// timestamp in the stream; `retire_wals_below` the WAL number the
    /// flushed data predates (those logs become garbage).
    pub fn flush_memtable(
        &self,
        it: &mut dyn InternalIterator,
        watermark: u64,
        max_ts: u64,
        retire_wals_below: u64,
    ) -> Result<()> {
        it.seek_to_first();
        let _span = T_FLUSH.span_with(max_ts);
        let start = Instant::now();
        let guard = PendingGuard::new(self);
        let new_files = {
            let mut alloc = guard.allocator();
            compaction::write_merged_tables(
                it, &self.dir, &self.opts, 0, watermark, false, &mut alloc,
            )?
        };
        let flushed_bytes = new_files.iter().map(|f| f.file_size).sum::<u64>();
        self.bytes_flushed
            .fetch_add(flushed_bytes, Ordering::Relaxed);
        let edit = VersionEdit {
            log_number: Some(retire_wals_below),
            last_ts: Some(max_ts),
            new_files,
            ..Default::default()
        };
        let mut versions = self.versions.lock();
        let new_version = versions.log_and_apply(edit)?;
        self.current.store(new_version);
        self.delete_obsolete_locked(&mut versions)?;
        drop(versions);
        drop(guard);
        if let Some(m) = self.metrics.get() {
            m.bytes_flushed.add(flushed_bytes);
            m.flush_ns.record_duration(start.elapsed());
        }
        Ok(())
    }

    /// Returns `true` if some level's score is at or past its budget
    /// under the configured [`CompactionPolicy`].
    pub fn needs_compaction(&self) -> bool {
        let v = self.current_version();
        self.policy.needs_compaction(&v, &self.opts)
    }

    /// The configured compaction scheduling policy.
    pub fn compaction_policy(&self) -> CompactionPolicyKind {
        self.policy.kind()
    }

    /// The shared background-I/O limiter, when one is configured.
    pub fn io_rate_limiter(&self) -> Option<&Arc<IoRateLimiter>> {
        self.opts.io_rate_limiter.as_ref()
    }

    /// Picks (via the configured policy) and runs one compaction if
    /// any level needs it.
    ///
    /// Safe to call from several threads: file claims make concurrent
    /// compactions work on disjoint inputs (this is how the RocksDB
    /// baseline's multi-threaded compaction is modeled, §5.3).
    pub fn maybe_compact(&self, watermark: u64) -> Result<bool> {
        let version = self.current_version();
        let Some(mut task) = self.policy.pick(&version, &self.opts) else {
            return Ok(false);
        };
        task.attach_release_signal(Arc::clone(&self.claims));
        let _span = T_COMPACTION.span_with(task.level as u64);
        let start = Instant::now();
        let guard = PendingGuard::new(self);
        let edit = {
            let mut alloc = guard.allocator();
            compaction::run(
                &task,
                &self.dir,
                &self.cache,
                &self.opts,
                watermark,
                &mut alloc,
            )?
        };
        let written = edit.new_files.iter().map(|f| f.file_size).sum::<u64>();
        self.bytes_compacted.fetch_add(written, Ordering::Relaxed);
        let mut versions = self.versions.lock();
        let new_version = versions.log_and_apply(edit)?;
        self.current.store(new_version);
        self.delete_obsolete_locked(&mut versions)?;
        drop(versions);
        drop(guard);
        drop(task); // claim Drop notifies `claims`
        if let Some(m) = self.metrics.get() {
            m.bytes_compacted.add(written);
            m.compaction_ns.record_duration(start.elapsed());
        }
        Ok(true)
    }

    /// Runs obsolete-file deletion, sparing in-flight pending outputs.
    fn delete_obsolete_locked(&self, versions: &mut VersionSet) -> Result<()> {
        let pending: HashSet<u64> = self.pending_outputs.lock().clone();
        versions.delete_obsolete_files(&self.cache, &pending)?;
        Ok(())
    }

    /// Per-level file counts (diagnostics).
    pub fn level_file_counts(&self) -> Vec<usize> {
        let v = self.current_version();
        (0..self.opts.num_levels).map(|l| v.num_files(l)).collect()
    }

    /// Per-level byte totals (diagnostics).
    pub fn level_byte_sizes(&self) -> Vec<u64> {
        let v = self.current_version();
        (0..self.opts.num_levels)
            .map(|l| v.level_bytes(l))
            .collect()
    }

    /// First WAL I/O error, if any stripe's logger thread hit one.
    pub fn wal_poisoned(&self) -> Option<clsm_util::error::Error> {
        self.wals.iter().find_map(LogQueue::poisoned)
    }

    /// Manually compacts every file overlapping `[start, end]` (user
    /// keys) down to the bottom level, level by level — LevelDB's
    /// `CompactRange` admin operation. Blocks until done; safe to run
    /// concurrently with background compactions (claims serialize).
    pub fn compact_range(&self, start: &[u8], end: &[u8], watermark: u64) -> Result<()> {
        for level in 0..self.opts.num_levels - 1 {
            loop {
                let version = self.current_version();
                let picked = compaction::pick_level_range(&version, &self.opts, level, start, end);
                let mut task = match picked {
                    Some(task) => task,
                    None => {
                        // Nothing overlapping at this level, or claimed
                        // by a background compaction: if the level still
                        // has overlapping files we must wait and retry,
                        // else we move on.
                        if version.overlapping_files(level, start, end).is_empty() {
                            break;
                        }
                        // A background compaction holds the claim. Every
                        // claim release notifies `claims` under its lock
                        // (RAII, including error unwinds), so re-check
                        // under that same lock and then wait untimed —
                        // a release between our failed pick above and
                        // the lock acquisition cannot be missed.
                        let mut guard = self.claims.lock();
                        let version = self.current_version();
                        match compaction::pick_level_range(&version, &self.opts, level, start, end)
                        {
                            Some(task) => {
                                drop(guard);
                                task
                            }
                            None => {
                                if version.overlapping_files(level, start, end).is_empty() {
                                    break;
                                }
                                self.claims.wait(&mut guard);
                                continue;
                            }
                        }
                    }
                };
                task.attach_release_signal(Arc::clone(&self.claims));
                let _span = T_COMPACTION.span_with(task.level as u64);
                let start = Instant::now();
                let guard = PendingGuard::new(self);
                let edit = {
                    let mut alloc = guard.allocator();
                    compaction::run(
                        &task,
                        &self.dir,
                        &self.cache,
                        &self.opts,
                        watermark,
                        &mut alloc,
                    )?
                };
                let written = edit.new_files.iter().map(|f| f.file_size).sum::<u64>();
                self.bytes_compacted.fetch_add(written, Ordering::Relaxed);
                let mut versions = self.versions.lock();
                let new_version = versions.log_and_apply(edit)?;
                self.current.store(new_version);
                self.delete_obsolete_locked(&mut versions)?;
                drop(versions);
                drop(guard);
                drop(task); // claim Drop notifies `claims`
                if let Some(m) = self.metrics.get() {
                    m.bytes_compacted.add(written);
                    m.compaction_ns.record_duration(start.elapsed());
                }
                break;
            }
        }
        Ok(())
    }

    /// Full integrity scan: walks every table in the current version
    /// end-to-end, validating per-block checksums and internal key
    /// order. Returns the number of entries checked.
    ///
    /// Intended for offline verification tools and tests; it reads
    /// every byte of every table, so it is proportional to store size.
    pub fn verify_integrity(&self) -> Result<u64> {
        let version = self.current_version();
        let mut checked = 0u64;
        for level in &version.levels {
            for file in level {
                let table = self.cache.table(file.number)?;
                let mut it = table.iter();
                it.seek_to_first();
                let mut prev: Option<(Vec<u8>, u64)> = None;
                while it.valid() {
                    if let Some((pk, pts)) = &prev {
                        let ord = pk.as_slice().cmp(it.user_key());
                        let in_order = ord == std::cmp::Ordering::Less
                            || (ord == std::cmp::Ordering::Equal && it.ts() < *pts);
                        if !in_order {
                            return Err(clsm_util::error::Error::corruption(format!(
                                "table {:06} has out-of-order keys",
                                file.number
                            )));
                        }
                    }
                    prev = Some((it.user_key().to_vec(), it.ts()));
                    checked += 1;
                    it.next();
                }
                it.status()?;
            }
        }
        Ok(checked)
    }

    /// Block-cache hit/miss counters, if a cache is configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.block_cache().map(|c| c.stats())
    }

    /// Write-amplification counters (flush vs. compaction bytes).
    pub fn write_amp(&self) -> WriteAmp {
        WriteAmp {
            flushed: self.bytes_flushed.load(Ordering::Relaxed),
            compacted: self.bytes_compacted.load(Ordering::Relaxed),
        }
    }

    /// Approximate on-disk bytes attributable to user keys in
    /// `[start, end]` (LevelDB's `GetApproximateSizes`): whole files
    /// fully inside the range count entirely, boundary files count
    /// proportionally by key-range position.
    pub fn approximate_range_bytes(&self, start: &[u8], end: &[u8]) -> u64 {
        let version = self.current_version();
        let mut total = 0u64;
        for level in &version.levels {
            for file in level {
                let lo = file.smallest_user_key();
                let hi = file.largest_user_key();
                if hi < start || lo > end {
                    continue;
                }
                if lo >= start && hi <= end {
                    total += file.file_size;
                } else {
                    // Boundary overlap: charge half as a coarse estimate
                    // (no per-block index probing; good enough for
                    // capacity planning, the API's intended use).
                    total += file.file_size / 2;
                }
            }
        }
        total
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("levels", &self.level_file_counts())
            .finish()
    }
}

#[cfg(test)]
mod tests;
