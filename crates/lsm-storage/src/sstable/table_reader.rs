//! SSTable reading: point lookups and two-level iteration.

use std::path::Path;
use std::sync::Arc;

use clsm_util::bloom::BloomFilterPolicy;
use clsm_util::crc;
use clsm_util::env::{Env, RandomAccessFile};
use clsm_util::error::{Error, Result};

use crate::cache::BlockCache;
use crate::format::{split_internal_key, ValueKind};
use crate::iter::InternalIterator;
use crate::sstable::{Block, BlockHandle, BlockIter, Footer, BLOCK_TRAILER_SIZE, FOOTER_SIZE};

/// An open, immutable table file.
pub struct Table {
    file: Box<dyn RandomAccessFile>,
    /// Table file number; used as the cache-key namespace.
    number: u64,
    index: Arc<Block>,
    filter: Vec<u8>,
    bloom: BloomFilterPolicy,
    cache: Option<Arc<BlockCache>>,
}

impl Table {
    /// Opens and validates a table file.
    pub fn open(
        env: &dyn Env,
        path: &Path,
        number: u64,
        bloom_bits_per_key: usize,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Table> {
        let file = env.open_read(path)?;
        let size = file.len()?;
        if size < FOOTER_SIZE as u64 {
            return Err(Error::corruption("table smaller than footer"));
        }
        let mut footer_buf = vec![0u8; FOOTER_SIZE];
        file.read_exact_at(size - FOOTER_SIZE as u64, &mut footer_buf)?;
        let footer = Footer::decode(&footer_buf)?;

        let index_data = read_verified_block(file.as_ref(), footer.index_handle)?;
        let index = Arc::new(Block::parse(index_data)?);
        let filter = read_verified_block(file.as_ref(), footer.filter_handle)?;

        Ok(Table {
            file,
            number,
            index,
            filter,
            bloom: BloomFilterPolicy::new(bloom_bits_per_key),
            cache,
        })
    }

    /// The table's file number.
    pub fn number(&self) -> u64 {
        self.number
    }

    /// Reads (or fetches from cache) the data block at `handle`.
    fn block(&self, handle: BlockHandle) -> Result<Arc<Block>> {
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(self.number, handle.offset) {
                return Ok(block);
            }
            let data = read_verified_block(self.file.as_ref(), handle)?;
            let block = Arc::new(Block::parse(data)?);
            cache.insert(self.number, handle.offset, Arc::clone(&block));
            Ok(block)
        } else {
            let data = read_verified_block(self.file.as_ref(), handle)?;
            Ok(Arc::new(Block::parse(data)?))
        }
    }

    /// Point lookup: the newest version of `user_key` with timestamp
    /// `<= max_ts` stored in this table.
    pub fn get(&self, user_key: &[u8], max_ts: u64) -> Result<Option<(u64, ValueKind, Vec<u8>)>> {
        if !self.bloom.key_may_match(user_key, &self.filter) {
            return Ok(None);
        }
        let mut index_iter = self.index.iter();
        index_iter.seek_internal(user_key, max_ts);
        if !index_iter.is_valid() {
            index_iter.status()?;
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.raw_value())?;
        let block = self.block(handle)?;
        let mut data_iter = block.iter();
        data_iter.seek_internal(user_key, max_ts);
        if !data_iter.is_valid() {
            data_iter.status()?;
            return Ok(None);
        }
        let (found_key, ts, kind) = split_internal_key(data_iter.raw_key())?;
        if found_key != user_key {
            return Ok(None);
        }
        debug_assert!(ts <= max_ts);
        Ok(Some((ts, kind, data_iter.raw_value().to_vec())))
    }

    /// Creates a two-level iterator over the whole table.
    pub fn iter(self: &Arc<Self>) -> TableIter {
        TableIter {
            table: Arc::clone(self),
            index_iter: self.index.iter(),
            data_iter: None,
            error: None,
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("number", &self.number)
            .finish()
    }
}

/// Reads a block's contents and verifies its trailer CRC.
fn read_verified_block(file: &dyn RandomAccessFile, handle: BlockHandle) -> Result<Vec<u8>> {
    let total = handle.size as usize + BLOCK_TRAILER_SIZE;
    let mut buf = vec![0u8; total];
    file.read_exact_at(handle.offset, &mut buf)?;
    let (contents, trailer) = buf.split_at(handle.size as usize);
    let ty = trailer[0];
    if ty != 0 {
        return Err(Error::corruption(format!(
            "unsupported compression type {ty}"
        )));
    }
    let stored = crc::unmask(u32::from_le_bytes(
        trailer[1..5].try_into().expect("4 bytes"),
    ));
    let mut actual = crc::extend(0, contents);
    actual = crc::extend(actual, &[ty]);
    if stored != actual {
        return Err(Error::corruption("block checksum mismatch"));
    }
    buf.truncate(handle.size as usize);
    Ok(buf)
}

/// Two-level iterator: index block → data blocks.
pub struct TableIter {
    table: Arc<Table>,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    error: Option<Error>,
}

impl TableIter {
    /// Loads the data block referenced by the current index entry.
    fn load_data_block(&mut self) -> bool {
        if !self.index_iter.is_valid() {
            self.data_iter = None;
            return false;
        }
        match BlockHandle::decode_from(self.index_iter.raw_value())
            .and_then(|(h, _)| self.table.block(h))
        {
            Ok(block) => {
                self.data_iter = Some(block.iter());
                true
            }
            Err(e) => {
                self.error.get_or_insert(e);
                self.data_iter = None;
                false
            }
        }
    }

    /// Advances through index entries until the data iterator is valid.
    fn skip_empty_blocks_forward(&mut self) {
        while self.data_iter.as_ref().is_none_or(|d| !d.is_valid()) {
            if !self.index_iter.is_valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.step();
            if self.load_data_block() {
                if let Some(d) = &mut self.data_iter {
                    d.to_first();
                }
            } else {
                return;
            }
        }
    }
}

impl InternalIterator for TableIter {
    fn valid(&self) -> bool {
        self.data_iter.as_ref().is_some_and(|d| d.is_valid())
    }

    fn seek_to_first(&mut self) {
        self.index_iter.to_first();
        if self.load_data_block() {
            if let Some(d) = &mut self.data_iter {
                d.to_first();
            }
            self.skip_empty_blocks_forward();
        }
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        self.index_iter.seek_internal(user_key, ts);
        if self.load_data_block() {
            if let Some(d) = &mut self.data_iter {
                d.seek_internal(user_key, ts);
            }
            self.skip_empty_blocks_forward();
        }
    }

    fn next(&mut self) {
        if let Some(d) = &mut self.data_iter {
            d.step();
        }
        self.skip_empty_blocks_forward();
    }

    fn user_key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").user_key()
    }

    fn ts(&self) -> u64 {
        self.data_iter.as_ref().expect("valid").ts()
    }

    fn kind(&self) -> ValueKind {
        self.data_iter.as_ref().expect("valid").kind()
    }

    fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").value()
    }

    fn status(&self) -> Result<()> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        self.index_iter.status()?;
        if let Some(d) = &self.data_iter {
            d.status()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::InternalKey;
    use crate::sstable::TableBuilder;
    use clsm_util::env::RealEnv;
    use std::fs::File;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("table-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build_table(
        dir: &Path,
        entries: &[(&[u8], u64, ValueKind, &[u8])],
        block_size: usize,
    ) -> Arc<Table> {
        let path = dir.join("t.sst");
        let mut b = TableBuilder::new(Box::new(File::create(&path).unwrap()), block_size, 10);
        for (k, ts, kind, v) in entries {
            b.add(InternalKey::new(k, *ts, *kind).encoded(), v).unwrap();
        }
        let summary = b.finish().unwrap();
        assert_eq!(summary.num_entries, entries.len() as u64);
        Arc::new(Table::open(&RealEnv, &path, 1, 10, None).unwrap())
    }

    #[test]
    fn build_open_get() {
        let dir = tmpdir("basic");
        let table = build_table(
            &dir,
            &[
                (b"alpha", 3, ValueKind::Put, b"va"),
                (b"beta", 9, ValueKind::Put, b"vb9"),
                (b"beta", 2, ValueKind::Put, b"vb2"),
                (b"gamma", 5, ValueKind::Delete, b""),
            ],
            4096,
        );
        assert_eq!(
            table.get(b"alpha", 100).unwrap().unwrap(),
            (3, ValueKind::Put, b"va".to_vec())
        );
        assert_eq!(table.get(b"beta", 100).unwrap().unwrap().2, b"vb9".to_vec());
        assert_eq!(table.get(b"beta", 5).unwrap().unwrap().2, b"vb2".to_vec());
        assert_eq!(table.get(b"beta", 1).unwrap(), None);
        assert_eq!(
            table.get(b"gamma", 100).unwrap().unwrap().1,
            ValueKind::Delete
        );
        assert_eq!(table.get(b"delta", 100).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn many_blocks_iterate_in_order() {
        let dir = tmpdir("multiblock");
        let mut entries = Vec::new();
        let values: Vec<Vec<u8>> = (0..300u32).map(|i| vec![(i % 251) as u8; 64]).collect();
        let keys: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("key{i:06}").into_bytes())
            .collect();
        for i in 0..300usize {
            entries.push((
                keys[i].as_slice(),
                (i + 1) as u64,
                ValueKind::Put,
                values[i].as_slice(),
            ));
        }
        // Tiny blocks force many data blocks.
        let table = build_table(&dir, &entries, 256);
        let mut it = table.iter();
        it.seek_to_first();
        let mut n = 0;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            if let Some(l) = &last {
                assert!(it.user_key() > l.as_slice());
            }
            assert_eq!(it.value(), values[n].as_slice());
            last = Some(it.user_key().to_vec());
            n += 1;
            it.next();
        }
        it.status().unwrap();
        assert_eq!(n, 300);
        // Seeks land exactly.
        it.seek(b"key000100", u64::MAX >> 1);
        assert_eq!(it.user_key(), b"key000100");
        it.seek(b"key000299", u64::MAX >> 1);
        assert_eq!(it.user_key(), b"key000299");
        it.seek(b"key999999", u64::MAX >> 1);
        assert!(!it.valid());
        // Point gets across blocks.
        for i in (0..300).step_by(23) {
            let k = format!("key{i:06}");
            let got = table.get(k.as_bytes(), u64::MAX >> 1).unwrap().unwrap();
            assert_eq!(got.0, (i + 1) as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_block_detected() {
        let dir = tmpdir("corrupt");
        let table = build_table(&dir, &[(b"k", 1, ValueKind::Put, b"v")], 4096);
        drop(table);
        let path = dir.join("t.sst");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2] ^= 0x55; // damage the first data block
        std::fs::write(&path, &bytes).unwrap();
        let table = Arc::new(Table::open(&RealEnv, &path, 1, 10, None).unwrap());
        assert!(table.get(b"k", 100).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn block_cache_is_used() {
        let dir = tmpdir("cached");
        let cache = Arc::new(BlockCache::new(1 << 20));
        let path = dir.join("t.sst");
        let mut b = TableBuilder::new(Box::new(File::create(&path).unwrap()), 4096, 10);
        b.add(InternalKey::new(b"k", 1, ValueKind::Put).encoded(), b"v")
            .unwrap();
        b.finish().unwrap();
        let table = Table::open(&RealEnv, &path, 42, 10, Some(Arc::clone(&cache))).unwrap();
        assert!(table.get(b"k", 100).unwrap().is_some());
        let (hits_before, _) = cache.stats();
        assert!(table.get(b"k", 100).unwrap().is_some());
        let (hits_after, _) = cache.stats();
        assert!(hits_after > hits_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
