//! Parsed block and its iterator.

use std::sync::Arc;

use clsm_util::coding::{decode_fixed32, get_varint32};
use clsm_util::error::{Error, Result};

use crate::format::{compare_internal_to_target, split_internal_key, ValueKind};
use crate::iter::InternalIterator;

/// An immutable, parsed block (data or index).
#[derive(Debug)]
pub struct Block {
    data: Vec<u8>,
    /// Offset where the restart array begins.
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Validates the trailer and wraps the contents.
    pub fn parse(data: Vec<u8>) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corruption("block too small"));
        }
        let num_restarts = decode_fixed32(&data[data.len() - 4..]) as usize;
        let trailer = 4 + num_restarts * 4;
        if data.len() < trailer {
            return Err(Error::corruption("block restart array truncated"));
        }
        let restarts_offset = data.len() - trailer;
        Ok(Block {
            data,
            restarts_offset,
            num_restarts,
        })
    }

    /// Approximate in-memory size (for cache accounting).
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_point(&self, i: usize) -> usize {
        debug_assert!(i < self.num_restarts);
        decode_fixed32(&self.data[self.restarts_offset + i * 4..]) as usize
    }

    /// Creates an iterator holding the block alive via `Arc`.
    pub fn iter(self: &Arc<Self>) -> BlockIter {
        BlockIter {
            block: Arc::clone(self),
            next_offset: 0,
            key: Vec::new(),
            value_off: 0,
            value_len: 0,
            valid: false,
            error: None,
        }
    }
}

/// Cursor over a block's entries.
pub struct BlockIter {
    block: Arc<Block>,
    /// Offset of the entry *after* the current one.
    next_offset: usize,
    /// Materialized current key (prefix + delta).
    key: Vec<u8>,
    value_off: usize,
    value_len: usize,
    valid: bool,
    error: Option<Error>,
}

impl BlockIter {
    /// The current entry's full stored key.
    pub fn raw_key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// The current entry's raw value bytes.
    pub fn raw_value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_off..self.value_off + self.value_len]
    }

    /// Returns `true` when positioned on an entry.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Positions on the first entry.
    pub fn to_first(&mut self) {
        self.next_offset = 0;
        self.key.clear();
        self.valid = false;
        self.parse_next();
    }

    /// Positions on the first entry whose stored internal key is
    /// `>= (user_key, ts)`.
    pub fn seek_internal(&mut self, user_key: &[u8], ts: u64) {
        // Binary search the restart points: find the last restart whose
        // key is ordered before the target.
        let mut lo = 0usize;
        let mut hi = self.block.num_restarts.saturating_sub(1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let off = self.block.restart_point(mid);
            match self.decode_restart_key(off) {
                Some(key_range) => {
                    let key = &self.block.data[key_range.0..key_range.1];
                    if compare_internal_to_target(key, user_key, ts) == std::cmp::Ordering::Less {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                None => {
                    self.corrupt("bad restart entry");
                    return;
                }
            }
        }
        // Linear scan from the chosen restart.
        self.next_offset = self.block.restart_point(lo);
        self.key.clear();
        self.valid = false;
        loop {
            if !self.parse_next() {
                return; // exhausted or error
            }
            if compare_internal_to_target(&self.key, user_key, ts) != std::cmp::Ordering::Less {
                return;
            }
        }
    }

    /// Advances to the next entry.
    pub fn step(&mut self) {
        debug_assert!(self.valid);
        self.parse_next();
    }

    /// Decodes the key byte-range of a restart entry (shared = 0).
    fn decode_restart_key(&self, offset: usize) -> Option<(usize, usize)> {
        let data = &self.block.data[..self.block.restarts_offset];
        let (shared, a) = get_varint32(&data[offset..]).ok()?;
        if shared != 0 {
            return None;
        }
        let (non_shared, b) = get_varint32(&data[offset + a..]).ok()?;
        let (_vlen, c) = get_varint32(&data[offset + a + b..]).ok()?;
        let key_start = offset + a + b + c;
        let key_end = key_start + non_shared as usize;
        (key_end <= data.len()).then_some((key_start, key_end))
    }

    /// Parses the entry at `next_offset` into the cursor state.
    /// Returns `false` at block end or on corruption.
    fn parse_next(&mut self) -> bool {
        let data = &self.block.data[..self.block.restarts_offset];
        if self.next_offset >= data.len() {
            self.valid = false;
            return false;
        }
        let offset = self.next_offset;
        let parsed = (|| -> Result<(usize, usize, usize, usize)> {
            let (shared, a) = get_varint32(&data[offset..])?;
            let (non_shared, b) = get_varint32(&data[offset + a..])?;
            let (value_len, c) = get_varint32(&data[offset + a + b..])?;
            Ok((
                shared as usize,
                non_shared as usize,
                value_len as usize,
                offset + a + b + c,
            ))
        })();
        match parsed {
            Ok((shared, non_shared, value_len, key_start)) => {
                let value_start = key_start + non_shared;
                if shared > self.key.len() || value_start + value_len > data.len() {
                    self.corrupt("block entry out of bounds");
                    return false;
                }
                self.key.truncate(shared);
                self.key.extend_from_slice(&data[key_start..value_start]);
                self.value_off = value_start;
                self.value_len = value_len;
                self.next_offset = value_start + value_len;
                self.valid = true;
                true
            }
            Err(e) => {
                self.corrupt(&e.to_string());
                false
            }
        }
    }

    fn corrupt(&mut self, msg: &str) {
        self.valid = false;
        if self.error.is_none() {
            self.error = Some(Error::corruption(msg.to_string()));
        }
    }
}

impl InternalIterator for BlockIter {
    fn valid(&self) -> bool {
        self.valid
    }

    fn seek_to_first(&mut self) {
        self.to_first();
    }

    fn seek(&mut self, user_key: &[u8], ts: u64) {
        self.seek_internal(user_key, ts);
    }

    fn next(&mut self) {
        self.step();
    }

    fn user_key(&self) -> &[u8] {
        split_internal_key(self.raw_key())
            .expect("valid internal key")
            .0
    }

    fn ts(&self) -> u64 {
        split_internal_key(self.raw_key())
            .expect("valid internal key")
            .1
    }

    fn kind(&self) -> ValueKind {
        split_internal_key(self.raw_key())
            .expect("valid internal key")
            .2
    }

    fn value(&self) -> &[u8] {
        self.raw_value()
    }

    fn status(&self) -> Result<()> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::InternalKey;
    use crate::sstable::BlockBuilder;

    fn build_block(entries: &[(&[u8], u64, &[u8])]) -> Arc<Block> {
        let mut b = BlockBuilder::default();
        for (k, ts, v) in entries {
            b.add(InternalKey::new(k, *ts, ValueKind::Put).encoded(), v);
        }
        Arc::new(Block::parse(b.finish()).unwrap())
    }

    #[test]
    fn iterate_all_entries() {
        let block = build_block(&[
            (b"a", 9, b"va9"),
            (b"a", 3, b"va3"),
            (b"b", 7, b"vb7"),
            (b"carrot", 1, b"vc1"),
        ]);
        let mut it = block.iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push((it.user_key().to_vec(), it.ts(), it.value().to_vec()));
            it.next();
        }
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), 9, b"va9".to_vec()),
                (b"a".to_vec(), 3, b"va3".to_vec()),
                (b"b".to_vec(), 7, b"vb7".to_vec()),
                (b"carrot".to_vec(), 1, b"vc1".to_vec()),
            ]
        );
        it.status().unwrap();
    }

    #[test]
    fn seek_finds_version_boundaries() {
        let block = build_block(&[(b"a", 9, b"x"), (b"a", 3, b"y"), (b"b", 7, b"z")]);
        let mut it = block.iter();
        it.seek(b"a", u64::MAX >> 1);
        assert_eq!((it.user_key(), it.ts()), (&b"a"[..], 9));
        it.seek(b"a", 5);
        assert_eq!((it.user_key(), it.ts()), (&b"a"[..], 3));
        it.seek(b"a", 2);
        assert_eq!((it.user_key(), it.ts()), (&b"b"[..], 7));
        it.seek(b"b", 7);
        assert_eq!((it.user_key(), it.ts()), (&b"b"[..], 7));
        it.seek(b"b", 6);
        assert!(!it.valid());
        it.status().unwrap();
    }

    #[test]
    fn seek_across_many_restarts() {
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::new();
        for i in 0..500u32 {
            entries.push((format!("key{i:06}").into_bytes(), 1));
        }
        let mut b = BlockBuilder::default();
        for (k, ts) in &entries {
            b.add(InternalKey::new(k, *ts, ValueKind::Put).encoded(), b"v");
        }
        let block = Arc::new(Block::parse(b.finish()).unwrap());
        let mut it = block.iter();
        for i in (0..500).step_by(37) {
            let key = format!("key{i:06}");
            it.seek(key.as_bytes(), u64::MAX >> 1);
            assert!(it.valid(), "i={i}");
            assert_eq!(it.user_key(), key.as_bytes());
        }
        // Seek before the first and past the last.
        it.seek(b"key", u64::MAX >> 1);
        assert_eq!(it.user_key(), b"key000000");
        it.seek(b"zzz", u64::MAX >> 1);
        assert!(!it.valid());
    }

    #[test]
    fn corrupt_block_reports_error() {
        let block = build_block(&[(b"a", 1, b"v")]);
        // Clone the data and truncate inside the entry area.
        let mut raw = block.data.clone();
        let cut = raw.len() - 8; // keep trailer, damage restart offset
        raw[0] = 0xff; // invalid varint start for "shared"
        let _ = cut;
        let damaged = Arc::new(Block::parse(raw).unwrap());
        let mut it = damaged.iter();
        it.seek_to_first();
        assert!(!it.valid());
        assert!(it.status().is_err());
    }
}
