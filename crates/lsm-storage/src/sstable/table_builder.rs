//! SSTable construction.

use clsm_util::bloom::BloomFilterPolicy;
use clsm_util::crc;
use clsm_util::env::WritableFile;
use clsm_util::error::Result;

use crate::format::{compare_internal_keys, split_internal_key};
use crate::sstable::{BlockBuilder, BlockHandle, Footer, BLOCK_TRAILER_SIZE};

/// Summary of a finished table, fed into the version edit.
#[derive(Debug, Clone)]
pub struct TableSummary {
    /// Total file size in bytes.
    pub file_size: u64,
    /// Smallest internal key in the table.
    pub smallest: Vec<u8>,
    /// Largest internal key in the table.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub num_entries: u64,
}

/// Streams sorted internal entries into an SSTable file.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    offset: u64,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    /// Index entry for the block flushed most recently, emitted lazily.
    pending_index: Option<(Vec<u8>, BlockHandle)>,
    filter_keys: Vec<Vec<u8>>,
    bloom: BloomFilterPolicy,
    block_size: usize,
    num_entries: u64,
    smallest: Option<Vec<u8>>,
    last_key: Vec<u8>,
}

impl TableBuilder {
    /// Creates a builder writing to `file`.
    pub fn new(file: Box<dyn WritableFile>, block_size: usize, bloom_bits_per_key: usize) -> Self {
        TableBuilder {
            file,
            offset: 0,
            data_block: BlockBuilder::default(),
            index_block: BlockBuilder::new(1),
            pending_index: None,
            filter_keys: Vec::new(),
            bloom: BloomFilterPolicy::new(bloom_bits_per_key),
            block_size: block_size.max(64),
            num_entries: 0,
            smallest: None,
            last_key: Vec::new(),
        }
    }

    /// Appends an entry. Internal keys must arrive strictly increasing.
    pub fn add(&mut self, internal_key: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(
            self.last_key.is_empty()
                || compare_internal_keys(&self.last_key, internal_key) == std::cmp::Ordering::Less,
            "keys must be added in order"
        );
        if let Some((key, handle)) = self.pending_index.take() {
            self.emit_index_entry(&key, handle);
        }
        if self.smallest.is_none() {
            self.smallest = Some(internal_key.to_vec());
        }
        let user_key = split_internal_key(internal_key)?.0;
        // Deduplicated per key would save a little space; the Bloom
        // policy handles duplicates fine, so keep it simple.
        self.filter_keys.push(user_key.to_vec());
        self.data_block.add(internal_key, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(internal_key);
        self.num_entries += 1;
        if self.data_block.size_estimate() >= self.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    fn emit_index_entry(&mut self, last_key: &[u8], handle: BlockHandle) {
        let mut value = Vec::with_capacity(16);
        handle.encode_to(&mut value);
        self.index_block.add(last_key, &value);
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let block = std::mem::take(&mut self.data_block);
        let last_key = block.last_key().to_vec();
        let contents = block.finish();
        let handle = self.write_raw_block(&contents)?;
        self.pending_index = Some((last_key, handle));
        Ok(())
    }

    /// Writes `contents` + trailer and returns its handle.
    fn write_raw_block(&mut self, contents: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle {
            offset: self.offset,
            size: contents.len() as u64,
        };
        self.file.append(contents)?;
        // Trailer: compression type (0 = none) + masked CRC of
        // contents + type byte.
        let ty = [0u8];
        let mut c = crc::extend(0, contents);
        c = crc::extend(c, &ty);
        self.file.append(&ty)?;
        self.file.append(&crc::mask(c).to_le_bytes())?;
        self.offset += contents.len() as u64 + BLOCK_TRAILER_SIZE as u64;
        Ok(handle)
    }

    /// Finishes the table: filter block, index block, footer, fsync.
    pub fn finish(mut self) -> Result<TableSummary> {
        self.flush_data_block()?;
        if let Some((key, handle)) = self.pending_index.take() {
            self.emit_index_entry(&key, handle);
        }
        // Filter block.
        let key_refs: Vec<&[u8]> = self.filter_keys.iter().map(|k| k.as_slice()).collect();
        let filter = self.bloom.create_filter(&key_refs);
        let filter_handle = self.write_raw_block(&filter)?;
        // Index block.
        let index = std::mem::take(&mut self.index_block);
        let index_handle = self.write_raw_block(&index.finish())?;
        // Footer.
        let footer = Footer {
            filter_handle,
            index_handle,
        };
        self.file.append(&footer.encode())?;
        self.offset += super::FOOTER_SIZE as u64;
        self.file.sync()?;

        Ok(TableSummary {
            file_size: self.offset,
            smallest: self.smallest.unwrap_or_default(),
            largest: self.last_key,
            num_entries: self.num_entries,
        })
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written so far (excludes the current unflushed block).
    pub fn current_size(&self) -> u64 {
        self.offset + self.data_block.size_estimate() as u64
    }
}
