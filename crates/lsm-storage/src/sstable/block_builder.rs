//! Prefix-compressed block construction.
//!
//! Entry layout: `[shared: varint][non_shared: varint][value_len:
//! varint][key delta][value]`. Every `restart_interval` entries a
//! restart point stores the full key; the block trailer lists restart
//! offsets for binary search.

use clsm_util::coding::{put_fixed32, put_varint32};

/// Default number of entries between restart points.
pub const RESTART_INTERVAL: usize = 16;

/// Accumulates sorted entries into one block.
#[derive(Debug)]
pub struct BlockBuilder {
    buffer: Vec<u8>,
    restarts: Vec<u32>,
    counter: usize,
    restart_interval: usize,
    last_key: Vec<u8>,
    num_entries: usize,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        Self::new(RESTART_INTERVAL)
    }
}

impl BlockBuilder {
    /// Creates a builder with the given restart interval.
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buffer: Vec::new(),
            restarts: vec![0],
            counter: 0,
            restart_interval: restart_interval.max(1),
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Appends an entry. Keys must arrive in strictly increasing
    /// internal order (the caller's responsibility).
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        let shared = if self.counter < self.restart_interval {
            common_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buffer.len() as u32);
            self.counter = 0;
            0
        };
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buffer, shared as u32);
        put_varint32(&mut self.buffer, non_shared as u32);
        put_varint32(&mut self.buffer, value.len() as u32);
        self.buffer.extend_from_slice(&key[shared..]);
        self.buffer.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.num_entries += 1;
    }

    /// Appends the restart trailer and returns the block contents.
    pub fn finish(mut self) -> Vec<u8> {
        for &r in &self.restarts {
            put_fixed32(&mut self.buffer, r);
        }
        put_fixed32(&mut self.buffer, self.restarts.len() as u32);
        self.buffer
    }

    /// Current size estimate including the trailer.
    pub fn size_estimate(&self) -> usize {
        self.buffer.len() + self.restarts.len() * 4 + 4
    }

    /// Returns `true` if no entries were added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// The last key added (for index construction).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::InternalIterator;
    use crate::sstable::Block;
    use std::sync::Arc;

    #[test]
    fn empty_block_finishes() {
        let b = BlockBuilder::default();
        assert!(b.is_empty());
        let data = b.finish();
        // Just the trailer: one restart (0) + count.
        assert_eq!(data.len(), 8);
        let block = Block::parse(data).unwrap();
        let mut it = Arc::new(block).iter();
        it.seek_to_first();
        assert!(!it.valid());
    }

    #[test]
    fn prefix_compression_shrinks_shared_keys() {
        let mut plain = BlockBuilder::new(1); // restart every entry: no sharing
        let mut compressed = BlockBuilder::new(16);
        for i in 0..16u32 {
            let key = format!("common-long-prefix-{i:04}");
            plain.add(key.as_bytes(), b"v");
            compressed.add(key.as_bytes(), b"v");
        }
        assert!(compressed.finish().len() < plain.finish().len());
    }

    #[test]
    fn size_estimate_tracks_finish() {
        let mut b = BlockBuilder::default();
        for i in 0..100u32 {
            b.add(format!("{i:05}").as_bytes(), &[7; 10]);
        }
        let est = b.size_estimate();
        assert_eq!(b.finish().len(), est);
    }
}
