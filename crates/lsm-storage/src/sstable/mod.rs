//! Sorted string tables: immutable on-disk runs of internal entries.
//!
//! File layout (LevelDB-compatible in structure):
//!
//! ```text
//! [data block 0]  [data block 1] ...        ← prefix-compressed entries
//! [filter block]                            ← Bloom filter over user keys
//! [index block]                             ← last key of each data block → handle
//! [footer]                                  ← handles of filter + index, magic
//! ```
//!
//! Every block is followed by a 5-byte trailer: a compression tag
//! (always 0 = none here) and a masked CRC32C covering block + tag.

mod block;
mod block_builder;
mod table_builder;
mod table_reader;

pub use block::{Block, BlockIter};
pub use block_builder::BlockBuilder;
pub use table_builder::TableBuilder;
pub use table_reader::{Table, TableIter};

use clsm_util::coding::{get_varint64, put_varint64};
use clsm_util::error::{Error, Result};

/// Magic number at the end of every table file.
pub const TABLE_MAGIC: u64 = 0xdb4775248b80fb57;

/// Size of the per-block trailer: type byte + crc32.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Fixed footer size: two varint handles padded to 40 bytes + magic.
pub const FOOTER_SIZE: usize = 48;

/// Location of a block within a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHandle {
    /// Byte offset of the block start.
    pub offset: u64,
    /// Length of the block contents, excluding the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Appends the varint encoding to `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Decodes a handle from the front of `src`, returning it and the
    /// bytes consumed.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let (offset, a) = get_varint64(src)?;
        let (size, b) = get_varint64(&src[a..])?;
        Ok((BlockHandle { offset, size }, a + b))
    }
}

/// The footer: filter handle, index handle, magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the Bloom-filter block.
    pub filter_handle: BlockHandle,
    /// Handle of the index block.
    pub index_handle: BlockHandle,
}

impl Footer {
    /// Encodes to exactly [`FOOTER_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FOOTER_SIZE);
        self.filter_handle.encode_to(&mut buf);
        self.index_handle.encode_to(&mut buf);
        buf.resize(FOOTER_SIZE - 8, 0);
        buf.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        buf
    }

    /// Decodes from exactly [`FOOTER_SIZE`] bytes.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() != FOOTER_SIZE {
            return Err(Error::corruption("footer has wrong size"));
        }
        let magic = u64::from_le_bytes(src[FOOTER_SIZE - 8..].try_into().expect("8 bytes"));
        if magic != TABLE_MAGIC {
            return Err(Error::corruption("bad table magic"));
        }
        let (filter_handle, n) = BlockHandle::decode_from(src)?;
        let (index_handle, _) = BlockHandle::decode_from(&src[n..])?;
        Ok(Footer {
            filter_handle,
            index_handle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        for h in [
            BlockHandle { offset: 0, size: 0 },
            BlockHandle {
                offset: 12345,
                size: 4096,
            },
            BlockHandle {
                offset: u64::MAX / 2,
                size: u64::MAX / 3,
            },
        ] {
            let mut buf = Vec::new();
            h.encode_to(&mut buf);
            let (decoded, n) = BlockHandle::decode_from(&buf).unwrap();
            assert_eq!(decoded, h);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            filter_handle: BlockHandle {
                offset: 100,
                size: 200,
            },
            index_handle: BlockHandle {
                offset: 300,
                size: 64,
            },
        };
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_SIZE);
        assert_eq!(Footer::decode(&enc).unwrap(), f);
    }

    #[test]
    fn footer_rejects_bad_magic_and_size() {
        let f = Footer {
            filter_handle: BlockHandle { offset: 1, size: 2 },
            index_handle: BlockHandle { offset: 3, size: 4 },
        };
        let mut enc = f.encode();
        assert!(Footer::decode(&enc[1..]).is_err());
        enc[FOOTER_SIZE - 1] ^= 0xff;
        assert!(Footer::decode(&enc).is_err());
    }
}
