//! Crash-consistency sweep at the storage layer.
//!
//! A deterministic workload runs against a [`FaultEnv`] that crashes at
//! the N-th durability-relevant operation, for every N the clean run
//! performs. After each crash the env simulates power loss (un-synced
//! suffixes torn away, possibly leaving a bit-flipped tail) and the
//! store is reopened on the surviving bytes. Recovery must:
//!
//! - never fail or panic, whatever the failpoint;
//! - retain every record that was sync-acknowledged before the crash;
//! - report torn WAL tails in the [`RecoveryReport`] instead of
//!   surfacing garbage records.

use std::path::Path;
use std::sync::Arc;

use clsm_util::env::{Env, FaultEnv};
use lsm_storage::store::Store;
use lsm_storage::wal::SyncMode;
use lsm_storage::{StoreOptions, WriteRecord};

fn test_opts(env: &FaultEnv) -> StoreOptions {
    StoreOptions {
        env: Arc::new(env.clone()),
        table_file_size: 16 * 1024,
        block_size: 1024,
        ..StoreOptions::default()
    }
}

fn record(i: u64) -> WriteRecord {
    WriteRecord::put(
        i + 1,
        format!("key{i:04}").into_bytes(),
        vec![b'a' + (i % 26) as u8; 512],
    )
}

const OPS: u64 = 40;

/// Runs the workload; returns the timestamps acknowledged as durable
/// before an injected crash stopped the run (all of them on a clean
/// run).
///
/// In `Sync` mode every successful `log` call is an ack. In `Async`
/// mode only records covered by a later successful `sync_wal` are.
fn run_workload(store: &Store, mode: SyncMode) -> Vec<u64> {
    let mut acked = Vec::new();
    let mut pending = Vec::new();
    for i in 0..OPS {
        let rec = record(i);
        let ts = rec.ts;
        if store.log(&[rec], mode).is_err() {
            return acked;
        }
        match mode {
            SyncMode::Sync => acked.push(ts),
            SyncMode::Async => {
                pending.push(ts);
                // Periodic explicit sync: the only async durability ack.
                if i % 8 == 7 {
                    if store.sync_wal().is_err() {
                        return acked;
                    }
                    acked.append(&mut pending);
                }
            }
        }
    }
    if mode == SyncMode::Async && store.sync_wal().is_ok() {
        acked.append(&mut pending);
    }
    acked
}

fn sweep(mode: SyncMode) {
    let dir = Path::new("/db");
    let seed = 0xD15C0 + mode as u64;

    // Clean run: count the durability ops the workload performs.
    let clean = FaultEnv::new(seed);
    let (store, recovered) = Store::open(dir, test_opts(&clean)).unwrap();
    assert!(recovered.records.is_empty());
    let all_acked = run_workload(&store, mode);
    assert_eq!(all_acked.len() as u64, OPS);
    drop(store);
    let total_ops = clean.op_count();
    assert!(total_ops > 0);

    for crash_at in 1..=total_ops {
        let fault = FaultEnv::new(seed);
        let (store, _) = Store::open(dir, test_opts(&fault)).unwrap();
        fault.crash_after(crash_at);
        let acked = run_workload(&store, mode);
        drop(store);

        fault.power_loss();
        let env: Arc<dyn Env> = Arc::new(fault.clone());
        let (reopened, recovered) = Store::open(
            dir,
            StoreOptions {
                env,
                ..test_opts(&fault)
            },
        )
        .unwrap_or_else(|e| panic!("recovery failed at failpoint {crash_at}: {e}"));

        let recovered_ts: std::collections::BTreeSet<u64> =
            recovered.records.iter().map(|r| r.ts).collect();
        for ts in &acked {
            assert!(
                recovered_ts.contains(ts),
                "failpoint {crash_at} ({mode:?}): sync-acked ts {ts} lost; \
                 recovered {recovered_ts:?}, report {:?}",
                reopened.recovery_report()
            );
        }
        // Recovered records must be byte-identical to what was written,
        // not torn-tail garbage that happened to pass the CRC.
        for r in &recovered.records {
            assert_eq!(*r, record(r.ts - 1), "failpoint {crash_at} ({mode:?})");
        }
        drop(reopened);
    }
}

#[test]
fn sync_logging_failpoint_sweep() {
    sweep(SyncMode::Sync);
}

#[test]
fn async_logging_failpoint_sweep() {
    sweep(SyncMode::Async);
}

/// Crashing while the manifest is being rewritten must leave a store
/// that recovers to the last durable version.
#[test]
fn wal_rotation_failpoints_keep_manifest_consistent() {
    let dir = Path::new("/db");
    let seed = 0xA11CE;

    // Clean run with a rotation in the middle.
    let clean = FaultEnv::new(seed);
    let (store, _) = Store::open(dir, test_opts(&clean)).unwrap();
    for i in 0..10 {
        store.log(&[record(i)], SyncMode::Sync).unwrap();
    }
    store.rotate_wal().unwrap();
    for i in 10..20 {
        store.log(&[record(i)], SyncMode::Sync).unwrap();
    }
    drop(store);
    let total_ops = clean.op_count();

    for crash_at in 1..=total_ops {
        let fault = FaultEnv::new(seed);
        let (store, _) = Store::open(dir, test_opts(&fault)).unwrap();
        fault.crash_after(crash_at);
        let mut acked: Vec<u64> = Vec::new();
        let mut run = || -> Result<(), clsm_util::Error> {
            for i in 0..10 {
                store.log(&[record(i)], SyncMode::Sync)?;
                acked.push(i + 1);
            }
            store.rotate_wal()?;
            for i in 10..20 {
                store.log(&[record(i)], SyncMode::Sync)?;
                acked.push(i + 1);
            }
            Ok(())
        };
        let _ = run();
        drop(store);

        fault.power_loss();
        let (_reopened, recovered) = Store::open(dir, test_opts(&fault))
            .unwrap_or_else(|e| panic!("recovery failed at failpoint {crash_at}: {e}"));
        let recovered_ts: std::collections::BTreeSet<u64> =
            recovered.records.iter().map(|r| r.ts).collect();
        for ts in &acked {
            assert!(
                recovered_ts.contains(ts),
                "failpoint {crash_at}: acked ts {ts} lost across rotation"
            );
        }
    }
}
