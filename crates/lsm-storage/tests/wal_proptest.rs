//! Property tests for the WAL reader on damaged log files.
//!
//! Whatever a crash leaves behind — a log cut at an arbitrary byte, a
//! garbage suffix from a torn sector, a flipped bit anywhere in the
//! file — the reader must never panic and never fabricate a record:
//! it returns a prefix of what was written and reports the damage as
//! [`Error::WalTruncated`] with an offset inside the file.

use std::sync::{Arc, Mutex};

use clsm_util::env::{RandomAccessFile, WritableFile};
use clsm_util::error::{Error, Result};
use lsm_storage::wal::{LogReader, LogWriter};
use proptest::prelude::*;

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl WritableFile for SharedBuf {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

struct MemFile(Vec<u8>);

impl RandomAccessFile for MemFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let start = (offset as usize).min(self.0.len());
        let n = buf.len().min(self.0.len() - start);
        buf[..n].copy_from_slice(&self.0[start..start + n]);
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.0.len() as u64)
    }
}

/// Writes `records`, returning the file bytes and the end offset of
/// each record's encoding.
fn write_log(records: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let sink = SharedBuf::default();
    let mut w = LogWriter::new(Box::new(sink.clone()));
    let mut ends = Vec::with_capacity(records.len());
    for r in records {
        w.add_record(r).unwrap();
        w.flush().unwrap();
        ends.push(sink.bytes().len());
    }
    (sink.bytes(), ends)
}

/// Reads every record until end-of-log or the first error.
fn read_all(bytes: Vec<u8>) -> (Vec<Vec<u8>>, Option<Error>) {
    let total = bytes.len() as u64;
    let mut reader = LogReader::new(Box::new(MemFile(bytes)));
    let mut out = Vec::new();
    loop {
        match reader.read_record() {
            Ok(Some(rec)) => out.push(rec),
            Ok(None) => return (out, None),
            Err(e) => {
                // The reader is fused after an error, and the reported
                // offset lies inside the file.
                match &e {
                    Error::WalTruncated { offset, .. } => assert!(*offset <= total),
                    other => panic!("non-truncation error from reader: {other:?}"),
                }
                assert!(matches!(reader.read_record(), Ok(None)));
                return (out, Some(e));
            }
        }
    }
}

fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    // Mix of tiny records and ones long enough to span block
    // boundaries as FIRST/MIDDLE/LAST fragments.
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..9000), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Cutting the file at any byte: every record that ends before the
    // cut survives, and nothing but a prefix is returned.
    #[test]
    fn truncation_yields_exact_prefix(
        records in arb_records(),
        cut_ppm in 0usize..1_000_000,
    ) {
        let (bytes, ends) = write_log(&records);
        let cut = bytes.len() * cut_ppm / 1_000_000;
        let complete = ends.iter().filter(|&&e| e <= cut).count();

        let (got, err) = read_all(bytes[..cut].to_vec());
        prop_assert!(got.len() >= complete,
            "lost complete records: {} < {complete}", got.len());
        prop_assert_eq!(&got[..], &records[..got.len()]);
        if got.len() < records.len() {
            // Some records are missing, so the damage must be reported
            // (a cut exactly on a record boundary reads as clean EOF).
            prop_assert!(err.is_some() || cut == ends[got.len().max(1) - 1] || got.is_empty());
        }
    }

    // A garbage suffix after a clean log: all real records come back,
    // and the reported damage offset never points before the suffix.
    #[test]
    fn garbage_suffix_is_quarantined(
        records in arb_records(),
        garbage in prop::collection::vec(any::<u8>(), 1..300),
    ) {
        let (mut bytes, _) = write_log(&records);
        let clean_len = bytes.len() as u64;
        bytes.extend_from_slice(&garbage);

        let (got, err) = read_all(bytes);
        prop_assert_eq!(&got[..], &records[..]);
        if let Some(Error::WalTruncated { offset, .. }) = err {
            prop_assert!(offset >= clean_len,
                "damage reported at {offset}, before the suffix at {clean_len}");
        }
    }

    // One flipped byte anywhere: the result is still a strict prefix
    // of the original records — never a corrupted record.
    #[test]
    fn single_byte_corruption_never_fabricates_records(
        records in arb_records(),
        pos_ppm in 0usize..1_000_000,
        xor in 1u8..255,
    ) {
        // At least one record is generated, so the file is non-empty.
        let (mut bytes, _) = write_log(&records);
        let pos = (bytes.len() - 1) * pos_ppm / 1_000_000;
        bytes[pos] ^= xor;

        let (got, _err) = read_all(bytes);
        prop_assert!(got.len() <= records.len());
        prop_assert_eq!(&got[..], &records[..got.len()]);
    }
}
