//! Stress and configuration-matrix tests of the disk substrate.

use std::sync::Arc;

use lsm_storage::format::ValueKind;
use lsm_storage::iter::VecIterator;
use lsm_storage::wal::SyncMode;
use lsm_storage::{Store, StoreOptions, WriteRecord};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "store-stress-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_opts() -> StoreOptions {
    StoreOptions {
        table_file_size: 4096,
        base_level_bytes: 16 * 1024,
        level_multiplier: 4,
        l0_compaction_trigger: 2,
        ..Default::default()
    }
}

fn entries(range: std::ops::Range<u64>, ts_base: u64) -> Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)> {
    range
        .map(|i| {
            (
                format!("key{i:06}").into_bytes(),
                ts_base + i,
                ValueKind::Put,
                vec![7u8; 32],
            )
        })
        .collect()
}

#[test]
fn works_without_a_block_cache() {
    let dir = TempDir::new("nocache");
    let mut opts = tiny_opts();
    opts.block_cache_bytes = 0; // cache disabled entirely
    let (store, _) = Store::open(&dir.0, opts).unwrap();
    let wal = store.rotate_wal().unwrap();
    let mut it = VecIterator::new(entries(0..500, 1));
    store.flush_memtable(&mut it, 500, 500, wal).unwrap();
    assert!(store.cache_stats().is_none());
    for i in (0..500).step_by(71) {
        let got = store
            .get(format!("key{i:06}").as_bytes(), u64::MAX >> 1)
            .unwrap();
        assert!(got.is_some(), "key {i}");
    }
    assert!(store.verify_integrity().unwrap() >= 500);
}

#[test]
fn tiny_table_cache_evicts_and_reopens() {
    let dir = TempDir::new("tinycache");
    let mut opts = tiny_opts();
    opts.max_open_tables = 8; // clamp floor in TableCache
    opts.table_file_size = 1024; // many small files
    let (store, _) = Store::open(&dir.0, opts).unwrap();
    // Create several flushes → many tables.
    for round in 0..6u64 {
        let wal = store.rotate_wal().unwrap();
        let mut it = VecIterator::new(entries(round * 300..round * 300 + 300, round * 1000 + 1));
        store
            .flush_memtable(&mut it, u64::MAX >> 1, round * 1000 + 300, wal)
            .unwrap();
    }
    // Random-ish reads across all files force evict/reopen cycles.
    for i in (0..1800).step_by(37) {
        let got = store
            .get(format!("key{i:06}").as_bytes(), u64::MAX >> 1)
            .unwrap();
        assert!(got.is_some(), "key {i}");
    }
}

#[test]
fn concurrent_flush_and_compaction_stress() {
    // Hammer the store with flushes from one thread while two others
    // run compactions; the pending-outputs and claim machinery must
    // keep every read valid throughout.
    let dir = TempDir::new("concurrent");
    let (store, _) = Store::open(&dir.0, tiny_opts()).unwrap();
    let store = Arc::new(store);
    let rounds = 20u64;

    std::thread::scope(|scope| {
        // Flusher.
        {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for round in 0..rounds {
                    let wal = store.rotate_wal().unwrap();
                    let base = (round % 4) * 100; // overlapping ranges
                    let mut it = VecIterator::new(entries(base..base + 200, round * 1000 + 1));
                    store
                        .flush_memtable(&mut it, u64::MAX >> 1, round * 1000 + 200, wal)
                        .unwrap();
                }
            });
        }
        // Compactors.
        for _ in 0..2 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..200 {
                    let _ = store.maybe_compact(u64::MAX >> 1).unwrap();
                    std::thread::yield_now();
                }
            });
        }
        // Reader: every key written by completed flushes must resolve.
        {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..2000 {
                    let key = format!("key{:06}", fastrand(0, 500));
                    // Value may or may not exist yet; the call must
                    // never error (no ENOENT from deleted files).
                    store.get(key.as_bytes(), u64::MAX >> 1).unwrap();
                }
            });
        }
    });

    while store.maybe_compact(u64::MAX >> 1).unwrap() {}
    // All data from the last writer of each key is present.
    assert!(store.verify_integrity().unwrap() > 0);
    for i in 0..500u64 {
        let written = (0..rounds).any(|r| {
            let base = (r % 4) * 100;
            i >= base && i < base + 200
        });
        let got = store
            .get(format!("key{i:06}").as_bytes(), u64::MAX >> 1)
            .unwrap();
        assert_eq!(got.is_some(), written, "key {i}");
    }
}

// Cheap deterministic pseudo-random for the reader thread.
fn fastrand(lo: u64, hi: u64) -> u64 {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x2545_f491_4f6c_dd1d) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        lo + x % (hi - lo)
    })
}

#[test]
fn recovery_across_many_wal_rotations() {
    let dir = TempDir::new("rotations");
    {
        let (store, _) = Store::open(&dir.0, tiny_opts()).unwrap();
        // Interleave logged-but-unflushed records with rotations; only
        // records after the last retire boundary should replay.
        for i in 0..10u64 {
            store
                .log(
                    &[WriteRecord::put(
                        i + 1,
                        format!("k{i}").into_bytes(),
                        b"v".to_vec(),
                    )],
                    SyncMode::Sync,
                )
                .unwrap();
            if i % 3 == 2 {
                // Rotate without flushing: older WALs remain live.
                store.rotate_wal().unwrap();
            }
        }
    }
    let (_store, recovered) = Store::open(&dir.0, tiny_opts()).unwrap();
    // Nothing was flushed, so all 10 records replay, in ts order.
    let ts: Vec<u64> = recovered.records.iter().map(|r| r.ts).collect();
    assert_eq!(ts, (1..=10).collect::<Vec<_>>());
}

#[test]
fn minimum_level_configuration() {
    let dir = TempDir::new("two-levels");
    let mut opts = tiny_opts();
    opts.num_levels = 2;
    let (store, _) = Store::open(&dir.0, opts).unwrap();
    for round in 0..5u64 {
        let wal = store.rotate_wal().unwrap();
        let mut it = VecIterator::new(entries(0..100, round * 1000 + 1));
        store
            .flush_memtable(&mut it, u64::MAX >> 1, round * 1000 + 100, wal)
            .unwrap();
        while store.maybe_compact(u64::MAX >> 1).unwrap() {}
    }
    // Everything ends in the bottom level (L1).
    let counts = store.level_file_counts();
    assert_eq!(counts.len(), 2);
    assert_eq!(counts[0], 0, "L0 should drain: {counts:?}");
    assert!(counts[1] > 0);
    assert!(store.get(b"key000050", u64::MAX >> 1).unwrap().is_some());
}
