//! Robustness property tests: every on-disk decoder must reject
//! arbitrary or mutated bytes with an error — never panic, hang, or
//! return garbage that round-trips as valid.

use lsm_storage::format::{split_internal_key, InternalKey, ValueKind, WriteRecord};
use lsm_storage::sstable::{Block, BlockHandle, Footer};
use lsm_storage::version::VersionEdit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_record_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = WriteRecord::decode_batch(&bytes);
    }

    #[test]
    fn version_edit_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = VersionEdit::decode(&bytes);
    }

    #[test]
    fn footer_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Footer::decode(&bytes);
    }

    #[test]
    fn block_handle_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = BlockHandle::decode_from(&bytes);
    }

    #[test]
    fn internal_key_split_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = split_internal_key(&bytes);
    }

    #[test]
    fn block_parse_and_iterate_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(block) = Block::parse(bytes) {
            use lsm_storage::iter::InternalIterator;
            let block = std::sync::Arc::new(block);
            let mut it = block.iter();
            it.seek_to_first();
            // Bound the walk: corrupted restart arrays must not loop
            // forever, and raw accessors must stay in bounds.
            for _ in 0..1000 {
                if !it.is_valid() {
                    break;
                }
                let _ = it.raw_key();
                let _ = it.raw_value();
                it.step();
            }
            // Status may be Ok (valid empty block) or a corruption error.
            let _ = it.status();
        }
    }

    #[test]
    fn mutated_valid_record_roundtrip_is_detected_or_equal(
        key in prop::collection::vec(any::<u8>(), 0..32),
        value in prop::collection::vec(any::<u8>(), 0..64),
        ts in 0u64..u64::MAX / 4,
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let record = WriteRecord::put(ts, key, value);
        let mut buf = Vec::new();
        record.encode_to(&mut buf);
        // Flip one bit somewhere.
        let pos = flip_at.index(buf.len());
        buf[pos] ^= 1 << flip_bit;
        match WriteRecord::decode_batch(&buf) {
            // Either an error…
            Err(_) => {}
            // …or a structurally valid decode. It must never panic, and
            // a same-length decode of the untouched buffer must equal
            // the original (sanity that the encoder is deterministic).
            Ok(_) => {
                buf[pos] ^= 1 << flip_bit;
                let restored = WriteRecord::decode_batch(&buf).unwrap();
                prop_assert_eq!(restored, vec![record]);
            }
        }
    }

    #[test]
    fn internal_key_roundtrip_for_arbitrary_user_keys(
        user in prop::collection::vec(any::<u8>(), 0..64),
        ts in 0u64..(1 << 62),
    ) {
        for kind in [ValueKind::Put, ValueKind::Delete] {
            let k = InternalKey::new(&user, ts, kind);
            let (u, t, kd) = split_internal_key(k.encoded()).unwrap();
            prop_assert_eq!(u, user.as_slice());
            prop_assert_eq!(t, ts);
            prop_assert_eq!(kd, kind);
        }
    }
}
