//! The canonical perf suite behind the `bench-suite` binary:
//! a fixed matrix of measured cells emitted as one machine-readable
//! `BENCH_<label>.json`, plus the comparator that turns two such files
//! into per-metric deltas and a pass/fail regression verdict.
//!
//! The JSON schema is versioned ([`SCHEMA_VERSION`]); the comparator
//! refuses to diff files written under a different version, so a
//! schema change can never silently report "no regression". Everything
//! is hand-rolled — the workspace has no serde, and the subset of JSON
//! the suite needs (objects, arrays, strings, numbers, bools) fits in
//! the small recursive-descent parser at the bottom of this module.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use clsm::{Options, WritePathReport};
use clsm_baselines::KvStore;
use clsm_util::error::{Error, Result};
use clsm_workloads::runner::prefill_store;
use clsm_workloads::{run_workload, Prefill, RunConfig, RunResult, WorkloadSpec};

use crate::stability::StabilityResult;

/// Version stamp written into every `BENCH_*.json`. Bump on any field
/// change; [`compare`] rejects mismatched versions outright.
///
/// History: 1 = the original matrix-only schema; 2 added the
/// `stability` section (per-window time series + variance summary);
/// 3 added the `net` section (client-observed loopback TCP cells).
pub const SCHEMA_VERSION: u32 = 3;

/// One cell of the canonical matrix: a workload at a fixed
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Workload name (`write-100` or `mixed-50-50`).
    pub workload: &'static str,
    /// Worker threads driving the store.
    pub threads: usize,
    /// Range shards (1 = a single `Db`).
    pub shards: usize,
    /// Group-commit pipeline on or off.
    pub group_commit: bool,
}

impl CellSpec {
    /// Stable cell identifier; [`compare`] matches cells by this.
    pub fn id(&self) -> String {
        format!(
            "{}.t{}.gc-{}.s{}",
            self.workload,
            self.threads,
            if self.group_commit { "on" } else { "off" },
            self.shards
        )
    }
}

/// The canonical matrix. `smoke` is the CI-sized subset: write-only at
/// 1–2 threads across {group commit on, off} × {1, 4 shards}, plus one
/// mixed cell. The full matrix sweeps 1→8 threads and runs the mixed
/// workload on both shard counts.
pub fn canonical_matrix(smoke: bool) -> Vec<CellSpec> {
    let write_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mixed_threads: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let mut cells = Vec::new();
    for &shards in &[1usize, 4] {
        for &group_commit in &[true, false] {
            for &threads in write_threads {
                cells.push(CellSpec {
                    workload: "write-100",
                    threads,
                    shards,
                    group_commit,
                });
            }
        }
    }
    // Mixed 50/50 runs under the default configuration (group commit
    // on); smoke keeps a single mixed cell.
    for &shards in &[1usize, 4] {
        if smoke && shards != 1 {
            continue;
        }
        for &threads in mixed_threads {
            cells.push(CellSpec {
                workload: "mixed-50-50",
                threads,
                shards,
                group_commit: true,
            });
        }
    }
    cells
}

/// Suite-wide knobs resolved from the CLI.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// CI-sized matrix and durations.
    pub smoke: bool,
    /// Label baked into the artifact name and JSON.
    pub label: String,
    /// Seconds per measured cell.
    pub seconds: f64,
    /// RNG seed for the workload drivers.
    pub seed: u64,
    /// Distinct keys per cell.
    pub key_space: u64,
    /// Also measure the networked (loopback TCP) cells.
    pub net: bool,
    /// Ensure the write-scaling cells ([`scaling_cells`]) are in the
    /// matrix (the full matrix already contains them; smoke only has
    /// the 1- and 2-thread points).
    pub scaling: bool,
}

impl SuiteConfig {
    /// Defaults for the given mode (`--seconds` can override).
    pub fn new(smoke: bool, label: &str) -> SuiteConfig {
        SuiteConfig {
            smoke,
            label: label.to_string(),
            seconds: if smoke { 0.2 } else { 1.0 },
            seed: 0xc15a,
            key_space: if smoke { 20_000 } else { 60_000 },
            net: false,
            scaling: false,
        }
    }
}

/// The write-scaling cells: write-only, group commit on, one shard,
/// 1→8 threads. `--scaling` appends whichever of these the matrix is
/// missing and the summary gate reads the resulting curve.
pub fn scaling_cells() -> Vec<CellSpec> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| CellSpec {
            workload: "write-100",
            threads,
            shards: 1,
            group_commit: true,
        })
        .collect()
}

/// Scaling-gate tolerance: each step up in threads (through 4) may
/// lose at most this fraction of the previous point's throughput.
/// Extra writer threads cannot speed anything up on a small CI box,
/// but they must not collide on the write path either — the
/// serialization bugs this gate exists for (a hot Active-set lock, a
/// shared arena mutex, one WAL queue) cost well over 10%.
pub const SCALING_TOLERANCE: f64 = 0.9;

/// The write-scaling curve pulled out of a report, plus the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingSummary {
    /// `(threads, kops_per_sec)` sorted by thread count.
    pub points: Vec<(usize, f64)>,
    /// Whether every step through 4 threads kept at least
    /// [`SCALING_TOLERANCE`] of the previous point's throughput.
    pub passed: bool,
}

/// Reads the [`scaling_cells`] measurements out of `report`. Returns
/// `None` when fewer than two scaling cells are present (nothing to
/// gate — e.g. a smoke run without `--scaling`).
pub fn scaling_summary(report: &SuiteReport) -> Option<ScalingSummary> {
    let mut points: Vec<(usize, f64)> = scaling_cells()
        .iter()
        .filter_map(|spec| {
            let id = spec.id();
            report
                .cells
                .iter()
                .find(|c| c.id == id)
                .map(|c| (spec.threads, c.kops_per_sec))
        })
        .collect();
    points.sort_by_key(|&(t, _)| t);
    if points.len() < 2 {
        return None;
    }
    let passed = points
        .windows(2)
        .filter(|w| w[1].0 <= 4)
        .all(|w| w[1].1 >= SCALING_TOLERANCE * w[0].1);
    Some(ScalingSummary { points, passed })
}

impl ScalingSummary {
    /// Human-readable block: one line per point with its ratio to the
    /// single-thread baseline, then the verdict. The 8-thread ratio is
    /// reported but never gated — a genuine 8-way speedup needs more
    /// cores than CI guarantees.
    pub fn text(&self) -> String {
        let mut out = String::from("write scaling (write-100.gc-on.s1):\n");
        let base = self.points.first().map_or(0.0, |&(_, k)| k);
        for &(threads, kops) in &self.points {
            let _ = writeln!(
                out,
                "  t{threads}: {kops:>8.1} kops/s  ({:.2}x t{})",
                if base > 0.0 { kops / base } else { 0.0 },
                self.points[0].0
            );
        }
        let _ = writeln!(
            out,
            "scaling gate (each step through t4 >= {SCALING_TOLERANCE}x previous): {}",
            if self.passed { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// One networked cell: the same store behind `clsm-server` on
/// loopback, driven through the pipelined client, so every latency in
/// the histogram is **client-observed** (client queueing + wire +
/// server coalescing + store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetCellSpec {
    /// Workload name (`write-100` or `mixed-50-50`).
    pub workload: &'static str,
    /// Client worker threads driving the remote store.
    pub threads: usize,
    /// TCP connections in the client pool.
    pub connections: usize,
    /// Per-connection pipeline depth.
    pub pipeline_depth: usize,
}

impl NetCellSpec {
    /// Stable cell identifier; [`compare`] matches net cells by this.
    pub fn id(&self) -> String {
        format!(
            "net.{}.t{}.c{}.d{}",
            self.workload, self.threads, self.connections, self.pipeline_depth
        )
    }
}

/// The networked matrix. Smoke keeps one write and one mixed cell;
/// the full matrix sweeps client threads on both workloads.
pub fn net_matrix(smoke: bool) -> Vec<NetCellSpec> {
    let threads: &[usize] = if smoke { &[4] } else { &[1, 2, 4, 8] };
    let mut cells = Vec::new();
    for &workload in &["write-100", "mixed-50-50"] {
        for &t in threads {
            cells.push(NetCellSpec {
                workload,
                threads: t,
                connections: if smoke { 2 } else { 4 },
                pipeline_depth: if smoke { 32 } else { 64 },
            });
        }
    }
    cells
}

/// One measured networked cell.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCellResult {
    /// Stable cell id ([`NetCellSpec::id`]).
    pub id: String,
    /// Workload name.
    pub workload: String,
    /// Client worker threads.
    pub threads: usize,
    /// TCP connections in the pool.
    pub connections: usize,
    /// Per-connection pipeline depth.
    pub pipeline_depth: usize,
    /// Completed operations.
    pub ops: u64,
    /// Measured wall-clock seconds.
    pub elapsed_s: f64,
    /// Client-observed throughput, thousands of ops per second.
    pub kops_per_sec: f64,
    /// Client-observed median latency, microseconds.
    pub p50_us: f64,
    /// Client-observed 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Client-observed 99.9th-percentile latency, microseconds.
    pub p999_us: f64,
}

impl NetCellResult {
    /// Builds a net cell result from a finished run.
    pub fn new(spec: &NetCellSpec, run: &RunResult) -> NetCellResult {
        NetCellResult {
            id: spec.id(),
            workload: spec.workload.to_string(),
            threads: spec.threads,
            connections: spec.connections,
            pipeline_depth: spec.pipeline_depth,
            ops: run.ops,
            elapsed_s: run.elapsed.as_secs_f64(),
            kops_per_sec: run.ops_per_sec() / 1000.0,
            p50_us: run.latency.percentile(50.0) as f64 / 1000.0,
            p99_us: run.latency.percentile(99.0) as f64 / 1000.0,
            p999_us: run.latency.percentile(99.9) as f64 / 1000.0,
        }
    }
}

/// One write-path stage's summary inside a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage name (`queue_wait` … `wake`, plus `total`).
    pub name: String,
    /// Samples recorded during the cell.
    pub count: u64,
    /// Aggregate nanoseconds spent in the stage.
    pub sum_ns: u64,
    /// Mean nanoseconds per sample.
    pub mean_ns: f64,
    /// Median nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile nanoseconds.
    pub p99_ns: u64,
}

/// Commit-mode counters for a cell (see `db.commit.*`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitModes {
    /// Solo fast-path commits.
    pub solo: u64,
    /// Requests whose submitter led a group.
    pub leader: u64,
    /// Requests committed by another thread's leader.
    pub follower: u64,
    /// Requests withdrawn from the pipeline.
    pub withdrawn: u64,
    /// Groups committed.
    pub groups: u64,
    /// Requests committed as group members.
    pub grouped: u64,
}

/// One measured cell's results.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Stable cell id ([`CellSpec::id`]).
    pub id: String,
    /// Workload name.
    pub workload: String,
    /// Worker threads.
    pub threads: usize,
    /// Range shards.
    pub shards: usize,
    /// Group-commit pipeline state.
    pub group_commit: bool,
    /// Completed operations.
    pub ops: u64,
    /// Measured wall-clock seconds.
    pub elapsed_s: f64,
    /// Throughput in thousands of operations per second.
    pub kops_per_sec: f64,
    /// Median operation latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile operation latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile operation latency, microseconds.
    pub p999_us: f64,
    /// Per-stage write-path breakdown (empty when attribution is off).
    pub stages: Vec<StageRow>,
    /// Commit-mode distribution.
    pub commit: CommitModes,
}

impl CellResult {
    /// Builds a cell result from the run and the store's (merged)
    /// metrics snapshot taken right after it.
    pub fn new(
        spec: &CellSpec,
        run: &RunResult,
        snapshot: &clsm_util::metrics::MetricsSnapshot,
    ) -> CellResult {
        let wp = WritePathReport::from_snapshot(snapshot);
        let mut stages: Vec<StageRow> = wp
            .stages
            .iter()
            .map(|s| StageRow {
                name: s.name.to_string(),
                count: s.summary.count,
                sum_ns: s.summary.sum,
                mean_ns: s.summary.mean,
                p50_ns: s.summary.p50,
                p99_ns: s.summary.p99,
            })
            .collect();
        if let Some(total) = &wp.total {
            stages.push(StageRow {
                name: "total".to_string(),
                count: total.count,
                sum_ns: total.sum,
                mean_ns: total.mean,
                p50_ns: total.p50,
                p99_ns: total.p99,
            });
        }
        CellResult {
            id: spec.id(),
            workload: spec.workload.to_string(),
            threads: spec.threads,
            shards: spec.shards,
            group_commit: spec.group_commit,
            ops: run.ops,
            elapsed_s: run.elapsed.as_secs_f64(),
            kops_per_sec: run.ops_per_sec() / 1000.0,
            p50_us: run.latency.percentile(50.0) as f64 / 1000.0,
            p99_us: run.latency.percentile(99.0) as f64 / 1000.0,
            p999_us: run.latency.percentile(99.9) as f64 / 1000.0,
            stages,
            commit: CommitModes {
                solo: wp.solo,
                leader: wp.leader_requests,
                follower: wp.follower_requests,
                withdrawn: wp.withdrawn,
                groups: wp.groups,
                grouped: wp.group_requests,
            },
        }
    }
}

/// Environment fingerprint written into the artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at run time.
    pub cpus: usize,
    /// `true` for a debug (unoptimized) build.
    pub debug: bool,
}

impl EnvFingerprint {
    /// Samples the current process's environment.
    pub fn current() -> EnvFingerprint {
        EnvFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, usize::from),
            debug: cfg!(debug_assertions),
        }
    }
}

/// A whole suite run: everything `BENCH_<label>.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Artifact label (`BENCH_<label>.json`).
    pub label: String,
    /// `smoke` or `full`.
    pub mode: String,
    /// Seconds per measured cell.
    pub seconds: f64,
    /// Distinct keys per cell.
    pub key_space: u64,
    /// Where the run happened.
    pub env: EnvFingerprint,
    /// The measured cells, in matrix order.
    pub cells: Vec<CellResult>,
    /// Networked (loopback TCP) cells (`--net`); empty when the run
    /// measured only the in-process matrix.
    pub net: Vec<NetCellResult>,
    /// Long-run stability cells (`--stability`); empty when the run
    /// measured only the matrix.
    pub stability: Vec<StabilityResult>,
}

/// Runs one cell on a fresh store under `data_dir` (removed
/// afterwards), returning its measurements plus stage breakdown.
pub fn run_cell(spec: &CellSpec, cfg: &SuiteConfig, data_dir: &Path) -> Result<CellResult> {
    let dir = data_dir.join(spec.id());
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    let mut opts = suite_store_options();
    opts.shards = spec.shards;
    opts.group_commit = spec.group_commit;
    let store: Arc<dyn KvStore> = if spec.shards > 1 {
        Arc::new(clsm::ShardedDb::open(&dir, opts)?)
    } else {
        Arc::new(clsm::Db::open(&dir, opts)?)
    };
    let workload = match spec.workload {
        "mixed-50-50" => WorkloadSpec::mixed(cfg.key_space),
        _ => WorkloadSpec::write_only(cfg.key_space),
    };
    prefill_store(store.as_ref(), &workload)?;
    let run = run_workload(
        &store,
        &workload,
        &RunConfig {
            threads: spec.threads,
            duration: Duration::from_secs_f64(cfg.seconds),
            seed: cfg.seed,
        },
        Prefill::Skip,
    )?;
    // `stats()` is the merged snapshot for sharded stores, so stage
    // histograms cover every shard. A fresh store per cell keeps the
    // cumulative counters scoped to this cell (plus its prefill).
    let snapshot = store.stats();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(CellResult::new(spec, &run, &snapshot))
}

/// Runs one networked cell: a fresh store behind an embedded loopback
/// server, prefilled locally (the wire measures the workload, not the
/// prefill), then driven through the pipelined client.
pub fn run_net_cell(
    spec: &NetCellSpec,
    cfg: &SuiteConfig,
    data_dir: &Path,
) -> Result<NetCellResult> {
    let dir = data_dir.join(spec.id());
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    let db: Arc<dyn KvStore> = Arc::new(clsm::Db::open(&dir, suite_store_options())?);
    let workload = match spec.workload {
        "mixed-50-50" => WorkloadSpec::mixed(cfg.key_space),
        _ => WorkloadSpec::write_only(cfg.key_space),
    };
    prefill_store(db.as_ref(), &workload)?;
    let net = clsm_net::NetOptions::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .connections(spec.connections)
        .pipeline_depth(spec.pipeline_depth)
        .build()?;
    let remote: Arc<dyn KvStore> = Arc::new(clsm_net::RemoteStore::with_embedded_server(db, &net)?);
    let run = run_workload(
        &remote,
        &workload,
        &RunConfig {
            threads: spec.threads,
            duration: Duration::from_secs_f64(cfg.seconds),
            seed: cfg.seed,
        },
        Prefill::Skip,
    )?;
    drop(remote);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(NetCellResult::new(spec, &run))
}

/// Runs the whole matrix, with progress on stderr.
pub fn run_suite(cfg: &SuiteConfig, data_dir: &Path) -> Result<SuiteReport> {
    let mut matrix = canonical_matrix(cfg.smoke);
    if cfg.scaling {
        for spec in scaling_cells() {
            if !matrix.contains(&spec) {
                matrix.push(spec);
            }
        }
    }
    let mut cells = Vec::with_capacity(matrix.len());
    for (i, spec) in matrix.iter().enumerate() {
        eprintln!(
            "[bench-suite] cell {}/{}: {}",
            i + 1,
            matrix.len(),
            spec.id()
        );
        let cell = run_cell(spec, cfg, data_dir)?;
        eprintln!(
            "[bench-suite]   {:.1} kops/s  p99={:.1}µs",
            cell.kops_per_sec, cell.p99_us
        );
        cells.push(cell);
    }
    let mut net = Vec::new();
    if cfg.net {
        let net_cells = net_matrix(cfg.smoke);
        for (i, spec) in net_cells.iter().enumerate() {
            eprintln!(
                "[bench-suite] net cell {}/{}: {}",
                i + 1,
                net_cells.len(),
                spec.id()
            );
            let cell = run_net_cell(spec, cfg, data_dir)?;
            eprintln!(
                "[bench-suite]   {:.1} kops/s  p50={:.1}µs p999={:.1}µs (client-observed)",
                cell.kops_per_sec, cell.p50_us, cell.p999_us
            );
            net.push(cell);
        }
    }
    Ok(SuiteReport {
        label: cfg.label.clone(),
        mode: if cfg.smoke { "smoke" } else { "full" }.to_string(),
        seconds: cfg.seconds,
        key_space: cfg.key_space,
        env: EnvFingerprint::current(),
        cells,
        net,
        stability: Vec::new(),
    })
}

/// Store options for suite cells: the quick-mode bench sizes, so a
/// smoke cell stays memtable-resident instead of flush-bound, with the
/// striped WAL on so the suite measures the scaling configuration the
/// write-path work targets.
fn suite_store_options() -> Options {
    let mut opts = Options {
        memtable_bytes: 16 * 1024 * 1024,
        ..Options::default()
    };
    opts.store.table_file_size = 2 * 1024 * 1024;
    opts.store.base_level_bytes = 16 * 1024 * 1024;
    opts.store.block_cache_bytes = 64 * 1024 * 1024;
    opts.store.wal_stripes = 4;
    opts
}

impl SuiteReport {
    /// Serializes the report (the `BENCH_<label>.json` contents).
    /// Scalar fields sit one per line so line tools (`grep`, `sed`)
    /// can read and rewrite individual metrics.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", SCHEMA_VERSION);
        let _ = writeln!(out, "  \"label\": {},", json_str(&self.label));
        let _ = writeln!(out, "  \"mode\": {},", json_str(&self.mode));
        let _ = writeln!(out, "  \"seconds\": {},", json_f64(self.seconds));
        let _ = writeln!(out, "  \"key_space\": {},", self.key_space);
        out.push_str("  \"env\": {\n");
        let _ = writeln!(out, "    \"os\": {},", json_str(&self.env.os));
        let _ = writeln!(out, "    \"arch\": {},", json_str(&self.env.arch));
        let _ = writeln!(out, "    \"cpus\": {},", self.env.cpus);
        let _ = writeln!(out, "    \"debug\": {}", self.env.debug);
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"id\": {},", json_str(&c.id));
            let _ = writeln!(out, "      \"workload\": {},", json_str(&c.workload));
            let _ = writeln!(out, "      \"threads\": {},", c.threads);
            let _ = writeln!(out, "      \"shards\": {},", c.shards);
            let _ = writeln!(out, "      \"group_commit\": {},", c.group_commit);
            let _ = writeln!(out, "      \"ops\": {},", c.ops);
            let _ = writeln!(out, "      \"elapsed_s\": {},", json_f64(c.elapsed_s));
            let _ = writeln!(out, "      \"kops_per_sec\": {},", json_f64(c.kops_per_sec));
            let _ = writeln!(out, "      \"p50_us\": {},", json_f64(c.p50_us));
            let _ = writeln!(out, "      \"p99_us\": {},", json_f64(c.p99_us));
            let _ = writeln!(out, "      \"p999_us\": {},", json_f64(c.p999_us));
            out.push_str("      \"stages\": [\n");
            for (j, s) in c.stages.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"name\": {}, \"count\": {}, \"sum_ns\": {}, \
                     \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                    json_str(&s.name),
                    s.count,
                    s.sum_ns,
                    json_f64(s.mean_ns),
                    s.p50_ns,
                    s.p99_ns
                );
                out.push_str(if j + 1 < c.stages.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ],\n");
            let _ = writeln!(
                out,
                "      \"commit\": {{\"solo\": {}, \"leader\": {}, \"follower\": {}, \
                 \"withdrawn\": {}, \"groups\": {}, \"grouped\": {}}}",
                c.commit.solo,
                c.commit.leader,
                c.commit.follower,
                c.commit.withdrawn,
                c.commit.groups,
                c.commit.grouped
            );
            out.push_str("    }");
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"net\": [\n");
        for (i, n) in self.net.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"id\": {},", json_str(&n.id));
            let _ = writeln!(out, "      \"workload\": {},", json_str(&n.workload));
            let _ = writeln!(out, "      \"threads\": {},", n.threads);
            let _ = writeln!(out, "      \"connections\": {},", n.connections);
            let _ = writeln!(out, "      \"pipeline_depth\": {},", n.pipeline_depth);
            let _ = writeln!(out, "      \"ops\": {},", n.ops);
            let _ = writeln!(out, "      \"elapsed_s\": {},", json_f64(n.elapsed_s));
            let _ = writeln!(out, "      \"kops_per_sec\": {},", json_f64(n.kops_per_sec));
            let _ = writeln!(out, "      \"p50_us\": {},", json_f64(n.p50_us));
            let _ = writeln!(out, "      \"p99_us\": {},", json_f64(n.p99_us));
            let _ = writeln!(out, "      \"p999_us\": {}", json_f64(n.p999_us));
            out.push_str("    }");
            out.push_str(if i + 1 < self.net.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"stability\": [\n");
        for (i, s) in self.stability.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"id\": {},", json_str(&s.id));
            let _ = writeln!(out, "      \"admission\": {},", s.admission);
            let _ = writeln!(out, "      \"seconds\": {},", json_f64(s.seconds));
            let _ = writeln!(out, "      \"ops\": {},", s.ops);
            let _ = writeln!(out, "      \"kops_per_sec\": {},", json_f64(s.kops_per_sec));
            let _ = writeln!(
                out,
                "      \"throughput_kops\": [{}],",
                s.throughput_kops
                    .iter()
                    .map(|v| json_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                out,
                "      \"p999_us\": [{}],",
                s.p999_us
                    .iter()
                    .map(|v| json_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                out,
                "      \"throughput_cv\": {},",
                json_f64(s.throughput_cv)
            );
            let _ = writeln!(
                out,
                "      \"worst_window_frac\": {},",
                json_f64(s.worst_window_frac)
            );
            let _ = writeln!(out, "      \"p999_max_us\": {},", json_f64(s.p999_max_us));
            let _ = writeln!(out, "      \"hard_stalls\": {},", s.hard_stalls);
            let _ = writeln!(out, "      \"delayed_writes\": {},", s.delayed_writes);
            let _ = writeln!(out, "      \"write_stalls\": {},", s.write_stalls);
            let _ = writeln!(out, "      \"stall_events\": {},", s.stall_events);
            let _ = writeln!(
                out,
                "      \"sustained_slowdowns\": {}",
                s.sustained_slowdowns
            );
            out.push_str("    }");
            out.push_str(if i + 1 < self.stability.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a `BENCH_*.json`, rejecting unknown schema versions.
    pub fn from_json(text: &str) -> Result<SuiteReport> {
        let root = json::parse(text).map_err(|e| Error::invalid_argument(&e))?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| Error::invalid_argument("missing schema_version"))?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(Error::invalid_argument(format!(
                "schema_version {version} != supported {SCHEMA_VERSION}; \
                 re-baseline instead of comparing across schemas"
            )));
        }
        let str_of = |j: &Json, key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| Error::invalid_argument(format!("missing field {key}")))
        };
        let num_of = |j: &Json, key: &str| {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| Error::invalid_argument(format!("missing field {key}")))
        };
        let env = root
            .get("env")
            .ok_or_else(|| Error::invalid_argument("missing env"))?;
        let mut cells = Vec::new();
        for cell in root
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::invalid_argument("missing cells"))?
        {
            let mut stages = Vec::new();
            for s in cell.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
                stages.push(StageRow {
                    name: str_of(s, "name")?,
                    count: num_of(s, "count")? as u64,
                    sum_ns: num_of(s, "sum_ns")? as u64,
                    mean_ns: num_of(s, "mean_ns")?,
                    p50_ns: num_of(s, "p50_ns")? as u64,
                    p99_ns: num_of(s, "p99_ns")? as u64,
                });
            }
            let commit = cell
                .get("commit")
                .ok_or_else(|| Error::invalid_argument("missing commit"))?;
            cells.push(CellResult {
                id: str_of(cell, "id")?,
                workload: str_of(cell, "workload")?,
                threads: num_of(cell, "threads")? as usize,
                shards: num_of(cell, "shards")? as usize,
                group_commit: cell.get("group_commit").and_then(Json::as_bool) == Some(true),
                ops: num_of(cell, "ops")? as u64,
                elapsed_s: num_of(cell, "elapsed_s")?,
                kops_per_sec: num_of(cell, "kops_per_sec")?,
                p50_us: num_of(cell, "p50_us")?,
                p99_us: num_of(cell, "p99_us")?,
                p999_us: num_of(cell, "p999_us")?,
                stages,
                commit: CommitModes {
                    solo: num_of(commit, "solo")? as u64,
                    leader: num_of(commit, "leader")? as u64,
                    follower: num_of(commit, "follower")? as u64,
                    withdrawn: num_of(commit, "withdrawn")? as u64,
                    groups: num_of(commit, "groups")? as u64,
                    grouped: num_of(commit, "grouped")? as u64,
                },
            });
        }
        let mut net = Vec::new();
        for n in root.get("net").and_then(Json::as_arr).unwrap_or(&[]) {
            net.push(NetCellResult {
                id: str_of(n, "id")?,
                workload: str_of(n, "workload")?,
                threads: num_of(n, "threads")? as usize,
                connections: num_of(n, "connections")? as usize,
                pipeline_depth: num_of(n, "pipeline_depth")? as usize,
                ops: num_of(n, "ops")? as u64,
                elapsed_s: num_of(n, "elapsed_s")?,
                kops_per_sec: num_of(n, "kops_per_sec")?,
                p50_us: num_of(n, "p50_us")?,
                p99_us: num_of(n, "p99_us")?,
                p999_us: num_of(n, "p999_us")?,
            });
        }
        let series_of = |j: &Json, key: &str| -> Vec<f64> {
            j.get(key)
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(Json::as_f64)
                .collect()
        };
        let mut stability = Vec::new();
        for s in root.get("stability").and_then(Json::as_arr).unwrap_or(&[]) {
            stability.push(StabilityResult {
                id: str_of(s, "id")?,
                admission: s.get("admission").and_then(Json::as_bool) == Some(true),
                seconds: num_of(s, "seconds")?,
                ops: num_of(s, "ops")? as u64,
                kops_per_sec: num_of(s, "kops_per_sec")?,
                throughput_kops: series_of(s, "throughput_kops"),
                p999_us: series_of(s, "p999_us"),
                throughput_cv: num_of(s, "throughput_cv")?,
                worst_window_frac: num_of(s, "worst_window_frac")?,
                p999_max_us: num_of(s, "p999_max_us")?,
                hard_stalls: num_of(s, "hard_stalls")? as u64,
                delayed_writes: num_of(s, "delayed_writes")? as u64,
                write_stalls: num_of(s, "write_stalls")? as u64,
                stall_events: num_of(s, "stall_events")? as u64,
                sustained_slowdowns: num_of(s, "sustained_slowdowns")? as u64,
            });
        }
        Ok(SuiteReport {
            label: str_of(&root, "label")?,
            mode: str_of(&root, "mode")?,
            seconds: num_of(&root, "seconds")?,
            key_space: num_of(&root, "key_space")? as u64,
            env: EnvFingerprint {
                os: str_of(env, "os")?,
                arch: str_of(env, "arch")?,
                cpus: num_of(env, "cpus")? as usize,
                debug: env.get("debug").and_then(Json::as_bool) == Some(true),
            },
            cells,
            net,
            stability,
        })
    }
}

/// Outcome of comparing two suite reports.
#[derive(Debug)]
pub struct CompareOutcome {
    /// Full per-metric delta listing.
    pub text: String,
    /// Metric comparisons performed.
    pub compared: usize,
    /// Comparisons beyond the threshold.
    pub regressions: usize,
    /// Cells present in only one report.
    pub unmatched: usize,
}

impl CompareOutcome {
    /// `true` when the new report is acceptable.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }
}

/// Compares `new` against the `old` baseline, cell by cell (matched on
/// id). `threshold` is the allowed *fractional* worsening: 1.0 lets a
/// metric get up to 2x worse before it counts as a regression.
/// Throughput regresses downward; latency percentiles regress upward.
pub fn compare(old: &SuiteReport, new: &SuiteReport, threshold: f64) -> CompareOutcome {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== bench-suite compare: old '{}' ({}) vs new '{}' ({}), threshold {:.2}x ==",
        old.label,
        old.mode,
        new.label,
        new.mode,
        1.0 + threshold
    );
    if old.mode != new.mode {
        let _ = writeln!(
            text,
            "warning: comparing different modes ({} vs {})",
            old.mode, new.mode
        );
    }
    let new_by_id: BTreeMap<&str, &CellResult> =
        new.cells.iter().map(|c| (c.id.as_str(), c)).collect();
    let mut compared = 0;
    let mut regressions = 0;
    let mut unmatched = 0;
    for old_cell in &old.cells {
        let Some(new_cell) = new_by_id.get(old_cell.id.as_str()) else {
            let _ = writeln!(text, "cell {}: missing from new report", old_cell.id);
            unmatched += 1;
            continue;
        };
        let _ = writeln!(text, "cell {}", old_cell.id);
        // (name, old, new, higher_is_better)
        let metrics = [
            (
                "kops_per_sec",
                old_cell.kops_per_sec,
                new_cell.kops_per_sec,
                true,
            ),
            ("p50_us", old_cell.p50_us, new_cell.p50_us, false),
            ("p99_us", old_cell.p99_us, new_cell.p99_us, false),
        ];
        compare_metrics(
            &mut text,
            &mut compared,
            &mut regressions,
            threshold,
            &metrics,
        );
    }
    let new_net: BTreeMap<&str, &NetCellResult> =
        new.net.iter().map(|n| (n.id.as_str(), n)).collect();
    for old_n in &old.net {
        let Some(new_n) = new_net.get(old_n.id.as_str()) else {
            let _ = writeln!(text, "net {}: missing from new report", old_n.id);
            unmatched += 1;
            continue;
        };
        let _ = writeln!(text, "net {}", old_n.id);
        // Client-observed latencies ride the loopback stack and are
        // noisier than in-process ones; gate on the same trio the
        // matrix uses (p999 is reported but not gated).
        let metrics = [
            ("kops_per_sec", old_n.kops_per_sec, new_n.kops_per_sec, true),
            ("p50_us", old_n.p50_us, new_n.p50_us, false),
            ("p99_us", old_n.p99_us, new_n.p99_us, false),
        ];
        compare_metrics(
            &mut text,
            &mut compared,
            &mut regressions,
            threshold,
            &metrics,
        );
    }
    let new_stab: BTreeMap<&str, &StabilityResult> =
        new.stability.iter().map(|s| (s.id.as_str(), s)).collect();
    for old_s in &old.stability {
        let Some(new_s) = new_stab.get(old_s.id.as_str()) else {
            let _ = writeln!(text, "stability {}: missing from new report", old_s.id);
            unmatched += 1;
            continue;
        };
        let _ = writeln!(text, "stability {}", old_s.id);
        // The variance metrics carry noise floors: values below the
        // floor compare as equal, so run-to-run wiggle on a healthy
        // series (CV in the 0.2s on a short smoke window, a 40–60 ms
        // p999 wobble, a stray stall) cannot flip a ratio past the
        // threshold. A stall cliff lands far above every floor — the
        // measured ablation shows p999 spikes of ~500 ms and dozens of
        // hard stalls against 0 — which is what this section gates on.
        let metrics = [
            ("kops_per_sec", old_s.kops_per_sec, new_s.kops_per_sec, true),
            (
                "throughput_cv",
                old_s.throughput_cv.max(0.35),
                new_s.throughput_cv.max(0.35),
                false,
            ),
            (
                "p999_max_us",
                old_s.p999_max_us.max(100_000.0),
                new_s.p999_max_us.max(100_000.0),
                false,
            ),
            (
                "hard_stalls",
                (old_s.hard_stalls as f64).max(2.0),
                (new_s.hard_stalls as f64).max(2.0),
                false,
            ),
        ];
        compare_metrics(
            &mut text,
            &mut compared,
            &mut regressions,
            threshold,
            &metrics,
        );
    }
    let new_ids: std::collections::BTreeSet<&str> =
        new.cells.iter().map(|c| c.id.as_str()).collect();
    let old_ids: std::collections::BTreeSet<&str> =
        old.cells.iter().map(|c| c.id.as_str()).collect();
    for extra in new_ids.difference(&old_ids) {
        let _ = writeln!(text, "cell {extra}: new (no baseline)");
        unmatched += 1;
    }
    let old_net_ids: std::collections::BTreeSet<&str> =
        old.net.iter().map(|n| n.id.as_str()).collect();
    for n in &new.net {
        if !old_net_ids.contains(n.id.as_str()) {
            let _ = writeln!(text, "net {}: new (no baseline)", n.id);
            unmatched += 1;
        }
    }
    let old_stab_ids: std::collections::BTreeSet<&str> =
        old.stability.iter().map(|s| s.id.as_str()).collect();
    for s in &new.stability {
        if !old_stab_ids.contains(s.id.as_str()) {
            let _ = writeln!(text, "stability {}: new (no baseline)", s.id);
            unmatched += 1;
        }
    }
    let _ = writeln!(
        text,
        "bench-suite compare: {} regression(s) / {} comparison(s), {} unmatched cell(s): {}",
        regressions,
        compared,
        unmatched,
        if regressions == 0 { "PASS" } else { "FAIL" }
    );
    CompareOutcome {
        text,
        compared,
        regressions,
        unmatched,
    }
}

/// Diffs one row of `(name, old, new, higher_is_better)` metrics,
/// appending a line per metric and bumping the counters. Shared by the
/// per-cell and stability sections of [`compare`].
fn compare_metrics(
    text: &mut String,
    compared: &mut usize,
    regressions: &mut usize,
    threshold: f64,
    metrics: &[(&str, f64, f64, bool)],
) {
    for &(name, old_v, new_v, higher_better) in metrics {
        if old_v <= 0.0 && new_v <= 0.0 {
            continue;
        }
        *compared += 1;
        // Worsening factor: >1 means new is worse.
        let factor = if higher_better {
            if new_v <= 0.0 {
                f64::INFINITY
            } else {
                old_v / new_v
            }
        } else if old_v <= 0.0 {
            f64::INFINITY
        } else {
            new_v / old_v
        };
        let delta_pct = if old_v > 0.0 {
            (new_v - old_v) / old_v * 100.0
        } else {
            f64::INFINITY
        };
        let verdict = if factor > 1.0 + threshold {
            *regressions += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        let _ = writeln!(
            text,
            "  {name:<14} old={old_v:<12.2} new={new_v:<12.2} delta={delta_pct:+.1}% {verdict}"
        );
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep a decimal
        // point so the field reads as what it is.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

use json::Json;

/// Minimal recursive-descent JSON parser — just enough for
/// `BENCH_*.json` (no serde in the workspace, by design).
mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object.
        Obj(BTreeMap<String, Json>),
    }

    impl Json {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(m) => m.get(key),
                _ => None,
            }
        }

        /// The value as a float, if it is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if it is one.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The value as a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parses one JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Json::Null),
            Some(_) => parse_num(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let s = &b[*pos..];
                    let len = match s[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = s.get(..len).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf-8")?);
                    *pos += len;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            map.insert(key, value);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, b'[')?;
        let mut arr = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(arr));
        }
        loop {
            arr.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(arr));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SuiteReport {
        SuiteReport {
            label: "seed".to_string(),
            mode: "smoke".to_string(),
            seconds: 0.2,
            key_space: 20_000,
            env: EnvFingerprint {
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                cpus: 8,
                debug: false,
            },
            cells: vec![CellResult {
                id: "write-100.t1.gc-on.s1".to_string(),
                workload: "write-100".to_string(),
                threads: 1,
                shards: 1,
                group_commit: true,
                ops: 100_000,
                elapsed_s: 0.2,
                kops_per_sec: 500.0,
                p50_us: 1.5,
                p99_us: 9.0,
                p999_us: 30.0,
                stages: vec![StageRow {
                    name: "stamp".to_string(),
                    count: 100_000,
                    sum_ns: 5_000_000,
                    mean_ns: 50.0,
                    p50_ns: 48,
                    p99_ns: 90,
                }],
                commit: CommitModes {
                    solo: 100_000,
                    ..CommitModes::default()
                },
            }],
            net: vec![NetCellResult {
                id: "net.mixed-50-50.t4.c2.d32".to_string(),
                workload: "mixed-50-50".to_string(),
                threads: 4,
                connections: 2,
                pipeline_depth: 32,
                ops: 50_000,
                elapsed_s: 0.2,
                kops_per_sec: 250.0,
                p50_us: 40.0,
                p99_us: 250.0,
                p999_us: 900.0,
            }],
            stability: vec![StabilityResult {
                id: "stability.write-100.t4.admission-on".to_string(),
                admission: true,
                seconds: 3.0,
                ops: 30_000,
                kops_per_sec: 10.0,
                throughput_kops: vec![10.5, 9.8, 9.7],
                p999_us: vec![800.0, 950.0, 900.0],
                throughput_cv: 0.04,
                worst_window_frac: 0.97,
                p999_max_us: 950.0,
                hard_stalls: 0,
                delayed_writes: 1500,
                write_stalls: 0,
                stall_events: 0,
                sustained_slowdowns: 2,
            }],
        }
    }

    fn scaling_cell(threads: usize, kops: f64) -> CellResult {
        CellResult {
            id: format!("write-100.t{threads}.gc-on.s1"),
            workload: "write-100".to_string(),
            threads,
            shards: 1,
            group_commit: true,
            ops: (kops * 1000.0 * 0.2) as u64,
            elapsed_s: 0.2,
            kops_per_sec: kops,
            p50_us: 2.0,
            p99_us: 10.0,
            p999_us: 40.0,
            stages: Vec::new(),
            commit: CommitModes::default(),
        }
    }

    fn scaling_report(curve: &[(usize, f64)]) -> SuiteReport {
        let mut report = sample_report();
        report.cells = curve.iter().map(|&(t, k)| scaling_cell(t, k)).collect();
        report
    }

    #[test]
    fn scaling_summary_reads_the_curve_and_passes_flat_or_rising() {
        let report = scaling_report(&[(1, 100.0), (2, 104.0), (4, 103.0), (8, 110.0)]);
        let summary = scaling_summary(&report).unwrap();
        assert_eq!(
            summary.points,
            vec![(1, 100.0), (2, 104.0), (4, 103.0), (8, 110.0)]
        );
        assert!(summary.passed);
        assert!(summary.text().contains("PASS"));
        assert!(summary.text().contains("t8"));
    }

    #[test]
    fn scaling_gate_flags_a_collapse_through_four_threads() {
        // t4 at 60% of t2: the serialization signature the gate exists
        // for.
        let report = scaling_report(&[(1, 100.0), (2, 104.0), (4, 62.0), (8, 110.0)]);
        let summary = scaling_summary(&report).unwrap();
        assert!(!summary.passed);
        assert!(summary.text().contains("FAIL"));
    }

    #[test]
    fn scaling_gate_tolerates_noise_and_ignores_the_t8_point() {
        // 8% dips stay inside the 0.9x tolerance; a t8 drop is
        // reported but not gated (CI may not have 8 cores).
        let report = scaling_report(&[(1, 100.0), (2, 92.5), (4, 86.0), (8, 20.0)]);
        let summary = scaling_summary(&report).unwrap();
        assert!(summary.passed);
    }

    #[test]
    fn scaling_summary_needs_at_least_two_points() {
        let report = scaling_report(&[(1, 100.0)]);
        assert!(scaling_summary(&report).is_none());
        // The sample report's only cell happens to be a scaling cell;
        // one point is still not a curve.
        assert!(scaling_summary(&sample_report()).is_none());
    }

    #[test]
    fn scaling_cells_extend_the_smoke_matrix_without_duplicates() {
        let mut matrix = canonical_matrix(true);
        let before = matrix.len();
        for spec in scaling_cells() {
            if !matrix.contains(&spec) {
                matrix.push(spec);
            }
        }
        // Smoke already holds the t1/t2 points; only t4/t8 are new.
        assert_eq!(matrix.len(), before + 2);
        let mut ids: Vec<String> = matrix.iter().map(CellSpec::id).collect();
        let total = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), total);
        for t in [1, 2, 4, 8] {
            assert!(ids.contains(&format!("write-100.t{t}.gc-on.s1")));
        }
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let report = sample_report();
        let parsed = SuiteReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_other_schema_versions() {
        let text = sample_report()
            .to_json()
            .replace("\"schema_version\": 3", "\"schema_version\": 999");
        let err = SuiteReport::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("schema_version"));
        // Older artifacts (pre-stability, pre-net) are rejected the
        // same way: re-baseline, never silently compare across schemas.
        for old in ["1", "2"] {
            let v = sample_report().to_json().replace(
                "\"schema_version\": 3",
                &format!("\"schema_version\": {old}"),
            );
            assert!(SuiteReport::from_json(&v).is_err());
        }
    }

    #[test]
    fn compare_passes_identical_reports() {
        let report = sample_report();
        let outcome = compare(&report, &report, 1.0);
        assert!(outcome.passed());
        assert_eq!(outcome.regressions, 0);
        assert!(outcome.compared >= 3);
        assert!(outcome.text.contains("PASS"));
    }

    #[test]
    fn compare_flags_injected_regression() {
        let old = sample_report();
        let mut new = old.clone();
        // 4x throughput collapse: beyond the 2x threshold.
        new.cells[0].kops_per_sec /= 4.0;
        let outcome = compare(&old, &new, 1.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions, 1);
        assert!(outcome.text.contains("REGRESSION"));
        assert!(outcome.text.contains("FAIL"));

        // A latency blow-up is caught too.
        let mut slow = old.clone();
        slow.cells[0].p99_us *= 3.0;
        assert!(!compare(&old, &slow, 1.0).passed());

        // Within threshold: a 30% dip passes at 2x.
        let mut dip = old.clone();
        dip.cells[0].kops_per_sec *= 0.7;
        assert!(compare(&old, &dip, 1.0).passed());
    }

    #[test]
    fn compare_gates_on_net_cells() {
        let old = sample_report();

        // A networked-throughput collapse fails the gate even when the
        // in-process matrix is unchanged.
        let mut slow = old.clone();
        slow.net[0].kops_per_sec /= 4.0;
        let outcome = compare(&old, &slow, 1.0);
        assert!(!outcome.passed(), "{}", outcome.text);
        assert!(outcome.text.contains("net net.mixed-50-50.t4.c2.d32"));

        // Client-observed p99 blow-ups are caught too.
        let mut spiky = old.clone();
        spiky.net[0].p99_us *= 3.0;
        assert!(!compare(&old, &spiky, 1.0).passed());

        // A report without the net section still compares: the old
        // entry is unmatched, not a failure.
        let mut bare = old.clone();
        bare.net.clear();
        let outcome = compare(&old, &bare, 1.0);
        assert!(outcome.passed());
        assert!(outcome
            .text
            .contains("net net.mixed-50-50.t4.c2.d32: missing"));

        // The smoke net matrix covers both workloads with >= 4 client
        // threads and unique ids.
        let matrix = net_matrix(true);
        assert!(matrix.iter().any(|c| c.workload == "write-100"));
        assert!(matrix.iter().any(|c| c.workload == "mixed-50-50"));
        assert!(matrix.iter().all(|c| c.threads >= 4));
        let ids: std::collections::BTreeSet<String> = matrix.iter().map(NetCellSpec::id).collect();
        assert_eq!(ids.len(), matrix.len());
    }

    #[test]
    fn compare_gates_on_stability_variance_and_stalls() {
        let old = sample_report();

        // A stall cliff appearing in the stability cell fails the gate
        // even when every matrix cell is unchanged.
        let mut cliff = old.clone();
        cliff.stability[0].hard_stalls = 40;
        let outcome = compare(&old, &cliff, 1.0);
        assert!(!outcome.passed(), "{}", outcome.text);
        assert!(outcome.text.contains("hard_stalls"));

        // So does a throughput-variance blow-up...
        let mut choppy = old.clone();
        choppy.stability[0].throughput_cv = 0.9;
        assert!(!compare(&old, &choppy, 1.0).passed());

        // ...and a cliff-sized p999 spike (the ablation measures
        // ~500 ms against the ramp's ~50 ms).
        let mut spiky = old.clone();
        spiky.stability[0].p999_max_us = 500_000.0;
        assert!(!compare(&old, &spiky, 1.0).passed());

        // Noise floors: wiggles below them compare as equal.
        let mut wiggle = old.clone();
        wiggle.stability[0].throughput_cv = 0.30;
        wiggle.stability[0].hard_stalls = 2;
        wiggle.stability[0].p999_max_us = 60_000.0;
        let outcome = compare(&old, &wiggle, 1.0);
        assert!(outcome.passed(), "{}", outcome.text);

        // A report without the stability section still compares (the
        // old entry shows up as unmatched, which is not a failure).
        let mut bare = old.clone();
        bare.stability.clear();
        let outcome = compare(&old, &bare, 1.0);
        assert!(outcome.passed());
        assert_eq!(outcome.unmatched, 1);
        assert!(outcome.text.contains("stability"));
    }

    #[test]
    fn compare_reports_unmatched_cells() {
        let old = sample_report();
        let mut new = old.clone();
        new.cells[0].id = "write-100.t2.gc-on.s1".to_string();
        let outcome = compare(&old, &new, 1.0);
        assert_eq!(outcome.unmatched, 2); // one missing + one new
        assert!(outcome.text.contains("missing from new report"));
    }

    #[test]
    fn smoke_matrix_covers_acceptance_grid() {
        let matrix = canonical_matrix(true);
        for shards in [1, 4] {
            for gc in [true, false] {
                assert!(
                    matrix.iter().any(|c| c.workload == "write-100"
                        && c.shards == shards
                        && c.group_commit == gc),
                    "smoke matrix missing write cell gc={gc} shards={shards}"
                );
            }
        }
        assert!(matrix.iter().any(|c| c.workload == "mixed-50-50"));
        // Ids are unique — compare() matches on them.
        let ids: std::collections::BTreeSet<String> = matrix.iter().map(CellSpec::id).collect();
        assert_eq!(ids.len(), matrix.len());
        // The full matrix sweeps to 8 threads.
        assert!(canonical_matrix(false)
            .iter()
            .any(|c| c.threads == 8 && c.workload == "mixed-50-50"));
    }
}
