//! The long-run stability cell behind `bench-suite --stability`.
//!
//! Where the matrix cells measure *how fast* the store goes, this cell
//! measures *how evenly*: a sustained write workload against a
//! deliberately undersized, I/O-rate-limited store, sampled in fixed
//! windows. Each window contributes one throughput point and one p999
//! point to a time series; the summary condenses the series into the
//! variance/spike numbers [`crate::suite::compare`] gates on
//! (throughput CV, worst-window fraction, max p999, hard-stall count).
//!
//! The cell runs with the graduated admission ramp on by default; the
//! `admission: false` variant is the ablation shim — the pre-ramp
//! stall cliff — which the kill-test uses to prove the watchdog still
//! sees the cliff when the ramp is disabled, and that enabling it
//! makes the hard stalls (mostly) disappear.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use clsm::{AdmissionOptions, Db, IoRateLimiter, Options, StallKind};
use clsm_util::error::Result;
use clsm_util::histogram::Histogram;

/// Configuration for one stability cell.
#[derive(Debug, Clone)]
pub struct StabilityConfig {
    /// Total measured duration.
    pub seconds: f64,
    /// Sampling window (one time-series point per window).
    pub window: Duration,
    /// Writer threads.
    pub threads: usize,
    /// Distinct keys (small, so the run is flush-bound, not
    /// memtable-resident).
    pub key_space: u64,
    /// Value payload size in bytes.
    pub value_len: usize,
    /// Seed for the per-thread key sequences.
    pub seed: u64,
    /// Graduated admission ramp on (`false` = the ablation shim).
    pub admission: bool,
}

impl StabilityConfig {
    /// Defaults for the given mode: CI smoke keeps the cell to a few
    /// seconds, the full run long enough for variance to mean
    /// something.
    pub fn new(smoke: bool, admission: bool) -> StabilityConfig {
        StabilityConfig {
            seconds: if smoke { 3.0 } else { 30.0 },
            window: Duration::from_secs(1),
            threads: 4,
            key_space: 4096,
            value_len: 2048,
            seed: 0x57ab,
            admission,
        }
    }

    /// Stable cell identifier; [`crate::suite::compare`] matches
    /// stability entries by this.
    pub fn id(&self) -> String {
        format!(
            "stability.write-100.t{}.admission-{}",
            self.threads,
            if self.admission { "on" } else { "off" }
        )
    }
}

/// One stability cell's measurements: the raw time series plus the
/// summary the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityResult {
    /// Stable cell id ([`StabilityConfig::id`]).
    pub id: String,
    /// Whether the admission ramp was enabled.
    pub admission: bool,
    /// Measured wall-clock seconds.
    pub seconds: f64,
    /// Completed puts.
    pub ops: u64,
    /// Whole-run throughput, thousands of ops per second.
    pub kops_per_sec: f64,
    /// Per-window throughput series (kops/s).
    pub throughput_kops: Vec<f64>,
    /// Per-window p999 put latency series (µs).
    pub p999_us: Vec<f64>,
    /// Coefficient of variation of the throughput series
    /// (stddev / mean; 0 = perfectly even).
    pub throughput_cv: f64,
    /// Worst window's throughput as a fraction of the mean
    /// (1.0 = perfectly even, 0.0 = a dead window).
    pub worst_window_frac: f64,
    /// Largest per-window p999 (µs) — the spike the series saw.
    pub p999_max_us: f64,
    /// `admission.hard_stalls`: writers that hit the memtable-full
    /// stall.
    pub hard_stalls: u64,
    /// `admission.delayed_writes`: writers charged a slowdown delay.
    pub delayed_writes: u64,
    /// `db.write_stalls` (same cliff as `hard_stalls`, the pre-ramp
    /// counter — kept so old dashboards still line up).
    pub write_stalls: u64,
    /// Watchdog `write-stall` events observed during the run.
    pub stall_events: u64,
    /// Watchdog `sustained-slowdown` events observed during the run.
    pub sustained_slowdowns: u64,
}

/// Store options for the stability cell: a small memtable and a tight
/// I/O budget, so dirty data genuinely outruns the drain and the
/// admission machinery (or, in the ablation, the stall cliff) is what
/// shapes the series. The ramp is tuned so its maximum delay throttles
/// ingest below the drain rate — the condition under which graduated
/// admission can replace hard stalls entirely.
fn stability_store_options(admission: bool) -> Options {
    let mut opts = Options {
        memtable_bytes: 512 * 1024,
        ..Options::default()
    };
    opts.store.table_file_size = 1024 * 1024;
    opts.store.base_level_bytes = 4 * 1024 * 1024;
    opts.store.io_rate_limiter = Some(Arc::new(IoRateLimiter::new(4 << 20, 1 << 20)));
    opts.admission = AdmissionOptions {
        enabled: admission,
        low_watermark: 0.5,
        high_watermark: 0.9,
        max_delay: Duration::from_millis(10),
        ..AdmissionOptions::default()
    };
    opts.watchdog.enabled = true;
    opts
}

/// Runs one stability cell on a fresh store under `data_dir` (removed
/// afterwards).
pub fn run_stability(cfg: &StabilityConfig, data_dir: &Path) -> Result<StabilityResult> {
    let dir = data_dir.join(cfg.id());
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    let db = Arc::new(Db::open(&dir, stability_store_options(cfg.admission))?);

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    // One latency window per worker: the worker takes its own
    // (uncontended) lock per op; the sampler swaps each window out
    // once per tick and merges them into that tick's histogram.
    let windows: Arc<Vec<Mutex<Histogram>>> = Arc::new(
        (0..cfg.threads)
            .map(|_| Mutex::new(Histogram::new()))
            .collect(),
    );

    let mut workers = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&ops);
        let windows = Arc::clone(&windows);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || -> Result<()> {
            let value = vec![0xabu8; cfg.value_len];
            let mut x = cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            while !stop.load(Ordering::Relaxed) {
                // xorshift64: a cheap deterministic key sequence.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = format!("stab.{:08}", x % cfg.key_space);
                let began = Instant::now();
                db.put(key.as_bytes(), &value)?;
                windows[t].lock().record(began.elapsed().as_nanos() as u64);
                ops.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        }));
    }

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(cfg.seconds);
    let mut throughput_kops = Vec::new();
    let mut p999_us = Vec::new();
    let mut last_ops = 0u64;
    let mut last_tick = started;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep(cfg.window.min(deadline - now));
        let tick = Instant::now();
        let window_s = (tick - last_tick).as_secs_f64().max(1e-9);
        last_tick = tick;
        let ops_now = ops.load(Ordering::Relaxed);
        throughput_kops.push((ops_now - last_ops) as f64 / window_s / 1000.0);
        last_ops = ops_now;
        let mut merged = Histogram::new();
        for w in windows.iter() {
            let h = std::mem::replace(&mut *w.lock(), Histogram::new());
            merged.merge(&h);
        }
        p999_us.push(if merged.count() == 0 {
            0.0
        } else {
            merged.percentile(99.9) as f64 / 1000.0
        });
    }
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();
    for w in workers {
        w.join().expect("stability worker panicked")?;
    }

    let snapshot = db.metrics();
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let stall_events = db
        .stall_events()
        .iter()
        .filter(|e| e.kind == StallKind::WriteStall)
        .count() as u64;
    let total_ops = ops.load(Ordering::Relaxed);
    let (cv, worst_frac) = series_variance(&throughput_kops);
    let result = StabilityResult {
        id: cfg.id(),
        admission: cfg.admission,
        seconds: elapsed.as_secs_f64(),
        ops: total_ops,
        kops_per_sec: total_ops as f64 / elapsed.as_secs_f64() / 1000.0,
        throughput_kops,
        p999_max_us: p999_us.iter().cloned().fold(0.0, f64::max),
        p999_us,
        throughput_cv: cv,
        worst_window_frac: worst_frac,
        hard_stalls: counter("admission.hard_stalls"),
        delayed_writes: counter("admission.delayed_writes"),
        write_stalls: db.stats().write_stalls,
        stall_events,
        sustained_slowdowns: counter("watchdog.sustained_slowdown_events"),
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(result)
}

/// `(coefficient of variation, worst window / mean)` of a series.
fn series_variance(series: &[f64]) -> (f64, f64) {
    if series.is_empty() {
        return (0.0, 0.0);
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return (0.0, 0.0);
    }
    let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    (var.sqrt() / mean, min / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinguish_the_ablation() {
        let on = StabilityConfig::new(true, true);
        let off = StabilityConfig::new(true, false);
        assert_eq!(on.id(), "stability.write-100.t4.admission-on");
        assert_eq!(off.id(), "stability.write-100.t4.admission-off");
        assert!(on.seconds < StabilityConfig::new(false, true).seconds);
    }

    #[test]
    fn series_variance_handles_flat_spiky_and_empty_series() {
        let (cv, worst) = series_variance(&[10.0, 10.0, 10.0]);
        assert!(cv.abs() < 1e-12);
        assert!((worst - 1.0).abs() < 1e-12);
        let (cv, worst) = series_variance(&[10.0, 0.0, 10.0]);
        assert!(cv > 0.4);
        assert!(worst.abs() < 1e-12);
        assert_eq!(series_variance(&[]), (0.0, 0.0));
    }
}
