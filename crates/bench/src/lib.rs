//! Benchmark harness regenerating every figure of the cLSM paper.
//!
//! Each `src/bin/figN_*.rs` binary reproduces one figure of the
//! evaluation (§5): it builds the systems under test, generates the
//! figure's workload, sweeps the independent variable (worker threads,
//! memtable size, …), and prints the same series the paper plots,
//! plus CSV files under `bench-results/`.
//!
//! Absolute numbers will differ from the paper's 16-hw-thread Xeon +
//! SSD testbed; the *shape* — which system wins, scaling trends,
//! crossover points — is the reproduction target (see EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod driver;
pub mod report;
pub mod stability;
pub mod suite;
pub mod systems;

pub use driver::{parse_args, BenchArgs};
pub use report::{write_csv, Table};
pub use systems::{all_systems, no_blsm_systems, registry, system_by_name, System};
