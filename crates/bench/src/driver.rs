//! Shared sweep driver and CLI parsing for the figure binaries.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use clsm::Options;
use clsm_baselines::KvStore;
use clsm_util::error::Result;
use clsm_workloads::{run_workload, Prefill, RunConfig, RunResult, WorkloadSpec};

use crate::report::Table;
use crate::systems::System;

/// Command-line arguments shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Quick mode (default): small dataset, short cells — finishes in
    /// a couple of minutes. `--full` scales everything up.
    pub quick: bool,
    /// Seconds per measured cell.
    pub seconds: f64,
    /// Worker-thread sweep.
    pub threads: Vec<usize>,
    /// Where result CSVs go.
    pub out_dir: PathBuf,
    /// Scratch directory for store files.
    pub data_dir: PathBuf,
    /// RNG seed.
    pub seed: u64,
    /// Shard count for range-sharded systems (`cLSM-sharded`); other
    /// systems ignore it.
    pub shards: usize,
    /// When set, the flight recorder runs for the whole sweep and a
    /// Chrome-trace-format JSON (Perfetto-loadable) lands here.
    pub trace: Option<PathBuf>,
    /// Group-commit write pipeline on cLSM systems (`--group-commit
    /// on|off`). On by default; `off` is the per-writer ablation.
    pub group_commit: bool,
    /// Repetitions per measured cell (`--repeat N`); binaries that
    /// honor it report the median rep, which tames scheduler noise on
    /// small machines.
    pub repeat: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            quick: true,
            seconds: 1.0,
            threads: vec![1, 2, 4, 8, 16],
            out_dir: PathBuf::from("bench-results"),
            data_dir: std::env::temp_dir().join(format!("clsm-bench-{}", std::process::id())),
            seed: 0xc15a,
            shards: 1,
            trace: None,
            group_commit: true,
            repeat: 1,
        }
    }
}

/// Parses `std::env::args()`; exits with usage on error.
pub fn parse_args() -> BenchArgs {
    let mut args = BenchArgs::default();
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--full" => {
                args.quick = false;
                args.seconds = args.seconds.max(3.0);
            }
            "--seconds" => {
                args.seconds = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seconds needs a number"));
            }
            "--threads" => {
                let spec = iter
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a list"));
                args.threads = spec
                    .split(',')
                    .map(|t| t.parse().unwrap_or_else(|_| usage("bad thread count")))
                    .collect();
            }
            "--out" => {
                args.out_dir =
                    PathBuf::from(iter.next().unwrap_or_else(|| usage("--out needs a path")));
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--shards" => {
                args.shards = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--shards needs a count >= 1"));
            }
            "--trace" => {
                args.trace = Some(PathBuf::from(
                    iter.next().unwrap_or_else(|| usage("--trace needs a path")),
                ));
            }
            "--group-commit" => {
                args.group_commit = match iter.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage("--group-commit needs on|off"),
                };
            }
            "--repeat" => {
                args.repeat = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--repeat needs a count >= 1"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: fig* [--quick|--full] [--seconds N] [--threads 1,2,4,...] [--out DIR] [--seed N] \
         [--shards N] [--trace FILE.json] [--group-commit on|off] [--repeat N]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

impl BenchArgs {
    /// Key-space size scaled by mode.
    pub fn key_space(&self) -> u64 {
        if self.quick {
            60_000
        } else {
            1_000_000
        }
    }

    /// Duration of one measured cell.
    pub fn cell(&self) -> Duration {
        Duration::from_secs_f64(self.seconds)
    }

    /// Store options scaled for benchmarking (memtable per the paper's
    /// 128 MiB default, scaled down in quick mode).
    pub fn store_options(&self) -> Options {
        let mut opts = Options::default();
        if self.quick {
            // Sized so a quick-mode measurement cell stays
            // memtable-resident, as the paper's 128 MiB default does for
            // full-length runs. A smaller memtable makes every quick cell
            // flush-bound, and on a box with few cores the flush thread's
            // CPU share shrinks as writer threads are added — the sweep
            // then measures flush starvation, not the write path. The
            // flush/compaction-bound regimes are measured by fig8, fig11,
            // and ablate_compaction_threads, which set their own sizes.
            opts.memtable_bytes = 16 * 1024 * 1024;
            opts.store.table_file_size = 2 * 1024 * 1024;
            opts.store.base_level_bytes = 16 * 1024 * 1024;
            opts.store.block_cache_bytes = 64 * 1024 * 1024;
        } else {
            opts.memtable_bytes = 128 * 1024 * 1024;
            opts.store.block_cache_bytes = 512 * 1024 * 1024;
        }
        opts.shards = self.shards;
        opts.group_commit = self.group_commit;
        opts
    }

    /// A fresh scratch subdirectory.
    pub fn scratch(&self, name: &str) -> Result<PathBuf> {
        let p = self.data_dir.join(name);
        if p.exists() {
            std::fs::remove_dir_all(&p)?;
        }
        std::fs::create_dir_all(&p)?;
        Ok(p)
    }
}

/// Measured value to plot per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Operations per second (× 10³ — the paper's usual axis).
    KopsPerSec,
    /// Keys per second (× 10³ — Figure 7b's axis).
    KkeysPerSec,
    /// 90th-percentile latency (µs) — Figures 5b/6b.
    P90LatencyUs,
}

impl Metric {
    /// Extracts the metric from a run result.
    pub fn extract(&self, r: &RunResult) -> f64 {
        match self {
            Metric::KopsPerSec => r.ops_per_sec() / 1000.0,
            Metric::KkeysPerSec => r.keys_per_sec() / 1000.0,
            Metric::P90LatencyUs => r.p90_latency_us(),
        }
    }
}

/// Sweeps `threads` for each system: opens each system once, prefills
/// once, then measures every thread count on the same store (as the
/// paper does — the dataset persists across the sweep).
pub fn sweep_threads(
    args: &BenchArgs,
    figure: &str,
    systems: &[&'static dyn System],
    spec: &WorkloadSpec,
    metrics: &[(Metric, &str)],
) -> Result<Vec<Table>> {
    let columns: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let mut tables: Vec<Table> = metrics
        .iter()
        .map(|(_, label)| Table::new(&format!("{figure} — {label}"), "threads", columns.clone()))
        .collect();

    if args.trace.is_some() {
        clsm_util::trace::enable_default();
    }

    for &sys in systems {
        let dir = args.scratch(&format!("{}-{}", figure_slug(figure), sys.name()))?;
        let store = sys.open(&dir, args.store_options())?;
        eprintln!(
            "[{}] prefilling {} ({} keys)…",
            figure,
            sys.name(),
            spec.prefill
        );
        clsm_workloads::runner::prefill_store(store.as_ref(), spec)?;
        for (col, &threads) in args.threads.iter().enumerate() {
            let cfg = RunConfig {
                threads,
                duration: args.cell(),
                seed: args.seed,
            };
            let r = run_one(&store, spec, &cfg)?;
            eprintln!(
                "[{}] {:<18} threads={:<3} {:>10.1} ops/s  p90={:.1}µs",
                figure,
                sys.name(),
                threads,
                r.ops_per_sec(),
                r.p90_latency_us()
            );
            for (t, (metric, _)) in tables.iter_mut().zip(metrics) {
                t.set(sys.name(), col, metric.extract(&r));
            }
        }
        store.quiesce()?;
        emit_metrics(args, figure, store.as_ref())?;
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    if let Some(path) = &args.trace {
        write_trace(path)?;
    }
    Ok(tables)
}

/// Drains the flight recorder and writes the Chrome-trace JSON.
fn write_trace(path: &std::path::Path) -> Result<()> {
    let snap = clsm_util::trace::drain();
    clsm_util::trace::disable();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, snap.to_chrome_json())?;
    eprintln!(
        "wrote trace {} ({} events, {} dropped; load in https://ui.perfetto.dev)",
        path.display(),
        snap.events.len(),
        snap.total_dropped()
    );
    Ok(())
}

/// Prints a system's metrics snapshot and persists it as JSON next to
/// the CSV artifacts. Systems without a metrics registry (the
/// baselines) are skipped silently.
pub fn emit_metrics(args: &BenchArgs, figure: &str, store: &dyn KvStore) -> Result<()> {
    let snapshot = store.stats();
    if snapshot.counters.is_empty() && snapshot.histograms.is_empty() {
        return Ok(());
    }
    eprintln!(
        "[{}] {} metrics:\n{}",
        figure,
        store.name(),
        snapshot.to_text()
    );
    // For sharded systems `stats()` is the bucket-merged snapshot, so
    // this breakdown reads as one system-wide write path.
    if let Some(wp) = crate::report::render_write_path(&snapshot) {
        eprintln!("[{}] {} write path:\n{}", figure, store.name(), wp);
    }
    let path = crate::report::write_metrics_json(
        &args.out_dir,
        &format!("{}-{}", figure_slug(figure), figure_slug(store.name())),
        &snapshot,
    )?;
    println!("{} metrics: {}", store.name(), snapshot.to_json());
    eprintln!("wrote {}", path.display());
    // Composite systems additionally persist one snapshot per shard so
    // load imbalance across the ranges is visible in the artifacts.
    for (label, shard_snap) in store.shard_stats() {
        let path = crate::report::write_metrics_json(
            &args.out_dir,
            &format!(
                "{}-{}-{}",
                figure_slug(figure),
                figure_slug(store.name()),
                figure_slug(&label)
            ),
            &shard_snap,
        )?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Runs one measured cell (no prefill — done by the sweep).
pub fn run_one(
    store: &Arc<dyn KvStore>,
    spec: &WorkloadSpec,
    cfg: &RunConfig,
) -> Result<RunResult> {
    run_workload(store, spec, cfg, Prefill::Skip)
}

/// Runs one short, unmeasured write cell before a sweep starts. The
/// first measured cell of a cold process otherwise reads several
/// percent high — warm caches, CPU boost headroom, no JITted kernel
/// state from earlier cells — which systematically flatters whichever
/// configuration happens to run first.
pub fn warmup(args: &BenchArgs) {
    let spec = WorkloadSpec::write_only(args.key_space());
    let dir = args.scratch("warmup").expect("scratch");
    let store: Arc<dyn KvStore> =
        Arc::new(clsm::Db::open(&dir, args.store_options()).expect("open"));
    let cfg = RunConfig {
        threads: 2,
        duration: Duration::from_secs(2),
        seed: args.seed,
    };
    run_one(&store, &spec, &cfg).expect("warmup");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Picks the median-throughput run out of `--repeat` repetitions of
/// one cell. The median is robust against a rep that caught a
/// background-compaction burst or a scheduler hiccup, which on small
/// machines swings single runs by ±15%.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn median_by_throughput(mut runs: Vec<RunResult>) -> RunResult {
    assert!(!runs.is_empty(), "median of zero runs");
    runs.sort_by(|a, b| a.ops_per_sec().total_cmp(&b.ops_per_sec()));
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

fn figure_slug(figure: &str) -> String {
    figure
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Prints and persists a set of tables.
pub fn emit(args: &BenchArgs, tables: &[Table]) -> Result<()> {
    for t in tables {
        t.print();
        let path = t.to_csv(&args.out_dir)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
