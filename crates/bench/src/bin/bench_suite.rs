//! `bench-suite` — the canonical perf matrix as one machine-readable
//! artifact, with a built-in regression gate.
//!
//! ```text
//! bench-suite [--smoke] [--net] [--scaling] [--label NAME] [--out DIR]
//!             [--data DIR] [--seconds F] [--seed N] [--stability]
//!             [--stability-ablation]
//!             [--compare OLD.json] [--threshold F]
//! bench-suite --compare-only OLD.json NEW.json [--threshold F]
//! ```
//!
//! A run measures every cell of the canonical matrix (write-only
//! thread sweep and mixed 50/50, each across group-commit on/off and
//! 1 vs 4 shards; `--smoke` is the CI-sized subset) and writes
//! `BENCH_<label>.json` into `--out`: throughput, latency percentiles,
//! the per-stage write-path breakdown, commit-mode counts, and an
//! environment fingerprint, under a versioned schema.
//!
//! `--net` appends the networked cells: the same store behind an
//! embedded loopback `clsm-server`, driven through the pipelined
//! client, so the reported throughput and latency percentiles are
//! client-observed over TCP.
//!
//! `--scaling` ensures the write-scaling cells (write-only, group
//! commit on, one shard, 1→8 threads) are measured, prints the
//! throughput curve, and folds the scaling gate — each step through
//! 4 threads must keep ≥0.9x of the previous point — into the exit
//! code. The 8-thread ratio is reported but not gated.
//!
//! `--stability` appends the long-run stability cell to the artifact:
//! per-window throughput and p999 time series against an undersized,
//! I/O-rate-limited store, plus the variance/spike summary the
//! comparator gates on. `--stability-ablation` also runs the
//! admission-off shim (the pre-ramp stall cliff) for side-by-side
//! numbers; ablation cells are printed but carry no baseline.
//!
//! `--compare OLD.json` additionally diffs the fresh run against a
//! baseline file and exits nonzero when any metric worsened beyond
//! `--threshold` (fractional: the default 1.0 tolerates up to 2x).
//! `--compare-only` diffs two existing files without running anything
//! — the CI gate.

use std::path::PathBuf;

use bench::stability::{run_stability, StabilityConfig};
use bench::suite::{compare, run_suite, scaling_summary, SuiteConfig, SuiteReport};
use clsm_util::error::Result;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(passed) => i32::from(!passed),
        Err(e) => {
            eprintln!("bench-suite: {e}");
            2
        }
    };
    std::process::exit(code);
}

/// Returns `Ok(true)` when the run (and any comparison) passed.
fn run(argv: &[String]) -> Result<bool> {
    let mut smoke = false;
    let mut label = "run".to_string();
    let mut out_dir = PathBuf::from("bench-results");
    let mut data_dir = std::env::temp_dir().join(format!("bench-suite-{}", std::process::id()));
    let mut seconds: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut compare_to: Option<PathBuf> = None;
    let mut compare_only: Option<(PathBuf, PathBuf)> = None;
    let mut threshold = 1.0f64;
    let mut stability = false;
    let mut stability_ablation = false;
    let mut net = false;
    let mut scaling = false;

    let mut iter = argv.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--net" => net = true,
            "--scaling" => scaling = true,
            "--stability" => stability = true,
            "--stability-ablation" => {
                stability = true;
                stability_ablation = true;
            }
            "--label" => {
                label = iter
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage("--label needs a name"));
            }
            "--out" => {
                out_dir = PathBuf::from(iter.next().unwrap_or_else(|| usage("--out needs a path")));
            }
            "--data" => {
                data_dir =
                    PathBuf::from(iter.next().unwrap_or_else(|| usage("--data needs a path")));
            }
            "--seconds" => {
                seconds = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&s| s > 0.0)
                        .unwrap_or_else(|| usage("--seconds needs a positive number")),
                );
            }
            "--seed" => {
                seed = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number")),
                );
            }
            "--compare" => {
                compare_to = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| usage("--compare needs a baseline json")),
                ));
            }
            "--compare-only" => {
                let old = iter
                    .next()
                    .unwrap_or_else(|| usage("--compare-only needs OLD.json NEW.json"));
                let new = iter
                    .next()
                    .unwrap_or_else(|| usage("--compare-only needs OLD.json NEW.json"));
                compare_only = Some((PathBuf::from(old), PathBuf::from(new)));
            }
            "--threshold" => {
                threshold = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| usage("--threshold needs a non-negative number"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    // File-vs-file gate: no measurement, just the verdict.
    if let Some((old_path, new_path)) = compare_only {
        let old = SuiteReport::from_json(&std::fs::read_to_string(&old_path)?)?;
        let new = SuiteReport::from_json(&std::fs::read_to_string(&new_path)?)?;
        let outcome = compare(&old, &new, threshold);
        print!("{}", outcome.text);
        return Ok(outcome.passed());
    }

    let mut cfg = SuiteConfig::new(smoke, &label);
    cfg.net = net;
    cfg.scaling = scaling;
    if let Some(s) = seconds {
        cfg.seconds = s;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    eprintln!(
        "[bench-suite] mode={} label={} seconds/cell={} key_space={}",
        if smoke { "smoke" } else { "full" },
        cfg.label,
        cfg.seconds,
        cfg.key_space
    );
    let mut report = run_suite(&cfg, &data_dir)?;
    if stability {
        let mut variants = vec![true];
        if stability_ablation {
            variants.push(false);
        }
        for admission in variants {
            let scfg = StabilityConfig::new(smoke, admission);
            eprintln!("[bench-suite] stability cell: {}", scfg.id());
            let cell = run_stability(&scfg, &data_dir)?;
            eprintln!(
                "[bench-suite]   {:.1} kops/s  cv={:.3} p999max={:.0}µs hard_stalls={}",
                cell.kops_per_sec, cell.throughput_cv, cell.p999_max_us, cell.hard_stalls
            );
            report.stability.push(cell);
        }
    }
    let _ = std::fs::remove_dir_all(&data_dir);

    std::fs::create_dir_all(&out_dir)?;
    let path = out_dir.join(format!("BENCH_{label}.json"));
    std::fs::write(&path, report.to_json())?;
    println!("wrote {}", path.display());
    for cell in &report.cells {
        println!(
            "  {:<28} {:>9.1} kops/s  p50={:<8.1} p99={:<8.1} p999={:.1} µs",
            cell.id, cell.kops_per_sec, cell.p50_us, cell.p99_us, cell.p999_us
        );
    }
    for n in &report.net {
        println!(
            "  {:<28} {:>9.1} kops/s  p50={:<8.1} p99={:<8.1} p999={:.1} µs (client-observed)",
            n.id, n.kops_per_sec, n.p50_us, n.p99_us, n.p999_us
        );
    }
    for s in &report.stability {
        println!(
            "  {:<36} {:>7.1} kops/s  cv={:.3} worst={:.2} p999max={:.0}µs \
             stalls={} delayed={} slowdowns={}",
            s.id,
            s.kops_per_sec,
            s.throughput_cv,
            s.worst_window_frac,
            s.p999_max_us,
            s.hard_stalls,
            s.delayed_writes,
            s.sustained_slowdowns
        );
    }

    let mut passed = true;
    if scaling {
        match scaling_summary(&report) {
            Some(summary) => {
                print!("{}", summary.text());
                passed &= summary.passed;
            }
            None => {
                eprintln!("bench-suite: --scaling set but no scaling cells measured");
                passed = false;
            }
        }
    }

    if let Some(old_path) = compare_to {
        let old = SuiteReport::from_json(&std::fs::read_to_string(&old_path)?)?;
        let outcome = compare(&old, &report, threshold);
        print!("{}", outcome.text);
        passed &= outcome.passed();
    }
    Ok(passed)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: bench-suite [--smoke|--full] [--net] [--scaling] [--label NAME] [--out DIR] \
         [--data DIR] [--seconds F] [--seed N] [--stability] [--stability-ablation] \
         [--compare OLD.json] [--threshold F]"
    );
    eprintln!("       bench-suite --compare-only OLD.json NEW.json [--threshold F]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
