//! Figure 11 — workload with heavy disk compaction.
//!
//! §5.3 / the RocksDB benchmark: sequentially fill the store, then
//! hammer it with uniform updates so compaction runs continuously and
//! becomes the bottleneck. RocksDB runs with multi-threaded compaction
//! (3 threads here); cLSM with the paper's single compaction thread.
//! Both use 6 levels and the same table/block parameters, as §5.3
//! prescribes.
//!
//! Paper shape: both systems scale all the way to 16 worker threads at
//! a far lower absolute rate than the CPU-bound figures, converging to
//! roughly equal throughput at high thread counts.

use bench::driver::{run_one, Metric};
use bench::report::Table;
use bench::systems::{CLSM, ROCKS};
use clsm_workloads::{RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    // Value 400 bytes, small keys, dataset sized so updates keep
    // compaction saturated (scaled from the paper's 1 billion items).
    let key_space = if args.quick { 120_000 } else { 2_000_000 };
    let spec = WorkloadSpec::disk_bound(key_space);

    let columns: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let mut table = Table::new(
        "Figure 11 — Update throughput under heavy compaction (Kops/s)",
        "threads",
        columns,
    );

    for sys in [ROCKS, CLSM] {
        let mut opts = args.store_options();
        opts.store.num_levels = 6; // §5.3: "total number of levels (6)"
                                   // Keep the budgets small so compaction genuinely saturates.
        opts.memtable_bytes = if args.quick { 1 << 20 } else { 128 << 20 };
        opts.store.base_level_bytes = if args.quick { 4 << 20 } else { 64 << 20 };
        opts.compaction_threads = if std::ptr::eq(sys, ROCKS) { 3 } else { 1 };

        let dir = args
            .scratch(&format!("fig11-{}", sys.name()))
            .expect("scratch");
        let store = sys.open(&dir, opts).expect("open store");
        eprintln!("[fig11] filling {} with {} items…", sys.name(), key_space);
        clsm_workloads::runner::prefill_store(store.as_ref(), &spec).expect("prefill");

        for (col, &threads) in args.threads.iter().enumerate() {
            let cfg = RunConfig {
                threads,
                duration: args.cell(),
                seed: args.seed,
            };
            let r = run_one(&store, &spec, &cfg).expect("run");
            eprintln!(
                "[fig11] {:<10} threads={:<3} {:>10.1} updates/s",
                sys.name(),
                threads,
                r.ops_per_sec()
            );
            table.set(sys.name(), col, Metric::KopsPerSec.extract(&r));
        }
        store.quiesce().expect("quiesce");
        if let Some(amp) = store.write_amp() {
            eprintln!(
                "[fig11] {:<10} write amplification: {:.2}x ({} MB flushed, {} MB compacted)",
                sys.name(),
                amp.factor(),
                amp.flushed >> 20,
                amp.compacted >> 20
            );
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    let path = table.to_csv(&args.out_dir).expect("csv");
    eprintln!("wrote {}", path.display());
}
