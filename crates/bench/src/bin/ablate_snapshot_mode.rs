//! Ablation — serializable vs. linearizable snapshots.
//!
//! §3.2.1: the default `getSnap` is serializable but may read "in the
//! past"; a linearizable variant instead waits until the snapshot time
//! covers the counter value at invocation. This ablation quantifies
//! what that stricter guarantee costs under a snapshot-heavy mixed
//! workload (writers + snapshot scanners).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench::report::Table;
use clsm::Db;

fn main() {
    let args = bench::parse_args();
    let threads_sweep = args.threads.clone();
    let columns: Vec<String> = threads_sweep.iter().map(|t| t.to_string()).collect();
    let mut tput = Table::new(
        "Ablation — snapshot creations/s by mode (writers + snapshotters)",
        "threads",
        columns.clone(),
    );
    let mut lat = Table::new(
        "Ablation — mean snapshot creation latency (us)",
        "threads",
        columns,
    );

    for linearizable in [false, true] {
        let label = if linearizable {
            "linearizable"
        } else {
            "serializable"
        };
        let dir = args
            .scratch(&format!("ablate-snap-{label}"))
            .expect("scratch");
        let mut opts = args.store_options();
        opts.linearizable_snapshots = linearizable;
        let db = Arc::new(Db::open(&dir, opts).expect("open"));
        for i in 0..10_000u32 {
            db.put(format!("seed{i:06}").as_bytes(), &[0u8; 64])
                .unwrap();
        }

        for (col, &threads) in threads_sweep.iter().enumerate() {
            // Half the threads write continuously; half take snapshots.
            let writers = (threads / 2).max(1);
            let snappers = (threads - writers).max(1);
            let stop = Arc::new(AtomicBool::new(false));
            let snaps_taken = Arc::new(AtomicU64::new(0));
            let snap_nanos = Arc::new(AtomicU64::new(0));
            let started = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..writers {
                    let db = Arc::clone(&db);
                    let stop = Arc::clone(&stop);
                    scope.spawn(move || {
                        let mut i = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let key = format!("w{t}-{:06}", i % 50_000);
                            db.put(key.as_bytes(), &[1u8; 64]).unwrap();
                            i += 1;
                        }
                    });
                }
                for _ in 0..snappers {
                    let db = Arc::clone(&db);
                    let stop = Arc::clone(&stop);
                    let snaps_taken = Arc::clone(&snaps_taken);
                    let snap_nanos = Arc::clone(&snap_nanos);
                    scope.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let begin = Instant::now();
                            let snap = db.snapshot().unwrap();
                            snap_nanos
                                .fetch_add(begin.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            // Touch the snapshot so it is not optimized
                            // away, then release.
                            let _ = snap.get(b"seed000001").unwrap();
                            snaps_taken.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                std::thread::sleep(args.cell());
                stop.store(true, Ordering::Relaxed);
            });
            let elapsed = started.elapsed().as_secs_f64();
            let taken = snaps_taken.load(Ordering::Relaxed);
            let mean_us = if taken == 0 {
                0.0
            } else {
                snap_nanos.load(Ordering::Relaxed) as f64 / taken as f64 / 1000.0
            };
            eprintln!(
                "[ablate-snap] {label:<13} threads={threads:<3} {:>10.0} snaps/s  mean={mean_us:.2}us",
                taken as f64 / elapsed
            );
            tput.set(label, col, taken as f64 / elapsed);
            lat.set(label, col, mean_us);
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    tput.print();
    lat.print();
    tput.to_csv(&args.out_dir).expect("csv");
    lat.to_csv(&args.out_dir).expect("csv");
}
