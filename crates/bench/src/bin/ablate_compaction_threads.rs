//! Ablation — number of background compaction threads.
//!
//! The paper runs cLSM with a single compaction thread and notes that
//! RocksDB's multi-threaded compaction "optimizations are orthogonal to
//! our improved parallelism among worker threads" (§5.3). This
//! ablation puts that to the test on the disk-bound update workload:
//! sweep cLSM's compaction-thread count with a fixed worker count.

use bench::driver::{run_one, Metric};
use bench::report::Table;
use bench::systems::CLSM;
use clsm_workloads::{RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    let key_space = if args.quick { 80_000 } else { 1_000_000 };
    let spec = WorkloadSpec::disk_bound(key_space);
    let worker_threads = 4usize;
    let compaction_sweep = [1usize, 2, 3, 4];

    let columns: Vec<String> = compaction_sweep
        .iter()
        .map(|c| format!("{c} thread(s)"))
        .collect();
    let mut table = Table::new(
        "Ablation — update throughput vs compaction threads, 4 workers (Kops/s)",
        "compactors",
        columns,
    );

    for (col, &compactors) in compaction_sweep.iter().enumerate() {
        let mut opts = args.store_options();
        opts.store.num_levels = 6;
        opts.memtable_bytes = if args.quick { 1 << 20 } else { 64 << 20 };
        opts.store.base_level_bytes = if args.quick { 4 << 20 } else { 64 << 20 };
        opts.compaction_threads = compactors;
        let dir = args
            .scratch(&format!("ablate-compact-{compactors}"))
            .expect("scratch");
        let store = CLSM.open(&dir, opts).expect("open");
        clsm_workloads::runner::prefill_store(store.as_ref(), &spec).expect("prefill");
        let cfg = RunConfig {
            threads: worker_threads,
            duration: args.cell(),
            seed: args.seed,
        };
        let r = run_one(&store, &spec, &cfg).expect("run");
        eprintln!(
            "[ablate-compact] compactors={compactors} {:>10.1} updates/s",
            r.ops_per_sec()
        );
        table.set("cLSM", col, Metric::KopsPerSec.extract(&r));
        store.quiesce().expect("quiesce");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    table.to_csv(&args.out_dir).expect("csv");
}
