//! Ablation — lock-free skip list vs. locked BTreeMap as the memory
//! component, at the whole-database level.
//!
//! The paper's generic algorithm (§3) runs over any thread-safe sorted
//! map, but its *scalability* argument hinges on the map being
//! lock-free. This ablation swaps `MemtableKind` under an otherwise
//! identical cLSM database and measures the write and mixed paths.

use std::sync::Arc;

use bench::driver::{median_by_throughput, run_one, Metric};
use bench::report::Table;
use clsm::{Db, MemtableKind};
use clsm_baselines::KvStore;
use clsm_workloads::{Prefill, RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    bench::driver::warmup(&args);
    let columns: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let mut write_table = Table::new(
        "Ablation — write throughput by memtable implementation (Kops/s)",
        "threads",
        columns.clone(),
    );
    let mut mixed_table = Table::new(
        "Ablation — mixed r/w throughput by memtable implementation (Kops/s)",
        "threads",
        columns,
    );

    for (kind, label) in [
        (MemtableKind::LockFreeSkipList, "lock-free skiplist"),
        (MemtableKind::LockedBTreeMap, "locked btreemap"),
    ] {
        // Write-only sweep. Every cell (and every repetition) gets a
        // fresh store: reusing one store across the thread sweep makes
        // later cells run against a deeper LSM tree, so the thread
        // axis measures accumulated compaction work, not concurrency.
        let spec_w = WorkloadSpec::write_only(args.key_space());
        let mut opts = args.store_options();
        opts.memtable_kind = kind;
        // Repetitions are interleaved across thread counts (rep-major,
        // not cell-major) so that minute-scale machine drift hits every
        // cell of the sweep equally instead of biasing whichever cell
        // ran first.
        let mut cells: Vec<Vec<_>> = vec![Vec::new(); args.threads.len()];
        for rep in 0..args.repeat {
            for (col, &threads) in args.threads.iter().enumerate() {
                let dir = args
                    .scratch(&format!("ablate-mem-w-{label}-{threads}t-{rep}"))
                    .expect("scratch");
                let store: Arc<dyn KvStore> = Arc::new(Db::open(&dir, opts.clone()).expect("open"));
                let cfg = RunConfig {
                    threads,
                    duration: args.cell(),
                    seed: args.seed + rep as u64,
                };
                cells[col].push(run_one(&store, &spec_w, &cfg).expect("run"));
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        for (col, (&threads, reps)) in args.threads.iter().zip(cells).enumerate() {
            let r = median_by_throughput(reps);
            eprintln!(
                "[ablate-mem] {label:<18} write threads={threads:<3} {:>10.1} ops/s",
                r.ops_per_sec()
            );
            write_table.set(label, col, Metric::KopsPerSec.extract(&r));
        }

        // Mixed sweep (prefilled), same fresh-store-per-cell protocol.
        let spec_m = WorkloadSpec::mixed(args.key_space());
        let mut cells: Vec<Vec<_>> = vec![Vec::new(); args.threads.len()];
        for rep in 0..args.repeat {
            for (col, &threads) in args.threads.iter().enumerate() {
                let dir = args
                    .scratch(&format!("ablate-mem-m-{label}-{threads}t-{rep}"))
                    .expect("scratch");
                let store: Arc<dyn KvStore> = Arc::new(Db::open(&dir, opts.clone()).expect("open"));
                clsm_workloads::run_workload(
                    &store,
                    &spec_m,
                    &RunConfig {
                        threads: 1,
                        duration: std::time::Duration::from_millis(1),
                        seed: 0,
                    },
                    Prefill::Sequential,
                )
                .expect("prefill");
                store.quiesce().expect("quiesce");
                let cfg = RunConfig {
                    threads,
                    duration: args.cell(),
                    seed: args.seed + rep as u64,
                };
                cells[col].push(run_one(&store, &spec_m, &cfg).expect("run"));
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        for (col, (&threads, reps)) in args.threads.iter().zip(cells).enumerate() {
            let r = median_by_throughput(reps);
            eprintln!(
                "[ablate-mem] {label:<18} mixed threads={threads:<3} {:>10.1} ops/s",
                r.ops_per_sec()
            );
            mixed_table.set(label, col, Metric::KopsPerSec.extract(&r));
        }
    }
    write_table.print();
    mixed_table.print();
    write_table.to_csv(&args.out_dir).expect("csv");
    mixed_table.to_csv(&args.out_dir).expect("csv");
}
