//! Ablation — lock-free skip list vs. locked BTreeMap as the memory
//! component, at the whole-database level.
//!
//! The paper's generic algorithm (§3) runs over any thread-safe sorted
//! map, but its *scalability* argument hinges on the map being
//! lock-free. This ablation swaps `MemtableKind` under an otherwise
//! identical cLSM database and measures the write and mixed paths.

use std::sync::Arc;

use bench::driver::{run_one, Metric};
use bench::report::Table;
use clsm::{Db, MemtableKind};
use clsm_baselines::KvStore;
use clsm_workloads::{Prefill, RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    let columns: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let mut write_table = Table::new(
        "Ablation — write throughput by memtable implementation (Kops/s)",
        "threads",
        columns.clone(),
    );
    let mut mixed_table = Table::new(
        "Ablation — mixed r/w throughput by memtable implementation (Kops/s)",
        "threads",
        columns,
    );

    for (kind, label) in [
        (MemtableKind::LockFreeSkipList, "lock-free skiplist"),
        (MemtableKind::LockedBTreeMap, "locked btreemap"),
    ] {
        // Write-only sweep.
        let spec_w = WorkloadSpec::write_only(args.key_space());
        let mut opts = args.store_options();
        opts.memtable_kind = kind;
        let dir = args
            .scratch(&format!("ablate-mem-w-{label}"))
            .expect("scratch");
        let store: Arc<dyn KvStore> = Arc::new(Db::open(&dir, opts.clone()).expect("open"));
        for (col, &threads) in args.threads.iter().enumerate() {
            let cfg = RunConfig {
                threads,
                duration: args.cell(),
                seed: args.seed,
            };
            let r = run_one(&store, &spec_w, &cfg).expect("run");
            eprintln!(
                "[ablate-mem] {label:<18} write threads={threads:<3} {:>10.1} ops/s",
                r.ops_per_sec()
            );
            write_table.set(label, col, Metric::KopsPerSec.extract(&r));
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        // Mixed sweep (prefilled).
        let spec_m = WorkloadSpec::mixed(args.key_space());
        let dir = args
            .scratch(&format!("ablate-mem-m-{label}"))
            .expect("scratch");
        let store: Arc<dyn KvStore> = Arc::new(Db::open(&dir, opts).expect("open"));
        clsm_workloads::run_workload(
            &store,
            &spec_m,
            &RunConfig {
                threads: 1,
                duration: std::time::Duration::from_millis(1),
                seed: 0,
            },
            Prefill::Sequential,
        )
        .expect("prefill");
        for (col, &threads) in args.threads.iter().enumerate() {
            let cfg = RunConfig {
                threads,
                duration: args.cell(),
                seed: args.seed,
            };
            let r = run_one(&store, &spec_m, &cfg).expect("run");
            eprintln!(
                "[ablate-mem] {label:<18} mixed threads={threads:<3} {:>10.1} ops/s",
                r.ops_per_sec()
            );
            mixed_table.set(label, col, Metric::KopsPerSec.extract(&r));
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    write_table.print();
    mixed_table.print();
    write_table.to_csv(&args.out_dir).expect("csv");
    mixed_table.to_csv(&args.out_dir).expect("csv");
}
