//! Figure 6 — read performance.
//!
//! "A 100% read scenario with locality (90% of keys picked from 10%
//! popular blocks)" over a prefilled store. Threads sweep to 128 —
//! beyond the hardware parallelism, as in the paper.
//!
//! Paper shape: LevelDB/HyperLevelDB plateau by ~8 threads (reads take
//! the global mutex); RocksDB and cLSM keep scaling to 128 threads,
//! with cLSM fastest (~2.3× peak competitor) and RocksDB paying a much
//! higher latency for its throughput (Fig 6b).

use bench::driver::{emit, sweep_threads, Metric};
use bench::systems::all_systems;
use clsm_workloads::WorkloadSpec;

fn main() {
    let mut args = bench::parse_args();
    // The read benchmark extends the sweep beyond hardware threads.
    if args.threads == bench::BenchArgs::default().threads {
        args.threads = vec![1, 2, 4, 8, 16, 32, 64, 128];
    }
    let spec = WorkloadSpec::read_only(args.key_space());
    let tables = sweep_threads(
        &args,
        "Figure 6 (read-only)",
        all_systems(),
        &spec,
        &[
            (Metric::KopsPerSec, "Read throughput (Kops/s) [Fig 6a]"),
            (
                Metric::P90LatencyUs,
                "90th percentile latency (us) [Fig 6b]",
            ),
        ],
    )
    .expect("benchmark failed");
    emit(&args, &tables).expect("emit failed");
}
