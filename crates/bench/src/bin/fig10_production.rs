//! Figure 10 — production web-serving workloads.
//!
//! Four synthetic traces calibrated to the published properties of the
//! paper's production logs (§5.2): 85–96% reads, 40-byte keys, 1 KiB
//! values, heavy-tail popularity (top 10% of keys ≈ 75%+ of requests).
//!
//! Paper shape: cLSM starts slightly below the alternatives at 1
//! thread but scales much further; the gap is narrower than in §5.1
//! because larger keys/values dilute synchronization overhead.

use bench::driver::{emit, sweep_threads, Metric};
use bench::systems::no_blsm_systems;
use clsm_workloads::production_dataset;

fn main() {
    let args = bench::parse_args();
    for dataset in 0..4usize {
        let spec = production_dataset(dataset, args.key_space());
        let label = format!(
            "Production dataset {} throughput (Kops/s), {}% reads [Fig 10{}]",
            dataset + 1,
            spec.mix.read_pct,
            char::from(b'a' + dataset as u8),
        );
        let tables = sweep_threads(
            &args,
            &format!("Figure 10 dataset {}", dataset + 1),
            no_blsm_systems(),
            &spec,
            &[(Metric::KopsPerSec, &label)],
        )
        .expect("benchmark failed");
        emit(&args, &tables).expect("emit failed");
    }
}
