//! Figure 7 — mixed workloads.
//!
//! (a) 1:1 read/write mix; (b) scan/write mix where ranges span 10–20
//! keys and throughput counts *keys* accessed per second. bLSM is
//! excluded from (b) — "it does not directly support consistent scans".
//!
//! Paper shape: cLSM scales past 730K ops/s at 16 threads in (a);
//! competitors trail by ≥60% in (b).

use bench::driver::{emit, sweep_threads, Metric};
use bench::systems::{all_systems, no_blsm_systems};
use clsm_workloads::WorkloadSpec;

fn main() {
    let args = bench::parse_args();

    let spec_a = WorkloadSpec::mixed(args.key_space());
    let tables_a = sweep_threads(
        &args,
        "Figure 7a (50r/50w)",
        all_systems(),
        &spec_a,
        &[(
            Metric::KopsPerSec,
            "Mixed read/write throughput (Kops/s) [Fig 7a]",
        )],
    )
    .expect("fig7a failed");
    emit(&args, &tables_a).expect("emit failed");

    let spec_b = WorkloadSpec::scan_write(args.key_space());
    let tables_b = sweep_threads(
        &args,
        "Figure 7b (scan/write)",
        no_blsm_systems(),
        &spec_b,
        &[(
            Metric::KkeysPerSec,
            "Mixed scan/write throughput (Kkeys/s) [Fig 7b]",
        )],
    )
    .expect("fig7b failed");
    emit(&args, &tables_b).expect("emit failed");
}
